"""Legacy setup shim.

This offline environment has no `wheel` package, so PEP 660 editable
installs fail with "invalid command 'bdist_wheel'". With this shim present
(and no [build-system] table in pyproject.toml), `pip install -e .` falls
back to `setup.py develop`, which works without wheel.
"""

from setuptools import setup

setup()
