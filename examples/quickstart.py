#!/usr/bin/env python3
"""Quickstart: share one V100 between a training job and an inference
stream, first with multi-threaded TensorFlow semantics, then with
SwitchFlow's preemptive scheduling.

Run::

    python examples/quickstart.py

Expected outcome (the paper's Figure 6 headline): the inference
stream's p95 latency improves by several-fold under SwitchFlow because
the high-priority requests preempt the background trainer instead of
queueing behind its kernels.
"""

from repro import (
    JobHandle,
    JobSpec,
    MultiThreadedTF,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SwitchFlowPolicy,
    get_model,
    make_context,
    run_colocation,
)
from repro.hw import v100_server


def measure(policy_factory, label):
    # A fresh simulated machine per run: one 32 GB Tesla V100 plus a
    # dual-18-core Xeon host, exactly the paper's server 2.
    ctx = make_context(v100_server, 1, seed=2024)
    gpu_name = ctx.machine.gpu(0).name

    trainer = JobHandle(
        name="vgg16-trainer", model=get_model("VGG16"), batch=32,
        training=True, priority=PRIORITY_LOW, preferred_device=gpu_name)
    server = JobHandle(
        name="resnet50-server", model=get_model("ResNet50"), batch=1,
        training=False, priority=PRIORITY_HIGH, preferred_device=gpu_name)

    result = run_colocation(ctx, policy_factory, [
        # The trainer runs "forever": it stops once the stream is done.
        JobSpec(job=trainer, iterations=1_000_000, background=True),
        # 60 back-to-back single-image requests after a warmup delay.
        JobSpec(job=server, iterations=60, start_delay_ms=1500.0),
    ])

    latency = result.latency_summary("resnet50-server", warmup=5)
    trained = result.stats["vgg16-trainer"]
    print(f"{label:>16}: inference {latency}")
    print(f"{'':>16}  trainer completed {trained.iterations} iterations"
          f" ({trained.preemptions} preemptions)")
    return latency


def main():
    print("Sharing one V100: VGG16 training + ResNet50 inference (BS=1)\n")
    tf_latency = measure(MultiThreadedTF, "multi-threaded TF")
    sf_latency = measure(SwitchFlowPolicy, "SwitchFlow")
    print(f"\np95 tail-latency improvement: "
          f"{tf_latency.p95 / sf_latency.p95:.2f}x "
          f"(paper reports 3.2x-19.05x for this experiment family)")


if __name__ == "__main__":
    main()
