#!/usr/bin/env python3
"""Preemption and migration walkthrough (the paper's Figure 7(e)/(f)).

A low-priority VGG16 trainer occupies the fast RTX 2080 Ti of a two-GPU
server. A high-priority ResNet50 trainer arrives; SwitchFlow:

1. aborts the victim's queued graph nodes (in-flight kernels drain),
2. hands the 2080 Ti to the high-priority job,
3. rebuilds the victim on its GTX 1080 Ti executor version, and
4. copies its model state (weights + momentum, Table 1) over PCIe
   asynchronously — off the preemptor's critical path.

Run::

    python examples/preemption_demo.py
"""

from repro import (
    JobHandle,
    JobSpec,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SwitchFlowPolicy,
    get_model,
    make_context,
    run_colocation,
)
from repro.hw import two_gpu_server


def main():
    ctx = make_context(two_gpu_server, seed=11)
    fast = max(ctx.machine.gpus, key=lambda g: g.spec.peak_fp32_tflops)
    print(f"machine: {[g.name for g in ctx.machine.gpus]} "
          f"+ {ctx.machine.cpu.name}")

    victim = JobHandle(
        name="vgg16-low", model=get_model("VGG16"), batch=32,
        training=True, priority=PRIORITY_LOW, preferred_device=fast.name)
    preemptor = JobHandle(
        name="resnet50-high", model=get_model("ResNet50"), batch=32,
        training=True, priority=PRIORITY_HIGH,
        preferred_device=fast.name)

    policy_box = {}

    def factory(context):
        policy_box["policy"] = SwitchFlowPolicy(context)
        return policy_box["policy"]

    result = run_colocation(ctx, factory, [
        JobSpec(job=victim, iterations=1_000_000, background=True),
        JobSpec(job=preemptor, iterations=12, start_delay_ms=900.0),
    ])

    print(f"\npreemptions performed: {policy_box['policy'].preemptions}")
    print(f"victim now runs on:    {victim.assigned_device}")
    print(f"state transferred:     "
          f"{get_model('VGG16').stateful_bytes / 2**20:.0f} MiB over "
          f"{ctx.resources.transfer_ms_total:.1f} ms of PCIe time")

    high = result.stats["resnet50-high"]
    low = result.stats["vgg16-low"]
    print(f"\nhigh-priority job: {high.throughput_items_per_s(1):.0f} "
          f"images/s on {preemptor.assigned_device}")
    print(f"low-priority job:  {low.throughput_after(900.0):.0f} "
          f"images/s after migrating to {victim.assigned_device}")

    # The scheduler's own event log.
    print("\nscheduler events:")
    for span in ctx.tracer.spans:
        if span.lane == "scheduler":
            print(f"  t={span.start:8.1f} ms  {span.name}  "
                  f"{span.meta.get('victim')}: "
                  f"{span.meta.get('from_device')} -> "
                  f"{span.meta.get('to_device')}")


if __name__ == "__main__":
    main()
