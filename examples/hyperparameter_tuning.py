#!/usr/bin/env python3
"""Hyper-parameter tuning with shared inputs — the paper's Listing 1.

A user tunes a model by training several variants on the same dataset
(Section 3.2's multi-job scenario). The paper configures input sharing
through TF_* environment variables (Listing 1); this example drives the
reproduction through that exact surface: parse the env, then run the
variants in SwitchFlow's merged lockstep schedule vs time slicing.

Run::

    python examples/hyperparameter_tuning.py
"""

from repro import (
    JobHandle,
    JobSpec,
    SessionTimeSlicing,
    get_model,
    improvement_percent,
    make_context,
    run_colocation,
    run_multitask,
)
from repro.core import SwitchFlowConfig
from repro.hw import v100_server

BATCH = 64
TRIALS = 3              # three hyper-parameter variants of one model
ITERATIONS = 10
MODEL = "MobileNetV2"   # lightweight: training is pipeline-bound,
                        # exactly where input reuse pays off


def listing1_environment():
    """The Listing 1 launch configuration for a master + 2 variants."""
    return {
        "TF_SET_REUSE_INPUTS": "True",
        "TF_REUSE_INPUT_OP_NAME_MASTER_X": "X00",
        "TF_REUSE_INPUT_OP_NAME_MASTER_y": "y00",
        "TF_REUSE_INPUT_OPS_NAME_SUB_X": "X01",
        "TF_REUSE_INPUT_OPS_NAME_SUB_y": "y01",
        "TF_JOB_PRIORITY_trial0": "10",
        "TF_JOB_PRIORITY_trial1": "10",
        "TF_JOB_PRIORITY_trial2": "10",
    }


def main():
    config = SwitchFlowConfig.from_env(listing1_environment())
    print("parsed Listing 1 configuration:")
    print(f"  reuse_inputs = {config.reuse_inputs}")
    print(f"  input_links  = {config.input_links}")
    print(f"  priorities   = {config.priorities}\n")
    assert config.reuse_inputs, "Listing 1 enables input sharing"

    # Baseline: each trial is an independent job under time slicing,
    # re-preprocessing every batch.
    ctx = make_context(v100_server, 1, seed=5)
    gpu_name = ctx.machine.gpu(0).name
    trials = [
        JobHandle(name=f"trial{i}", model=get_model(MODEL), batch=BATCH,
                  training=True,
                  priority=config.priority_of(f"trial{i}"),
                  preferred_device=gpu_name)
        for i in range(TRIALS)
    ]
    run_colocation(ctx, SessionTimeSlicing, [
        JobSpec(job=job, iterations=ITERATIONS) for job in trials])
    baseline = sum(job.stats.throughput_items_per_s(warmup=2)
                   for job in trials) / TRIALS
    print(f"time slicing (3 independent trials): "
          f"{baseline:7.1f} images/s per trial")

    # SwitchFlow: the trials share one preprocessing pipeline and train
    # in lockstep over identical batches.
    ctx = make_context(v100_server, 1, seed=5)
    outcome = run_multitask(
        ctx, [get_model(MODEL)] * TRIALS, batch=BATCH, training=True,
        iterations=ITERATIONS)
    reuse = outcome.items_per_second(BATCH, warmup=2)
    print(f"SwitchFlow input reuse (lockstep):   "
          f"{reuse:7.1f} images/s per trial")
    print(f"\nimprovement: {improvement_percent(baseline, reuse):.0f}% "
          f"— every trial sees identical batches, so the tuning "
          f"comparison is also noise-free")


if __name__ == "__main__":
    main()
