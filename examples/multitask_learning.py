#!/usr/bin/env python3
"""Multi-task learning with shared input preprocessing (Section 3.4).

Two image-classification models consume the same augmented ImageNet
batches — the autonomous-driving scenario from the paper's intro
(pedestrian + vehicle detectors over one sensor feed). SwitchFlow
merges their computation graphs so the expensive decode/resize/augment
pipeline runs ONCE per batch and the processed tensor is kept in GPU
memory for both models; the baseline (session-based time slicing)
preprocesses every batch twice.

Run::

    python examples/multitask_learning.py
"""

from repro import (
    JobHandle,
    JobSpec,
    SessionTimeSlicing,
    get_model,
    improvement_percent,
    make_context,
    run_colocation,
    run_multitask,
)
from repro.hw import v100_server

BATCH = 128
ITERATIONS = 12
MODELS = ["ResNet50", "InceptionV3"]


def baseline_throughput():
    """Per-model items/s under session-based time slicing (no reuse)."""
    ctx = make_context(v100_server, 1, seed=33)
    gpu_name = ctx.machine.gpu(0).name
    jobs = [
        JobHandle(name=f"slice/{name}", model=get_model(name),
                  batch=BATCH, training=False, preferred_device=gpu_name)
        for name in MODELS
    ]
    run_colocation(ctx, SessionTimeSlicing, [
        JobSpec(job=job, iterations=ITERATIONS) for job in jobs])
    return sum(job.stats.throughput_items_per_s(warmup=2)
               for job in jobs) / len(jobs)


def reuse_throughput():
    """Per-model items/s with the merged, input-sharing schedule."""
    ctx = make_context(v100_server, 1, seed=33)
    outcome = run_multitask(
        ctx, [get_model(name) for name in MODELS], batch=BATCH,
        training=False, iterations=ITERATIONS)
    link = ctx.machine.link(ctx.machine.cpu.name, ctx.machine.gpu(0).name)
    copies = sum(1 for s in ctx.tracer.spans
                 if s.lane == link.lane and "HtoD" in s.name)
    print(f"  (input reuse: {copies} HtoD copies for "
          f"{outcome.rounds()} rounds x {len(MODELS)} models)")
    return outcome.items_per_second(BATCH, warmup=2)


def main():
    print(f"Sharing the input pipeline between {' + '.join(MODELS)} "
          f"(V100, inference BS={BATCH})\n")
    baseline = baseline_throughput()
    print(f"session time slicing: {baseline:7.1f} images/s per model")
    reuse = reuse_throughput()
    print(f"SwitchFlow reuse:     {reuse:7.1f} images/s per model")
    print(f"\nimprovement: {improvement_percent(baseline, reuse):.0f}% "
          f"(paper Figure 8/9: significant for CPU-bound inference)")


if __name__ == "__main__":
    main()
