#!/usr/bin/env python3
"""Latency-SLO inference serving under an open-loop request stream.

Requests for three different models arrive at fixed rates while a
training job hogs the same V100. We check each model's p95 against an
SLO under multi-threaded TF, session time slicing, and SwitchFlow —
the serving scenario (Clipper/TF-Serving style) that motivates the
paper's preemption design.

Run::

    python examples/inference_serving.py
"""

from repro import (
    JobHandle,
    JobSpec,
    MultiThreadedTF,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SessionTimeSlicing,
    SwitchFlowPolicy,
    get_model,
    make_context,
    run_colocation,
)
from repro.hw import v100_server

# (model, requests, inter-arrival ms, p95 SLO ms)
STREAMS = [
    ("MobileNetV2", 40, 120.0, 150.0),
    ("ResNet50", 40, 150.0, 200.0),
    ("InceptionV3", 30, 200.0, 250.0),
]


def serve_under(policy_factory, label):
    ctx = make_context(v100_server, 1, seed=77)
    gpu_name = ctx.machine.gpu(0).name
    specs = [JobSpec(
        job=JobHandle(name="trainer", model=get_model("ResNet50"),
                      batch=32, training=True, priority=PRIORITY_LOW,
                      preferred_device=gpu_name),
        iterations=1_000_000, background=True)]
    for model, requests, interval, _slo in STREAMS:
        specs.append(JobSpec(
            job=JobHandle(name=f"serve/{model}", model=get_model(model),
                          batch=1, training=False, priority=PRIORITY_HIGH,
                          preferred_device=gpu_name),
            iterations=requests, start_delay_ms=800.0,
            request_interval_ms=interval))
    result = run_colocation(ctx, policy_factory, specs)

    print(f"\n{label}:")
    met = 0
    for model, _requests, _interval, slo in STREAMS:
        summary = result.latency_summary(f"serve/{model}", warmup=3)
        ok = summary.p95 <= slo
        met += ok
        print(f"  {model:<14} p95={summary.p95:8.1f} ms  "
              f"SLO={slo:6.0f} ms  {'MET' if ok else 'VIOLATED'}")
    print(f"  -> {met}/{len(STREAMS)} SLOs met")
    return met


def main():
    print("Serving three model streams against a background trainer "
          "(V100)")
    tf_met = serve_under(MultiThreadedTF, "multi-threaded TF")
    ts_met = serve_under(SessionTimeSlicing, "session time slicing")
    sf_met = serve_under(SwitchFlowPolicy, "SwitchFlow")
    assert sf_met >= max(tf_met, ts_met)
    print("\nSwitchFlow keeps the serving SLOs that the baselines break.")


if __name__ == "__main__":
    main()
