"""Benchmark: Figure 2 (two ResNet50s sharing a V100)."""

from repro.experiments import fig2_timeline


def test_fig2_corun_throughput(once):
    result = once(fig2_timeline.run, iterations=20)
    print()
    print(result.to_table())
    print()
    print(fig2_timeline.render_timeline())
    solo = result.rows[0]["images_per_s"]
    for row in result.rows[1:]:
        # Paper: 226 -> 116 images/s, i.e. roughly halved.
        assert 0.35 * solo < row["images_per_s"] < 0.65 * solo
        assert row["serialization_fraction"] > 0.85
