"""Benchmark: Figure 2 (two ResNet50s sharing a V100)."""

import json

from repro.experiments import fig2_timeline
from repro.obs import tracer_to_chrome_trace, validate_chrome_trace
from repro.obs.report import WORKLOADS


def test_fig2_corun_throughput(once):
    result = once(fig2_timeline.run, iterations=20)
    print()
    print(result.to_table())
    print()
    print(fig2_timeline.render_timeline())
    solo = result.rows[0]["images_per_s"]
    for row in result.rows[1:]:
        # Paper: 226 -> 116 images/s, i.e. roughly halved.
        assert 0.35 * solo < row["images_per_s"] < 0.65 * solo
        assert row["serialization_fraction"] > 0.85


def test_fig2_chrome_trace_export(once):
    """The Figure 2 run exports to loadable chrome://tracing JSON."""
    ctx = once(WORKLOADS["fig2"], 0, 8)
    payload = json.loads(json.dumps(tracer_to_chrome_trace(ctx.tracer)))
    assert validate_chrome_trace(payload) == []
    process_rows = {event["args"]["name"]
                    for event in payload["traceEvents"]
                    if event.get("name") == "process_name"}
    # One labelled process row per device lane that recorded spans.
    for gpu in ctx.machine.gpus:
        assert gpu.lane in process_rows
    assert ctx.machine.cpu.lane in process_rows
