"""Gate CI on throughput regressions against the committed baseline.

Compares a freshly generated ``BENCH_core.json`` (the *candidate*)
against the one committed at the repo root (the *baseline*) on the
throughput rates that track the simulator's hot paths. A rate is a
regression when::

    candidate < baseline * (1 - threshold)

with a default threshold of 25% — generous enough to absorb CI-runner
noise (shared vCPUs vary run to run) while still catching the 2x-style
slowdowns that matter. Only *drops* fail; a faster candidate passes.

Usage (what the CI bench job runs)::

    PYTHONPATH=src python benchmarks/bench_core.py --quick \
        --output /tmp/BENCH_candidate.json
    python benchmarks/check_regression.py \
        --baseline BENCH_core.json --candidate /tmp/BENCH_candidate.json

Exits 0 when every rate holds, 1 listing each regressed rate, 2 on
malformed input. Keys present in only one file are reported but never
fatal — the committed baseline may trail a PR that adds a benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: (benchmark name, rate field) pairs gated against the baseline.
#: Higher is better for every one of these.
RATE_KEYS: Tuple[Tuple[str, str], ...] = (
    ("engine.dispatch", "optimized_events_per_sec"),
    ("engine.timeout", "optimized_events_per_sec"),
    ("engine.process", "optimized_events_per_sec"),
    ("engine.mixed", "optimized_events_per_sec"),
    ("executor.dispatch", "nodes_per_sec"),
    ("executor.ready_churn", "tasks_per_sec"),
    ("cost_model.lookup", "cached_lookups_per_sec"),
    ("histogram.quantile", "cached_queries_per_sec"),
    ("obs.overhead", "profiled_nodes_per_sec"),
    ("topology.route_lookup", "route_lookups_per_sec"),
    ("analysis.concurrency", "untracked_nodes_per_sec"),
    ("serving.request_throughput", "requests_per_sec"),
)

DEFAULT_THRESHOLD = 0.25


class RegressionCheckError(ValueError):
    """A benchmark file is missing, unreadable, or malformed."""


def load_rates(path: Path) -> Dict[str, float]:
    """Extract the gated rates from one BENCH_core.json payload."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise RegressionCheckError(f"{path}: no such file") from None
    except json.JSONDecodeError as exc:
        raise RegressionCheckError(f"{path}: invalid JSON ({exc})") from None
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise RegressionCheckError(f"{path}: missing 'benchmarks' object")
    rates: Dict[str, float] = {}
    for bench, field in RATE_KEYS:
        entry = benchmarks.get(bench)
        # A non-dict entry (older schema, hand-edited file) is treated
        # like an absent benchmark, not a crash: the key then shows up
        # as new/gone in the report instead of killing the gate.
        value = entry.get(field) if isinstance(entry, dict) else None
        if isinstance(value, (int, float)) and value > 0:
            rates[f"{bench}.{field}"] = float(value)
    return rates


def compare(baseline: Dict[str, float], candidate: Dict[str, float],
            threshold: float) -> Tuple[List[str], List[str]]:
    """Returns (report lines, regressed keys)."""
    lines: List[str] = []
    regressed: List[str] = []
    for key in sorted(set(baseline) | set(candidate)):
        if key not in baseline:
            lines.append(f"  new    {key}: {candidate[key]:,.0f}/s "
                         "(no baseline; not gated)")
            continue
        if key not in candidate:
            lines.append(f"  gone   {key}: baseline "
                         f"{baseline[key]:,.0f}/s, absent from candidate")
            continue
        base, cand = baseline[key], candidate[key]
        ratio = cand / base
        floor = base * (1.0 - threshold)
        if cand < floor:
            regressed.append(key)
            lines.append(
                f"  REGRESSION {key}: {cand:,.0f}/s vs baseline "
                f"{base:,.0f}/s ({ratio:.2f}x, floor {floor:,.0f}/s)")
        else:
            lines.append(f"  ok     {key}: {cand:,.0f}/s vs "
                         f"{base:,.0f}/s ({ratio:.2f}x)")
    return lines, regressed


def markdown_table(baseline: Dict[str, float],
                   candidate: Dict[str, float],
                   threshold: float) -> str:
    """Before/after delta table (GitHub-flavored markdown).

    Written per CI run as the bench-comparison artifact and appended to
    the job summary, so a failing gate shows *which* rate moved and by
    how much without downloading anything.
    """
    rows = ["| rate | baseline /s | candidate /s | delta | status |",
            "| --- | ---: | ---: | ---: | --- |"]
    for key in sorted(set(baseline) | set(candidate)):
        base = baseline.get(key)
        cand = candidate.get(key)
        if base is None:
            rows.append(f"| `{key}` | — | {cand:,.0f} | — | "
                        "new (not gated) |")
            continue
        if cand is None:
            rows.append(f"| `{key}` | {base:,.0f} | — | — | "
                        "gone from candidate |")
            continue
        ratio = cand / base
        status = ("**REGRESSION**" if cand < base * (1.0 - threshold)
                  else "ok")
        rows.append(f"| `{key}` | {base:,.0f} | {cand:,.0f} | "
                    f"{ratio - 1.0:+.1%} | {status} |")
    header = (f"### Core microbenchmarks vs committed baseline\n\n"
              f"Gate: fail when a rate drops more than "
              f"{threshold:.0%}. Candidate runs in quick mode on a "
              f"shared CI runner; the committed baseline is a "
              f"full-mode run, so absolute levels differ more than "
              f"ratios do.\n\n")
    return header + "\n".join(rows) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a fresh BENCH_core.json regresses more "
                    "than --threshold below the committed baseline.")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_core.json")
    parser.add_argument("--candidate", type=Path, required=True,
                        help="freshly generated BENCH_core.json")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD, metavar="FRACTION",
                        help="allowed fractional drop before failing "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--markdown", type=Path, default=None,
                        help="also write a before/after delta table "
                             "(markdown) to this path")
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        print(f"--threshold must be in [0, 1), got {args.threshold}",
              file=sys.stderr)
        return 2

    try:
        baseline = load_rates(args.baseline)
        candidate = load_rates(args.candidate)
    except RegressionCheckError as exc:
        print(f"check_regression: {exc}", file=sys.stderr)
        return 2

    lines, regressed = compare(baseline, candidate, args.threshold)
    # Write the delta table before any verdict bail-out: a baseline
    # with no gated rates still produces the artifact (all rows "new"),
    # so the CI summary never silently goes missing.
    if args.markdown is not None:
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text(
            markdown_table(baseline, candidate, args.threshold),
            encoding="utf-8")
    if not baseline:
        print(f"check_regression: {args.baseline} has none of the gated "
              "rates", file=sys.stderr)
        return 2
    print(f"regression gate: threshold {args.threshold:.0%} below "
          f"{args.baseline}")
    for line in lines:
        print(line)
    if regressed:
        print(f"FAIL: {len(regressed)} rate(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(regressed)}",
              file=sys.stderr)
        return 1
    print(f"PASS: all {len([k for k in candidate if k in baseline])} "
          "gated rates within threshold")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
