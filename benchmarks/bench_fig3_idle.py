"""Benchmark: Figure 3 (GPU idle fraction across models/GPUs/modes)."""

from repro.experiments import fig3_idle


def test_fig3_gpu_idle(once):
    result = once(fig3_idle.run, iterations=16)
    print()
    print(result.to_table())
    print()
    checks = fig3_idle.headline_checks(result)
    for check in checks:
        print("check:", check)
    assert not any("MISS" in check for check in checks)
