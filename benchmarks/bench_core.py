"""Core micro-benchmarks: the perf trajectory of the simulation stack.

Three families, matching the hot paths the simulator spends its time in:

* ``engine.*`` — raw event-loop throughput (events/sec), measured on
  both the optimized engine and the pre-optimization baseline loop
  (``Engine(fast_path=False)``), so every run records its own speedup.
* ``executor.dispatch`` — end-to-end node dispatch rate of a real solo
  workload (graph nodes + pool tasks per wall second).
* ``cost_model.lookup`` — memoized vs uncached cost-model lookup rate
  over the model zoo's ops, plus the cache hit rate.

Run from the repo root (writes ``BENCH_core.json`` there)::

    PYTHONPATH=src python benchmarks/bench_core.py --quick

or under pytest (uses a throwaway output path)::

    pytest benchmarks/bench_core.py -s

The JSON is committed per-PR, so the trajectory of events/sec across
the repo's history is `git log -p BENCH_core.json`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.experiments.common import run_solo
from repro.graph.cost_model import (
    COST_CACHE_STATS,
    clear_cost_cache,
    cost_cache_disabled,
    cpu_op_cost_ms,
    gpu_kernel_cost,
)
from repro.hw import TESLA_V100, XEON_DUAL_18C, single_gpu_server
from repro.models import get_model
from repro.sim import Engine
from repro.sim.events import Event

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

# Benchmark sizes: (quick, full)
_ENGINE_DISPATCH_EVENTS = (200_000, 600_000)
_ENGINE_TIMEOUT_EVENTS = (100_000, 300_000)
_ENGINE_PROCESS_EVENTS = (30_000, 120_000)
_ENGINE_MIXED_EVENTS = (60_000, 180_000)
_EXECUTOR_ITERATIONS = (3, 8)
_READY_CHURN_TASKS = (20_000, 60_000)
_COST_LOOKUP_ROUNDS = (20, 60)
_HISTOGRAM_SAMPLES = (5_000, 20_000)
_HISTOGRAM_QUERIES = (20_000, 50_000)
_OBS_ITERATIONS = (3, 8)
_ROUTE_LOOKUPS = (100_000, 300_000)
_SERVING_DURATION_MS = (1_500.0, 6_000.0)
# Each engine pair is run this many times per side, keeping the best
# rate. One shot on a shared single-core container carries ±15% noise,
# which is enough to flip a 3x speedup to 2.6x run-to-run; best-of-N
# converges on the machine's actual capability for both sides equally.
_ENGINE_REPEATS = (2, 5)


def _make_engine(optimized: bool) -> Engine:
    # optimized=True is the array core (the default); the baseline is
    # the legacy heap agenda kept for exactly this comparison.
    return Engine(core="array" if optimized else "legacy")


# ---------------------------------------------------------------------------
# Engine family
# ---------------------------------------------------------------------------
def bench_engine_dispatch(optimized: bool, events: int,
                          batch: int = 10_000) -> float:
    """schedule+dispatch rate: pre-created events succeed in batches.

    This isolates the scheduling core — agenda insert, merged pop,
    callback dispatch — which is exactly what the immediate-lane fast
    path targets.
    """
    engine = _make_engine(optimized)
    processed = 0

    def callback(_event) -> None:
        nonlocal processed
        processed += 1

    elapsed = 0.0
    rounds = events // batch
    for _ in range(rounds):
        # Event construction happens outside the timed segment — only
        # the schedule (succeed) + dispatch (run) path is measured.
        group = []
        for _ in range(batch):
            event = Event(engine)
            event.callbacks.append(callback)
            group.append(event)
        started = time.perf_counter()
        for event in group:
            event.succeed()
        engine.run()
        elapsed += time.perf_counter() - started
    assert processed == rounds * batch
    return processed / elapsed


def bench_engine_timeouts(optimized: bool, events: int) -> float:
    """Heap-lane throughput: timeouts with staggered future delays."""
    engine = _make_engine(optimized)
    processed = 0

    def callback(_event) -> None:
        nonlocal processed
        processed += 1

    started = time.perf_counter()
    for index in range(events):
        timeout = engine.timeout((index % 7) * 0.25)
        timeout.callbacks.append(callback)
    engine.run()
    elapsed = time.perf_counter() - started
    assert processed == events
    return processed / elapsed


def bench_engine_processes(optimized: bool, events: int,
                           processes: int = 50) -> float:
    """End-to-end loop rate with generator processes yielding timeouts."""
    engine = _make_engine(optimized)
    steps = events // processes

    def proc(env):
        for _ in range(steps):
            yield env.timeout(1.0)

    started = time.perf_counter()
    for _ in range(processes):
        engine.process(proc(engine))
    engine.run()
    elapsed = time.perf_counter() - started
    return (steps * processes) / elapsed


def bench_engine_mixed(optimized: bool, events: int) -> float:
    """Realistic blend: processes, future timeouts and immediate chains.

    The single-family benches isolate one agenda lane each; real runs
    interleave all three. A third of the events step generator
    processes, a third are staggered future timeouts, and a third are
    re-arming chains that alternate between the immediate lane and
    short future delays — so bucket churn, lane swaps and pooled
    timeout reuse all happen in one loop.
    """
    engine = _make_engine(optimized)
    third = events // 3
    processed = 0

    def callback(_event) -> None:
        nonlocal processed
        processed += 1

    n_procs = 50
    steps = third // n_procs

    def proc(env):
        for _ in range(steps):
            yield env.timeout(1.0)

    chains = 8
    quota = third // chains

    def chain(count):
        def fire(_event) -> None:
            nonlocal processed
            processed += 1
            if count[0] > 0:
                count[0] -= 1
                delay = 0.0 if count[0] % 4 else 0.25
                engine.timeout(delay).callbacks.append(fire)
        return fire

    started = time.perf_counter()
    for _ in range(n_procs):
        engine.process(proc(engine))
    for index in range(third):
        engine.timeout((index % 5) * 0.5).callbacks.append(callback)
    for _ in range(chains):
        engine.timeout(0.0).callbacks.append(chain([quota - 1]))
    engine.run()
    elapsed = time.perf_counter() - started
    total = n_procs * steps + third + chains * quota
    assert processed == third + chains * quota
    return total / elapsed


def _engine_pair(bench, events: int, repeats: int = 1) -> dict:
    # Interleave the two sides so a slow stretch of the host (another
    # container's burst, thermal dip) degrades both equally instead of
    # whichever side's block it happened to land on.
    baseline = optimized = 0.0
    for _ in range(repeats):
        baseline = max(baseline, bench(False, events))
        optimized = max(optimized, bench(True, events))
    return {
        "events": events,
        "repeats": repeats,
        "baseline_events_per_sec": round(baseline),
        "optimized_events_per_sec": round(optimized),
        "speedup": round(optimized / baseline, 3),
    }


# ---------------------------------------------------------------------------
# Executor family
# ---------------------------------------------------------------------------
def bench_executor_dispatch(iterations: int) -> dict:
    """Node dispatch rate of a real solo workload (wall-clock)."""
    model = get_model("MobileNetV2")
    started = time.perf_counter()
    ctx, stats = run_solo(single_gpu_server, (TESLA_V100,), model,
                          batch=32, training=True, iterations=iterations)
    elapsed = time.perf_counter() - started
    tasks = ctx.metrics.value("pool.tasks_total")
    kernels = ctx.metrics.value("gpu.kernels_total")
    return {
        "model": model.name,
        "iterations": iterations,
        "pool_tasks": int(tasks),
        "gpu_kernels": int(kernels),
        "simulated_ms": round(ctx.now, 1),
        "wall_s": round(elapsed, 3),
        "nodes_per_sec": round(tasks / elapsed) if elapsed > 0 else 0,
    }


def bench_executor_ready_churn(total_tasks: int, wave: int = 64,
                               workers: int = 8) -> dict:
    """Ready-set churn: waves of microtasks through one thread pool.

    Isolates the completion-wave dispatch path the executor leans on —
    ``submit_batch`` placement, worker wake, local-queue pop and the
    incremental queue-depth accounting — without the model/device
    machinery of ``executor.dispatch``. A driver releases a wave of
    trivial tasks, waits for the pool to drain it, and repeats.
    """
    from repro.hw.cpu import CpuDevice
    from repro.runtime.threadpool import Task, ThreadPool

    engine = Engine()
    cpu = CpuDevice(engine, XEON_DUAL_18C)
    pool = ThreadPool(engine, cpu, workers, name="bench")

    def driver(env):
        submitted = 0
        while submitted < total_tasks:
            count = min(wave, total_tasks - submitted)
            done = env.event()
            remaining = [count]

            def body(_worker, done=done, remaining=remaining):
                yield env.timeout(0.001)
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed()

            pool.submit_batch(
                [Task(f"churn{submitted + i}", "bench", body)
                 for i in range(count)])
            submitted += count
            yield done

    engine.process(driver(engine))
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    pool.shutdown()
    engine.run()
    return {
        "tasks": total_tasks,
        "wave": wave,
        "workers": workers,
        "wall_s": round(elapsed, 3),
        "tasks_per_sec": round(total_tasks / elapsed)
        if elapsed > 0 else 0,
    }


# ---------------------------------------------------------------------------
# Observability family
# ---------------------------------------------------------------------------
def bench_histogram_quantile(samples: int, queries: int) -> dict:
    """Quantile query rate: sorted-view cache vs observe-churn.

    The cached path answers repeated queries off one sorted view; the
    churn path interleaves an observe before every query, forcing a
    re-sort each time — the worst case the cache is designed to beat.
    """
    from repro.obs.metrics import MetricsRegistry

    def _filled() -> object:
        histogram = MetricsRegistry().histogram("bench.lat_ms", "bench")
        for index in range(samples):
            histogram.observe(float((index * 37) % 997))
        return histogram

    histogram = _filled()
    started = time.perf_counter()
    for index in range(queries):
        histogram.quantile(25 + (index % 3) * 25)
    cached_elapsed = time.perf_counter() - started

    histogram = _filled()
    churn_queries = max(200, queries // 50)
    started = time.perf_counter()
    for index in range(churn_queries):
        histogram.observe(float(index))
        histogram.quantile(95)
    churn_elapsed = time.perf_counter() - started

    cached_rate = queries / cached_elapsed
    churn_rate = churn_queries / churn_elapsed
    return {
        "samples": samples,
        "queries": queries,
        "cached_queries_per_sec": round(cached_rate),
        "churn_queries_per_sec": round(churn_rate),
        "cache_speedup": round(cached_rate / churn_rate, 3),
    }


def bench_concurrency_overhead(iterations: int) -> dict:
    """Dispatch rate with the concurrency tracker off / lockset / hb.

    The untracked run is the hot-path guard: every synchronization
    source and shared-state site now carries an instrumentation hook,
    and with no tracker installed each hook must cost one module-global
    load plus a ``None`` test — so ``untracked_nodes_per_sec`` is gated
    against regression alongside ``executor.dispatch``. The tracked
    rates record what full happens-before and lockset-only analysis
    actually cost on the same workload.
    """
    from repro.analysis.concurrency import CONCURRENCY_ENV

    model = get_model("MobileNetV2")

    def _run(mode) -> tuple:
        previous = os.environ.get(CONCURRENCY_ENV)
        if mode is None:
            os.environ.pop(CONCURRENCY_ENV, None)
        else:
            os.environ[CONCURRENCY_ENV] = mode
        started = time.perf_counter()
        try:
            ctx, _stats = run_solo(single_gpu_server, (TESLA_V100,),
                                   model, batch=32, training=True,
                                   iterations=iterations)
        finally:
            if previous is None:
                os.environ.pop(CONCURRENCY_ENV, None)
            else:
                os.environ[CONCURRENCY_ENV] = previous
        elapsed = time.perf_counter() - started
        tasks = ctx.metrics.value("pool.tasks_total")
        return (round(tasks / elapsed) if elapsed > 0 else 0, ctx)

    untracked, _ = _run(None)
    lockset, _ = _run("lockset")
    hb, ctx = _run("hb")
    tracker = ctx.concurrency
    return {
        "model": model.name,
        "iterations": iterations,
        "untracked_nodes_per_sec": untracked,
        "lockset_nodes_per_sec": lockset,
        "hb_nodes_per_sec": hb,
        "hb_overhead_pct": round(100.0 * (untracked - hb) / untracked, 1)
        if untracked else 0.0,
        "tracked_accesses": tracker.accesses,
        "tracked_sync_ops": tracker.sync_ops,
    }


def bench_obs_overhead(iterations: int) -> dict:
    """Dispatch rate with the full observability stack armed.

    Same solo workload as ``executor.dispatch``, but with windowed
    time-series sampling attached and a critical-path profile computed
    afterwards. Gating this rate (not just the bare-dispatch one)
    catches observability creep on the hot path.
    """
    from repro.obs.profile import profile_run
    from repro.obs.timeseries import TIMESERIES_ENV

    model = get_model("MobileNetV2")
    previous = os.environ.get(TIMESERIES_ENV)
    os.environ[TIMESERIES_ENV] = "50"
    started = time.perf_counter()
    try:
        ctx, _stats = run_solo(single_gpu_server, (TESLA_V100,), model,
                               batch=32, training=True,
                               iterations=iterations)
    finally:
        if previous is None:
            os.environ.pop(TIMESERIES_ENV, None)
        else:
            os.environ[TIMESERIES_ENV] = previous
    profile = profile_run(ctx)
    elapsed = time.perf_counter() - started
    tasks = ctx.metrics.value("pool.tasks_total")
    return {
        "model": model.name,
        "iterations": iterations,
        "timeseries_windows": len(ctx.timeseries.windows),
        "profile_overhead_ms": round(profile.overhead_wall_ms, 3),
        "wall_s": round(elapsed, 3),
        "profiled_nodes_per_sec": round(tasks / elapsed)
        if elapsed > 0 else 0,
    }


# ---------------------------------------------------------------------------
# Topology family
# ---------------------------------------------------------------------------
def bench_route_lookup(lookups: int) -> dict:
    """Device/route lookup rate on a 4-node cluster.

    ``device()`` sits on the migration and sanitizer hot paths; it used
    to be a linear scan over ``devices`` and is now a dict hit — the
    scan is re-measured here so the payload records its own speedup.
    ``route()`` adds the per-pair cache on top (a miss walks the
    topology and allocates hop lists; steady-state migrations must not).
    """
    from repro.hw.topology import v100_cluster

    engine = Engine()
    cluster = v100_cluster(engine, 4, 4)
    names = [gpu.name for gpu in cluster.gpus]
    pairs = [(a, b) for a in names for b in names if a != b]

    started = time.perf_counter()
    for index in range(lookups):
        cluster.device(names[index % len(names)])
    device_elapsed = time.perf_counter() - started

    devices = cluster.devices
    started = time.perf_counter()
    for index in range(lookups):
        wanted = names[index % len(names)]
        for device in devices:
            if device.name == wanted:
                break
    scan_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    for index in range(lookups):
        source, destination = pairs[index % len(pairs)]
        cluster.route(source, destination)
    route_elapsed = time.perf_counter() - started

    device_rate = lookups / device_elapsed
    scan_rate = lookups / scan_elapsed
    return {
        "devices": len(devices),
        "routes": len(pairs),
        "lookups": lookups,
        "device_lookups_per_sec": round(device_rate),
        "scan_lookups_per_sec": round(scan_rate),
        "device_speedup": round(device_rate / scan_rate, 3),
        "route_lookups_per_sec": round(lookups / route_elapsed),
    }


# ---------------------------------------------------------------------------
# Serving family
# ---------------------------------------------------------------------------
def bench_serving_throughput(duration_ms: float,
                             rate_rps: float = 80.0) -> dict:
    """Wall-clock request rate of the serving front-end (repro.serving).

    A heavy open-loop stream through the whole admission -> batcher ->
    dispatch path on a solo served model — no trainer, so the number
    gates the serving stack itself (queue events, batch formation,
    per-request accounting) rather than preemption behavior. The rate
    sits just under the solo service capacity: a saturated queue would
    shed a timing-dependent fraction and make the gated rate noisy.
    """
    from repro.baselines import MultiThreadedTF
    from repro.core import PRIORITY_HIGH, JobHandle, make_context
    from repro.hw import v100_server
    from repro.serving import (SLOTarget, ServedModelSpec, make_trace,
                               run_serving)

    model = get_model("MobileNetV2")
    ctx = make_context(v100_server, 1, seed=0)
    trace = make_trace(ctx.rng, "bench-serve", "poisson", rate_rps,
                       duration_ms)
    served = ServedModelSpec(
        job=JobHandle(name="bench-serve", model=model, batch=8,
                      training=False, priority=PRIORITY_HIGH,
                      preferred_device=ctx.machine.gpu(0).name),
        trace=trace, max_batch=8, batch_timeout_ms=5.0,
        queue_capacity=256, shed_policy="drop-newest",
        slo=SLOTarget(p99_ms=10_000.0))
    started = time.perf_counter()
    result = run_serving(ctx, MultiThreadedTF, [served])
    elapsed = time.perf_counter() - started
    stream = result.served("bench-serve")
    return {
        "model": model.name,
        "rate_rps": rate_rps,
        "duration_ms": duration_ms,
        "arrived": stream.arrived,
        "completed": stream.completed,
        "batches": len(stream.batches),
        "wall_s": round(elapsed, 3),
        "requests_per_sec": round(stream.completed / elapsed)
        if elapsed > 0 else 0,
    }


# ---------------------------------------------------------------------------
# Cost-model family
# ---------------------------------------------------------------------------
def _zoo_ops():
    ops = []
    for name in ("ResNet50", "MobileNetV2", "VGG16"):
        graph = get_model(name).build_graph(batch=32, training=True)
        ops.extend(node.op for node in graph)
    return ops


def bench_cost_lookup(rounds: int) -> dict:
    """Memoized vs uncached lookup rate over the model zoo's ops."""
    ops = _zoo_ops()
    gpu_spec, cpu_spec = TESLA_V100, XEON_DUAL_18C

    def sweep() -> int:
        for op in ops:
            gpu_kernel_cost(op, gpu_spec)
            cpu_op_cost_ms(op, cpu_spec)
        return 2 * len(ops)

    with cost_cache_disabled():
        started = time.perf_counter()
        uncached_lookups = sum(sweep() for _ in range(rounds))
        uncached_elapsed = time.perf_counter() - started

    clear_cost_cache(reset_stats=True)
    started = time.perf_counter()
    cached_lookups = sum(sweep() for _ in range(rounds))
    cached_elapsed = time.perf_counter() - started
    stats = COST_CACHE_STATS
    hits = stats.gpu_hits + stats.cpu_hits
    total = hits + stats.gpu_misses + stats.cpu_misses

    uncached_rate = uncached_lookups / uncached_elapsed
    cached_rate = cached_lookups / cached_elapsed
    return {
        "ops": len(ops),
        "rounds": rounds,
        "uncached_lookups_per_sec": round(uncached_rate),
        "cached_lookups_per_sec": round(cached_rate),
        "speedup": round(cached_rate / uncached_rate, 3),
        "cache_hit_rate": round(hits / total, 4) if total else 0.0,
    }


# ---------------------------------------------------------------------------
# Suite driver
# ---------------------------------------------------------------------------
def run_suite(mode: str = "quick", output: Path = DEFAULT_OUTPUT) -> dict:
    size = 0 if mode == "quick" else 1
    repeats = _ENGINE_REPEATS[size]
    payload = {
        "schema": 1,
        "mode": mode,
        "generated_by": "benchmarks/bench_core.py",
        "benchmarks": {
            "engine.dispatch": _engine_pair(
                bench_engine_dispatch, _ENGINE_DISPATCH_EVENTS[size],
                repeats),
            "engine.timeout": _engine_pair(
                bench_engine_timeouts, _ENGINE_TIMEOUT_EVENTS[size],
                repeats),
            "engine.process": _engine_pair(
                bench_engine_processes, _ENGINE_PROCESS_EVENTS[size],
                repeats),
            "engine.mixed": _engine_pair(
                bench_engine_mixed, _ENGINE_MIXED_EVENTS[size], repeats),
            "executor.dispatch": bench_executor_dispatch(
                _EXECUTOR_ITERATIONS[size]),
            "executor.ready_churn": bench_executor_ready_churn(
                _READY_CHURN_TASKS[size]),
            "cost_model.lookup": bench_cost_lookup(
                _COST_LOOKUP_ROUNDS[size]),
            "histogram.quantile": bench_histogram_quantile(
                _HISTOGRAM_SAMPLES[size], _HISTOGRAM_QUERIES[size]),
            "obs.overhead": bench_obs_overhead(_OBS_ITERATIONS[size]),
            "analysis.concurrency": bench_concurrency_overhead(
                _EXECUTOR_ITERATIONS[size]),
            "topology.route_lookup": bench_route_lookup(
                _ROUTE_LOOKUPS[size]),
            "serving.request_throughput": bench_serving_throughput(
                _SERVING_DURATION_MS[size]),
        },
    }
    output = Path(output)
    output.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    return payload


def _print_summary(payload: dict) -> None:
    benches = payload["benchmarks"]
    for name in ("engine.dispatch", "engine.timeout", "engine.process",
                 "engine.mixed"):
        entry = benches[name]
        print(f"{name}: baseline {entry['baseline_events_per_sec']:,} ev/s"
              f" -> optimized {entry['optimized_events_per_sec']:,} ev/s"
              f" ({entry['speedup']}x)")
    executor = benches["executor.dispatch"]
    print(f"executor.dispatch: {executor['nodes_per_sec']:,} nodes/s "
          f"({executor['pool_tasks']} tasks in {executor['wall_s']}s)")
    churn = benches["executor.ready_churn"]
    print(f"executor.ready_churn: {churn['tasks_per_sec']:,} tasks/s "
          f"({churn['tasks']} tasks, waves of {churn['wave']} across "
          f"{churn['workers']} workers)")
    cost = benches["cost_model.lookup"]
    print(f"cost_model.lookup: {cost['uncached_lookups_per_sec']:,}/s "
          f"uncached -> {cost['cached_lookups_per_sec']:,}/s cached "
          f"({cost['speedup']}x, hit rate {cost['cache_hit_rate']:.2%})")
    quantile = benches["histogram.quantile"]
    print(f"histogram.quantile: {quantile['cached_queries_per_sec']:,}/s "
          f"cached vs {quantile['churn_queries_per_sec']:,}/s under "
          f"churn ({quantile['cache_speedup']}x)")
    obs = benches["obs.overhead"]
    print(f"obs.overhead: {obs['profiled_nodes_per_sec']:,} nodes/s with "
          f"timeseries+profiler on ({obs['timeseries_windows']} windows, "
          f"profile {obs['profile_overhead_ms']} ms)")
    concurrency = benches["analysis.concurrency"]
    print(f"analysis.concurrency: {concurrency['untracked_nodes_per_sec']:,} "
          f"nodes/s untracked, {concurrency['lockset_nodes_per_sec']:,} "
          f"lockset, {concurrency['hb_nodes_per_sec']:,} hb "
          f"({concurrency['hb_overhead_pct']}% overhead, "
          f"{concurrency['tracked_accesses']} accesses / "
          f"{concurrency['tracked_sync_ops']} sync ops)")
    topo = benches["topology.route_lookup"]
    print(f"topology.route_lookup: {topo['device_lookups_per_sec']:,}/s "
          f"device (scan {topo['scan_lookups_per_sec']:,}/s, "
          f"{topo['device_speedup']}x), "
          f"{topo['route_lookups_per_sec']:,}/s cached routes over "
          f"{topo['routes']} pairs")
    serving = benches["serving.request_throughput"]
    print(f"serving.request_throughput: "
          f"{serving['requests_per_sec']:,} req/s "
          f"({serving['completed']}/{serving['arrived']} requests in "
          f"{serving['batches']} batches, {serving['wall_s']}s)")


# ---------------------------------------------------------------------------
# pytest entry points (collected via the bench_*.py glob)
# ---------------------------------------------------------------------------
def test_bench_core(once, tmp_path):
    payload = once(run_suite, mode="quick",
                   output=tmp_path / "BENCH_core.json")
    assert (tmp_path / "BENCH_core.json").exists()
    benches = payload["benchmarks"]
    # Loose sanity floors (CI machines are noisy); the committed
    # BENCH_core.json records the real numbers.
    assert benches["engine.dispatch"]["speedup"] > 1.2
    assert benches["engine.mixed"]["speedup"] > 1.0
    assert benches["cost_model.lookup"]["speedup"] > 1.5
    assert benches["cost_model.lookup"]["cache_hit_rate"] > 0.9
    assert benches["executor.dispatch"]["pool_tasks"] > 0
    assert benches["executor.ready_churn"]["tasks_per_sec"] > 0
    assert benches["histogram.quantile"]["cache_speedup"] > 1.0
    assert benches["obs.overhead"]["profiled_nodes_per_sec"] > 0
    assert benches["obs.overhead"]["timeseries_windows"] > 0
    concurrency = benches["analysis.concurrency"]
    assert concurrency["untracked_nodes_per_sec"] > 0
    assert concurrency["hb_nodes_per_sec"] > 0
    assert concurrency["tracked_sync_ops"] > 0
    # The dict lookup must beat the linear scan it replaced (satellite
    # guard): 20 devices on the bench cluster, so anything close to 1x
    # means the lookup regressed back to a scan.
    assert benches["topology.route_lookup"]["device_speedup"] > 1.5
    assert benches["topology.route_lookup"]["route_lookups_per_sec"] > 0
    serving = benches["serving.request_throughput"]
    assert serving["requests_per_sec"] > 0
    # The bench queue is deep and the SLO loose: the solo front-end
    # must complete (not shed) essentially the whole stream.
    assert serving["completed"] > 0.9 * serving["arrived"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SwitchFlow-repro core microbenchmarks")
    parser.add_argument("--quick", action="store_true",
                        help="smaller event counts (CI mode)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    payload = run_suite(mode="quick" if args.quick else "full",
                        output=args.output)
    _print_summary(payload)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
