"""Benchmark: Figure 6 (p95 inference tail latency, TF vs SwitchFlow)."""

from repro.experiments import fig6_tail_latency


def test_fig6_tail_latency(once):
    result = once(fig6_tail_latency.run, requests=40)
    print()
    print(result.to_table())
    # SwitchFlow wins or draws. Cells where the background trainer is
    # itself pipeline-bound (MobileNetV2) are ~1x on this substrate: the
    # contended resource there is the host CPU, which preemption cannot
    # reclaim. See EXPERIMENTS.md for the calibration discussion.
    for row in result.rows:
        assert row["improvement_x"] > 0.75, row
    nmt_rows = [row for row in result.rows
                if row["inference_job"] == "NMT"]
    cnn_rows = [row for row in result.rows
                if row["inference_job"] != "NMT"]
    best_nmt = max(row["improvement_x"] for row in nmt_rows)
    # Paper: up to 19.05x for NMT-vs-VGG16; CNN panels up to ~4-6x.
    assert best_nmt > 8.0
    assert max(row["improvement_x"] for row in cnn_rows) > 3.0
    # Heavier background training hurts the baseline more, so the
    # improvement grows with the trainer's weight (the paper's panel
    # (d) ordering: MobileNetV2 < ResNet50 < VGG16).
    nmt_by_bg = {row["training_job"]: row["improvement_x"]
                 for row in nmt_rows}
    if {"MobileNetV2", "VGG16"} <= set(nmt_by_bg):
        assert nmt_by_bg["VGG16"] > nmt_by_bg["MobileNetV2"]
