"""Benchmark: Figure 8 (input reuse between identical models)."""

from repro.experiments import fig8_input_reuse


def test_fig8_input_reuse(once):
    result = once(fig8_input_reuse.run, iterations=8)
    print()
    print(result.to_table())

    def gains(panel_prefix):
        return {row["model"]: row["improvement_pct"]
                for row in result.rows
                if row["panel"].startswith(panel_prefix)}

    train_v100 = gains("(b)")
    infer_v100 = gains("(d)")
    infer_tx2 = gains("(e)")

    # For compute-bound models, training gains are marginal while
    # inference gains are large (paper: "marginal" vs "up to 65%").
    compute_bound = ["ResNet50", "VGG16", "DenseNet121", "InceptionV3",
                     "InceptionResNetV2"]
    for model in compute_bound:
        assert train_v100[model] < 15.0, (model, train_v100[model])
        assert infer_v100[model] > train_v100[model]
    assert max(infer_v100[m] for m in compute_bound) > 40.0
    # On the V100, complex models gain more than lightweight ones.
    assert infer_v100["ResNet50"] > infer_v100["MobileNetV2"]
    # On the GPU-bound TX2, lightweight models gain more.
    assert infer_tx2["MobileNetV2"] > infer_tx2["ResNet50"]
    # Everything is a genuine improvement.
    assert all(row["improvement_pct"] > 0 for row in result.rows)
