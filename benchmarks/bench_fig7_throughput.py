"""Benchmark: Figure 7 (co-running training throughput + OOM behavior)."""

from repro.experiments import fig7_throughput


def test_fig7_throughput(once):
    result = once(fig7_throughput.run, iterations=8)
    print()
    print(result.to_table())

    tf_rows = [row for row in result.rows if row["panel"].startswith(
        ("(a)", "(b)"))]
    sf_rows = [row for row in result.rows
               if "SwitchFlow" in row["panel"]]
    mps_rows = [row for row in result.rows if "MPS" in row["panel"]]

    # (a)(b): the 11 GB GPUs see OOM crashes for heavy pairs, and
    # surviving pairs suffer mutual slowdown.
    assert any(row["oom"] != "none" for row in tf_rows)
    survivors = [row for row in tf_rows if row["oom"] == "none"]
    assert survivors
    for row in survivors:
        assert row["model_imgs_per_s"] < 0.85 * row["model_solo_imgs_per_s"]

    # (c): MPS on the 32 GB V100 completes but is slow.
    assert all(row["oom"] == "none" for row in mps_rows)
    for row in mps_rows:
        assert row["model_imgs_per_s"] < 0.9 * row["model_solo_imgs_per_s"]

    # (d)-(f): SwitchFlow never crashes, preempts, and the high-priority
    # job runs near solo speed. The paper itself observes a residual
    # loss ("the low priority job occupied a few worker threads") —
    # largest when the victim lands on the CPU (panel (d)), where its
    # MKL executor and pipeline keep burning host cores.
    assert all(row["oom"] == "none" for row in sf_rows)
    assert all(row["preemptions"] >= 1 for row in sf_rows)
    ratios = []
    for row in sf_rows:
        ratio = row["model_imgs_per_s"] / row["model_solo_imgs_per_s"]
        ratios.append(ratio)
        assert ratio > 0.55, row
    # Most cells are at (or above) solo; losses come from the victim's
    # pipeline contending for host cores, not from the GPU.
    assert sum(1 for ratio in ratios if ratio >= 0.85) >= len(ratios) // 2


def test_mps_default_mode_crashes_on_11gb(once):
    crashed = once(fig7_throughput.mps_default_mode_crashes)
    print(f"\nMPS default-reservation crash set: {crashed}")
    assert crashed  # paper: 'all models crash under MPS on 11 GB GPUs'
