"""Benchmark: design ablations (DESIGN.md's callouts)."""

from repro.experiments import ablations


def test_temporary_pool_tradeoff(once):
    result = once(ablations.temporary_pool_tradeoff)
    print()
    print(result.to_table())
    rows = sorted(result.rows, key=lambda row: row["temporary_workers"])
    victims = [row["victim_imgs_per_s"] for row in rows]
    highs = [row["high_imgs_per_s"] for row in rows]
    # More temporary workers: victim speeds up, high-priority job pays.
    assert victims == sorted(victims)
    assert highs == sorted(highs, reverse=True)


def test_cpu_fallback_ablation(once):
    result = once(ablations.cpu_fallback_ablation)
    print()
    print(result.to_table())
    by_mode = {row["cpu_fallback"]: row for row in result.rows}
    assert by_mode["enabled"]["victim_device"] != "Tesla V100"
    assert by_mode["disabled"]["victim_device"] == "Tesla V100"
    # Without the fallback the high-priority job keeps being contended.
    assert by_mode["enabled"]["high_imgs_per_s"] > \
        by_mode["disabled"]["high_imgs_per_s"]


def test_context_switch_sensitivity(once):
    result = once(ablations.context_switch_sensitivity)
    print()
    print(result.to_table())
    rows = sorted(result.rows, key=lambda row: row["context_switch_ms"])
    throughputs = [row["per_model_imgs_per_s"] for row in rows]
    assert throughputs == sorted(throughputs, reverse=True)
