"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures on the
simulated substrate and prints the resulting table. The experiments are
deterministic, so each runs exactly once (``pedantic`` with one round);
the benchmark timing records how long the reproduction takes to run.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
