"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures on the
simulated substrate and prints the resulting table. The experiments are
deterministic, so each runs exactly once (``pedantic`` with one round);
the benchmark timing records how long the reproduction takes to run.

Run with::

    pytest benchmarks/ --benchmark-only -s

The suite degrades gracefully when ``pytest-benchmark`` is not
installed (the minimal CI image omits it): ``run_once`` simply calls
the function, so ``pytest benchmarks/`` still passes — only the timing
report is lost.
"""

from __future__ import annotations

import pytest

try:
    import pytest_benchmark  # noqa: F401
    HAVE_PYTEST_BENCHMARK = True
except ImportError:  # pragma: no cover - exercised in the minimal image
    HAVE_PYTEST_BENCHMARK = False


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once, under the timer when available."""
    if benchmark is None:
        return func(*args, **kwargs)
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


if HAVE_PYTEST_BENCHMARK:
    @pytest.fixture
    def once(benchmark):
        def runner(func, *args, **kwargs):
            return run_once(benchmark, func, *args, **kwargs)

        return runner
else:
    @pytest.fixture
    def once():
        def runner(func, *args, **kwargs):
            return run_once(None, func, *args, **kwargs)

        return runner
