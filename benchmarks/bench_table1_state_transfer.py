"""Benchmark: regenerate Table 1 (state sizes and PCIe transfer times)."""

from repro.experiments import table1_state_transfer


def test_table1(once):
    result = once(table1_state_transfer.run)
    print()
    print(result.to_table())
    for row in result.rows:
        assert abs(row["stateful_mib"] - row["paper_mib"]) \
            <= 0.06 * row["paper_mib"]
        assert abs(row["transfer_ms"] - row["paper_ms"]) \
            <= 0.30 * row["paper_ms"]
