"""Benchmark: Figure 9 (input reuse among different models)."""

from repro.experiments import fig9_diff_models


def test_fig9_diff_models(once):
    result = once(fig9_diff_models.run, iterations=8)
    print()
    print(result.to_table())

    pairings = [row for row in result.rows if row["panel"] == "(a) pairings"]
    counts = [row for row in result.rows
              if row["panel"] == "(b) model count"]

    # Larger batches increase the gain (CPU becomes the bottleneck).
    by_mix = {}
    for row in pairings:
        by_mix.setdefault(row["models"], {})[row["batch"]] = \
            row["improvement_pct"]
    for batches in by_mix.values():
        assert batches[128] >= batches[32] * 0.8   # monotone-ish trend

    # Marginal gain per added model does not accelerate beyond two
    # (the paper's diminishing-returns recommendation of <=3 models).
    by_count = {row["n_models"]: row["improvement_pct"] for row in counts}
    marginal_3 = by_count[3] - by_count[2]
    marginal_4 = by_count[4] - by_count[3]
    assert marginal_4 < 1.2 * marginal_3
    assert all(row["improvement_pct"] > 0 for row in result.rows)
