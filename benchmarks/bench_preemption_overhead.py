"""Benchmark: Section 5.2.3 (preemption latency and retained state)."""

from repro.experiments import preemption_overhead


def test_preemption_overhead(once):
    result = once(preemption_overhead.run)
    print()
    print(result.to_table())
    preempted = [row for row in result.rows
                 if row["preemption_latency_ms"] is not None]
    assert preempted
    for row in result.rows:
        # Retained weights are <=10% of an 11 GB device.
        assert row["state_fraction_of_11gb_pct"] <= 10.0
    for row in preempted:
        # Worst-case preemption latency is one outstanding kernel:
        # a few tens of milliseconds.
        assert 0.5 < row["preemption_latency_ms"] < 120.0
    # Heavier models take longer to drain (bigger kernels in flight).
    by_model = {row["victim"]: row["preemption_latency_ms"]
                for row in preempted}
    if "VGG19" in by_model and "ResNet50" in by_model:
        assert by_model["VGG19"] > by_model["ResNet50"]
