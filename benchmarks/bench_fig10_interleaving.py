"""Benchmark: Figure 10 (interleaving independent models)."""

from repro.experiments import fig10_interleaving


def test_fig10_interleaving(once):
    result = once(fig10_interleaving.run, iterations=8)
    print()
    print(result.to_table())
    # Interleaving never loses, and wins clearly wherever the co-runner
    # is GPU-bound (paper: ~30% among inference jobs; smaller against a
    # training co-runner). Cells where BOTH jobs are CPU-bound compress
    # toward 0 — there is no idle GPU time to reclaim.
    for row in result.rows:
        assert row["improvement_pct"] > -2.0, row
    for panel_key in ("NASNetLarge", "training"):
        panel_rows = [row for row in result.rows
                      if panel_key in row["panel"]]
        assert max(row["improvement_pct"] for row in panel_rows) > 15.0
