"""Benchmark: Section 2.2 motivation (occupancy study + two streams)."""

from repro.experiments import motivation_streams


def test_occupancy_analysis(once):
    result = once(motivation_streams.occupancy_analysis)
    print()
    print(result.to_table())
    blocked = sum(1 for row in result.rows
                  if row["can_corun_with_twin"] == "no")
    assert blocked == 10    # paper: 10 of 13 register-bound


def test_two_stream_timing(once):
    result = once(motivation_streams.two_stream_timing)
    print()
    print(result.to_table())
    sequential = result.rows[0]["completion_ms"]
    concurrent = result.rows[1]["completion_ms"]
    assert concurrent >= 0.95 * sequential
