"""Serving front-end: admission, batching, SLO accounting, harness."""

import os

import pytest

from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SwitchFlowPolicy,
    make_context,
)
from repro.baselines import MultiThreadedTF, SessionTimeSlicing
from repro.hw import v100_server
from repro.models import get_model
from repro.serving import (
    AdmissionQueue,
    RequestBatcher,
    Request,
    SERVING_ENV,
    SLOTarget,
    ServedModelSpec,
    ServingConfig,
    make_trace,
    run_serving,
)
from repro.sim import Engine
from repro.workloads import JobSpec


# ---------------------------------------------------------------------------
# Admission queue
# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def test_validation(self):
        engine = Engine()
        with pytest.raises(ValueError):
            AdmissionQueue(engine, capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(engine, capacity=4, shed_policy="nonesuch")

    def test_drop_newest_rejects_arrival(self):
        engine = Engine()
        queue = AdmissionQueue(engine, capacity=2,
                               shed_policy="drop-newest")
        first = Request(rid=0, arrival_ms=0.0)
        second = Request(rid=1, arrival_ms=0.0)
        third = Request(rid=2, arrival_ms=0.0)
        assert queue.offer(first).admitted
        assert queue.offer(second).admitted
        outcome = queue.offer(third)
        assert not outcome.admitted and outcome.evicted is None
        assert third.shed_reason == "queue-full"
        assert [r.rid for r in queue.take(8)] == [0, 1]

    def test_drop_oldest_evicts_head(self):
        engine = Engine()
        queue = AdmissionQueue(engine, capacity=2,
                               shed_policy="drop-oldest")
        requests = [Request(rid=i, arrival_ms=0.0) for i in range(3)]
        for request in requests:
            assert queue.offer(request).admitted
        evicted = queue.offer(Request(rid=3, arrival_ms=0.0)).evicted
        # rid 0 went out when rid 2 arrived; rid 1 goes out for rid 3.
        assert requests[0].shed_reason == "evicted"
        assert evicted is requests[1]
        assert [r.rid for r in queue.take(8)] == [2, 3]

    def test_wait_event_fires_on_admit_and_close(self):
        engine = Engine()
        queue = AdmissionQueue(engine, capacity=4)
        seen = []

        def waiter():
            yield queue.wait_event()
            seen.append("admit")
            queue.take(1)
            yield queue.wait_event()
            seen.append("close")

        def driver():
            yield engine.timeout(1.0)
            queue.offer(Request(rid=0, arrival_ms=engine.now))
            yield engine.timeout(1.0)
            queue.close()

        engine.process(waiter())
        engine.process(driver())
        engine.run()
        assert seen == ["admit", "close"]


# ---------------------------------------------------------------------------
# Batcher
# ---------------------------------------------------------------------------
class TestBatcher:
    def run_batcher(self, arrivals, max_batch=4, timeout_ms=10.0,
                    capacity=64):
        """Feed timed arrivals through a batcher; return closed batches."""
        engine = Engine()
        queue = AdmissionQueue(engine, capacity=capacity)
        batcher = RequestBatcher(engine, queue, max_batch=max_batch,
                                 timeout_ms=timeout_ms)
        batches = []

        def feed():
            for rid, t in enumerate(arrivals):
                if engine.now < t:
                    yield engine.timeout(t - engine.now)
                queue.offer(Request(rid=rid, arrival_ms=engine.now))
            queue.close()

        def drain():
            while True:
                batch = yield from batcher.form()
                if batch is None:
                    return
                batches.append(batch)

        engine.process(feed())
        engine.process(drain())
        engine.run()
        return batches

    def test_full_batch_closes_without_waiting_out_the_window(self):
        batches = self.run_batcher([0.0, 0.0, 0.0, 0.0], max_batch=4)
        assert [b.reason for b in batches] == ["full"]
        assert batches[0].closed_ms == 0.0

    def test_timeout_closes_partial_batch(self):
        batches = self.run_batcher([0.0, 100.0], max_batch=4,
                                   timeout_ms=10.0)
        assert [b.reason for b in batches] == ["timeout", "drain"]
        assert batches[0].closed_ms == pytest.approx(10.0)
        assert len(batches[0]) == 1

    def test_drain_flushes_remainder_on_close(self):
        batches = self.run_batcher([0.0, 1.0], max_batch=8,
                                   timeout_ms=50.0)
        assert [b.reason for b in batches] == ["drain"]
        assert len(batches[0]) == 2

    def test_requests_stamped_with_batch_and_dispatch(self):
        batches = self.run_batcher([0.0, 0.0, 5.0], max_batch=2)
        ids = [(r.rid, r.batch_id) for b in batches for r in b.requests]
        assert ids == [(0, 0), (1, 0), (2, 1)]
        for batch in batches:
            for request in batch.requests:
                assert request.dispatched_ms == batch.closed_ms

    def test_validation(self):
        engine = Engine()
        queue = AdmissionQueue(engine, capacity=4)
        with pytest.raises(ValueError):
            RequestBatcher(engine, queue, max_batch=0, timeout_ms=1.0)
        with pytest.raises(ValueError):
            RequestBatcher(engine, queue, max_batch=1, timeout_ms=-1.0)


# ---------------------------------------------------------------------------
# SLO targets
# ---------------------------------------------------------------------------
class TestSLO:
    def test_met_by(self):
        slo = SLOTarget(p99_ms=100.0)
        assert slo.met_by(99.9) and slo.met_by(100.0)
        assert not slo.met_by(100.1)

    def test_satisfied_needs_both_sides(self):
        from repro.metrics.latency import LatencySummary

        slo = SLOTarget(p99_ms=100.0, goodput_rps=10.0)
        fast = LatencySummary.from_samples([50.0] * 10)
        assert slo.satisfied(fast, goodput_rps=12.0)
        assert not slo.satisfied(fast, goodput_rps=8.0)
        slow = LatencySummary.from_samples([150.0] * 10)
        assert not slo.satisfied(slow, goodput_rps=12.0)
        assert not slo.satisfied(None, goodput_rps=12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOTarget(p99_ms=0.0)
        with pytest.raises(ValueError):
            SLOTarget(p99_ms=10.0, goodput_rps=-1.0)


# ---------------------------------------------------------------------------
# run_serving end to end
# ---------------------------------------------------------------------------
def serve_spec(ctx, rate=40.0, horizon=1_500.0, **overrides):
    gpu = ctx.machine.gpu(0).name
    defaults = dict(max_batch=4, batch_timeout_ms=5.0,
                    queue_capacity=32, shed_policy="drop-newest",
                    slo=SLOTarget(p99_ms=300.0))
    defaults.update(overrides)
    return ServedModelSpec(
        job=JobHandle(name="serve", model=get_model("MobileNetV2"),
                      batch=defaults["max_batch"], training=False,
                      priority=PRIORITY_HIGH, preferred_device=gpu),
        trace=make_trace(ctx.rng, "serve", "poisson", rate, horizon),
        **defaults)


def background_spec(ctx):
    return JobSpec(
        job=JobHandle(name="train", model=get_model("ResNet50"),
                      batch=16, training=True, priority=PRIORITY_LOW,
                      preferred_device=ctx.machine.gpu(0).name),
        iterations=100_000, background=True)


class TestRunServing:
    def test_every_request_terminates_exactly_once(self):
        ctx = make_context(v100_server, 2, seed=0)
        result = run_serving(ctx, SwitchFlowPolicy, [serve_spec(ctx)],
                             [background_spec(ctx)])
        stream = result.served("serve")
        assert stream.arrived > 0
        assert stream.completed + stream.shed == stream.arrived
        for request in stream.requests:
            terminal = [request.completed_ms is not None,
                        request.shed_reason is not None]
            assert terminal.count(True) == 1

    def test_goodput_counts_only_slo_meeting_completions(self):
        ctx = make_context(v100_server, 2, seed=0)
        result = run_serving(ctx, SwitchFlowPolicy,
                             [serve_spec(ctx, slo=SLOTarget(p99_ms=1.0))])
        stream = result.served("serve")
        # A 1 ms budget is unmeetable (service alone takes longer).
        assert stream.completed > 0
        assert stream.slo_met == 0
        assert stream.goodput_rps == 0.0

    def test_tiny_queue_sheds_under_pressure(self):
        ctx = make_context(v100_server, 2, seed=0)
        result = run_serving(
            ctx, SessionTimeSlicing,
            [serve_spec(ctx, rate=120.0, queue_capacity=2,
                        max_batch=2)],
            [background_spec(ctx)])
        stream = result.served("serve")
        assert stream.shed > 0
        assert stream.shed_by_reason.get("queue-full", 0) > 0

    def test_fused_policy_dispatches(self):
        # Time slicing runs cpu+gpu atomically inside the slice; the
        # front-end must honor fused_sessions rather than deadlock.
        ctx = make_context(v100_server, 2, seed=1)
        result = run_serving(ctx, SessionTimeSlicing,
                             [serve_spec(ctx, rate=20.0)],
                             [background_spec(ctx)])
        assert result.served("serve").completed > 0

    def test_solo_frontend_needs_no_background(self):
        ctx = make_context(v100_server, 1, seed=0)
        result = run_serving(ctx, MultiThreadedTF,
                             [serve_spec(ctx, rate=20.0,
                                         horizon=800.0)])
        stream = result.served("serve")
        assert stream.completed == stream.arrived > 0

    def test_empty_served_rejected(self):
        ctx = make_context(v100_server, 1, seed=0)
        with pytest.raises(ValueError):
            run_serving(ctx, MultiThreadedTF, [])

    def test_env_overrides_apply(self):
        previous = os.environ.get(SERVING_ENV)
        os.environ[SERVING_ENV] = "queue=2,shed=drop-oldest,batch=2"
        try:
            ctx = make_context(v100_server, 2, seed=0)
            result = run_serving(
                ctx, SessionTimeSlicing,
                [serve_spec(ctx, rate=120.0)],
                [background_spec(ctx)])
        finally:
            if previous is None:
                os.environ.pop(SERVING_ENV, None)
            else:
                os.environ[SERVING_ENV] = previous
        stream = result.served("serve")
        # drop-oldest evictions only happen with the override applied.
        assert stream.shed_by_reason.get("evicted", 0) > 0
        assert all(len(b) <= 2 for b in stream.batches)

    def test_make_context_serving_config(self):
        config = ServingConfig(max_batch=2)
        ctx = make_context(v100_server, 1, seed=0, serving=config)
        assert ctx.serving is config
        with pytest.raises(RuntimeError):
            ctx.attach_serving(ServingConfig())

    def test_audit_decisions_emitted(self):
        ctx = make_context(v100_server, 2, seed=0)
        run_serving(ctx, SwitchFlowPolicy, [serve_spec(ctx)],
                    [background_spec(ctx)])
        kinds = {r.get("kind") for r in ctx.runlog.records
                 if r.get("event") == "sched_decision"}
        assert {"request_admit", "batch_close"} <= kinds
