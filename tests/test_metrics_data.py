"""Tests for metrics (latency, throughput, timeline) and data substrates."""

import pytest

from repro.data import SyntheticImageNet, SyntheticWMT16, mean_decode_scale
from repro.metrics import (
    JobStats,
    LatencySummary,
    SessionBreakdown,
    improvement_percent,
    percentile,
    serialization_fraction,
    session_breakdown,
)
from repro.metrics.timeline import _pairwise_overlap
from repro.sim import Engine, RngRegistry, Span, Tracer


class TestPercentile:
    def test_basic_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == 2.5

    def test_single_sample(self):
        assert percentile([7.0], 95) == 7.0

    def test_order_independent(self):
        assert percentile([3, 1, 2], 50) == percentile([1, 2, 3], 50)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencySummary:
    def test_summary_fields(self):
        summary = LatencySummary.from_samples(range(1, 101))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p95 == pytest.approx(95.05)
        assert summary.maximum == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.from_samples([])


class TestJobStats:
    def test_throughput(self):
        stats = JobStats(job="j", batch=32)
        for _ in range(4):
            stats.record_iteration(100.0)
        assert stats.throughput_items_per_s() == pytest.approx(320.0)
        assert stats.throughput_items_per_s(warmup=2) == pytest.approx(320.0)

    def test_throughput_after_window(self):
        stats = JobStats(job="j", batch=10)
        stats.iteration_spans = [(0, 100), (100, 200), (500, 600)]
        assert stats.throughput_after(400.0) == pytest.approx(100.0)

    def test_empty_throughput_is_zero(self):
        assert JobStats(job="j", batch=1).throughput_items_per_s() == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            JobStats(job="j", batch=1).record_iteration(-1.0)

    def test_improvement_percent(self):
        assert improvement_percent(100.0, 165.0) == pytest.approx(65.0)
        with pytest.raises(ValueError):
            improvement_percent(0.0, 1.0)


class TestTimelineMetrics:
    def test_session_breakdown(self):
        engine = Engine()
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "k1", 10.0, 30.0))
        tracer.record(Span("gpu", "k2", 40.0, 50.0))
        breakdown = session_breakdown(tracer, "gpu", 0.0, 100.0)
        assert breakdown.gpu_busy_ms == 30.0
        assert breakdown.gpu_idle_percent == pytest.approx(70.0)

    def test_breakdown_by_context(self):
        engine = Engine()
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "a", 0.0, 10.0, {"context": "x"}))
        tracer.record(Span("gpu", "b", 10.0, 30.0, {"context": "y"}))
        breakdown = session_breakdown(tracer, "gpu", 0.0, 100.0,
                                      context="x")
        assert breakdown.gpu_busy_ms == 10.0

    def test_serialization_fraction_fully_serial(self):
        engine = Engine()
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "a", 0.0, 10.0, {"context": "x"}))
        tracer.record(Span("gpu", "b", 10.0, 20.0, {"context": "y"}))
        assert serialization_fraction(tracer, "gpu", ("x", "y")) == 1.0

    def test_serialization_fraction_fully_overlapped(self):
        engine = Engine()
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "a", 0.0, 10.0, {"context": "x"}))
        tracer.record(Span("gpu", "b", 0.0, 10.0, {"context": "y"}))
        assert serialization_fraction(tracer, "gpu", ("x", "y")) == \
            pytest.approx(0.0)

    def test_idle_clamped_non_negative(self):
        breakdown = SessionBreakdown(session_ms=10.0, gpu_busy_ms=20.0)
        assert breakdown.gpu_idle_ms == 0.0
        assert breakdown.gpu_busy_fraction == 1.0


def brute_force_overlap(a, b):
    return sum(max(0.0, min(ha, hb) - max(la, lb))
               for la, ha in a for lb, hb in b)


class TestPairwiseOverlap:
    def test_simple_overlap(self):
        assert _pairwise_overlap([(0.0, 10.0)], [(5.0, 15.0)]) == 5.0

    def test_disjoint(self):
        assert _pairwise_overlap([(0.0, 1.0)], [(2.0, 3.0)]) == 0.0

    def test_touching_intervals_do_not_overlap(self):
        assert _pairwise_overlap([(5.0, 10.0)], [(0.0, 5.0)]) == 0.0

    def test_skips_exhausted_b_intervals(self):
        # Many b intervals end before a starts; the sorted-merge pointer
        # must skip them without dropping the one that does overlap.
        b = [(float(i), float(i) + 0.5) for i in range(100)]
        a = [(99.25, 101.0)]
        assert _pairwise_overlap(a, b) == pytest.approx(0.25)

    def test_matches_brute_force_on_dense_lists(self):
        a = [(i * 3.0, i * 3.0 + 2.0) for i in range(40)]
        b = [(i * 2.0 + 0.5, i * 2.0 + 2.25) for i in range(60)]
        assert _pairwise_overlap(a, b) == \
            pytest.approx(brute_force_overlap(a, b))

    def test_later_a_still_sees_long_b_interval(self):
        # A long-lived b interval must keep matching successive a
        # intervals even after the pointer advances past earlier bs.
        b = [(0.0, 0.5), (1.0, 100.0)]
        a = [(2.0, 3.0), (50.0, 51.0), (98.0, 99.0)]
        assert _pairwise_overlap(a, b) == pytest.approx(3.0)


class TestDatasets:
    def test_imagenet_statistics(self):
        data = SyntheticImageNet(RngRegistry(1))
        records = [data.sample(i) for i in range(2000)]
        mean_bytes = sum(r.jpeg_bytes for r in records) / len(records)
        assert 80_000 < mean_bytes < 160_000
        assert all(0 <= r.label < 1000 for r in records)
        assert all(r.jpeg_bytes >= 5_000 for r in records)

    def test_imagenet_batches_are_deterministic(self):
        first = [
            [r.jpeg_bytes for r in batch]
            for batch in SyntheticImageNet(RngRegistry(9)).batches(4, 3)]
        second = [
            [r.jpeg_bytes for r in batch]
            for batch in SyntheticImageNet(RngRegistry(9)).batches(4, 3)]
        assert first == second

    def test_wmt_lengths(self):
        data = SyntheticWMT16(RngRegistry(1))
        records = [data.sample(i) for i in range(2000)]
        mean_tokens = sum(r.source_tokens for r in records) / len(records)
        assert 20 < mean_tokens < 45
        assert all(3 <= r.source_tokens <= 100 for r in records)

    def test_decode_scale(self):
        data = SyntheticImageNet(RngRegistry(1))
        batch = [data.sample(i) for i in range(64)]
        scale = mean_decode_scale(batch)
        assert 0.3 < scale < 3.0
        with pytest.raises(ValueError):
            mean_decode_scale([])

    def test_batch_validation(self):
        data = SyntheticImageNet(RngRegistry(1))
        with pytest.raises(ValueError):
            list(data.batches(0, 1))
