"""Tests for RNG streams and the tracer."""

import pytest

from repro.sim import Engine, RngRegistry, Span, Tracer, derive_seed
from repro.sim.trace import render_ascii_timeline


class TestRng:
    def test_streams_are_independent_of_creation_order(self):
        first = RngRegistry(3)
        a1 = first.stream("a").random()
        b1 = first.stream("b").random()
        second = RngRegistry(3)
        b2 = second.stream("b").random()
        a2 = second.stream("a").random()
        assert a1 == a2 and b1 == b2

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != \
            RngRegistry(2).stream("x").random()

    def test_derive_seed_is_stable(self):
        assert derive_seed(5, "gpu") == derive_seed(5, "gpu")
        assert derive_seed(5, "gpu") != derive_seed(5, "cpu")

    def test_exponential_validates_mean(self):
        with pytest.raises(ValueError):
            RngRegistry(0).exponential("x", 0.0)

    def test_lognormal_center_positive(self):
        with pytest.raises(ValueError):
            RngRegistry(0).lognormal_around("x", -1.0, 0.1)


class TestTracer:
    def test_spans_record_open_close(self, engine):
        tracer = Tracer(engine)

        def proc(env):
            span = tracer.begin("lane", "work", tag=1)
            yield env.timeout(5.0)
            span.close()

        engine.process(proc(engine))
        engine.run()
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.duration == 5.0
        assert span.meta["tag"] == 1

    def test_double_close_raises(self, engine):
        tracer = Tracer(engine)
        span = tracer.begin("lane", "x")
        span.close()
        with pytest.raises(RuntimeError):
            span.close()

    def test_disabled_tracer_drops_spans(self, engine):
        tracer = Tracer(engine, enabled=False)
        tracer.begin("lane", "x").close()
        assert tracer.spans == []

    def test_busy_time_unions_overlaps(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "a", 0.0, 10.0))
        tracer.record(Span("gpu", "b", 5.0, 15.0))
        tracer.record(Span("gpu", "c", 20.0, 25.0))
        assert tracer.busy_time("gpu", 0.0, 30.0) == 20.0

    def test_busy_time_clips_to_window(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "a", 0.0, 100.0))
        assert tracer.busy_time("gpu", 10.0, 30.0) == 20.0

    def test_concurrency_intervals(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "a", 0.0, 10.0))
        tracer.record(Span("gpu", "b", 5.0, 15.0))
        levels = tracer.concurrency_intervals("gpu")
        assert (5.0, 10.0, 2) in levels

    def test_lanes_in_first_seen_order(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("z", "a", 0, 1))
        tracer.record(Span("a", "b", 0, 1))
        tracer.record(Span("z", "c", 1, 2))
        assert tracer.lanes() == ["z", "a"]

    def test_render_ascii_timeline(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("gpu0", "k", 0.0, 50.0, {"glyph": "#"}))
        tracer.record(Span("gpu1", "k", 50.0, 100.0, {"glyph": "@"}))
        art = render_ascii_timeline(tracer.spans, width=40)
        assert "gpu0" in art and "gpu1" in art
        assert "#" in art and "@" in art

    def test_render_empty(self, engine):
        assert "empty" in render_ascii_timeline([])


class TestTracerLeaks:
    def test_open_spans_tracked_until_closed(self, engine):
        tracer = Tracer(engine)
        span = tracer.begin("gpu", "kernel")
        assert tracer.open_spans == [span]
        span.close()
        assert tracer.open_spans == []
        tracer.assert_all_closed()

    def test_assert_all_closed_names_the_leak(self, engine):
        tracer = Tracer(engine)
        tracer.begin("gpu0", "stuck_kernel")
        with pytest.raises(RuntimeError, match="gpu0/stuck_kernel"):
            tracer.assert_all_closed()

    def test_span_context_manager_closes(self, engine):
        tracer = Tracer(engine)

        def proc(env):
            with tracer.span("gpu", "work", tag=7):
                yield env.timeout(3.0)

        engine.process(proc(engine))
        engine.run()
        assert tracer.open_spans == []
        assert len(tracer.spans) == 1
        assert tracer.spans[0].duration == 3.0
        assert tracer.spans[0].meta["tag"] == 7

    def test_span_context_manager_closes_on_error(self, engine):
        tracer = Tracer(engine)
        with pytest.raises(ValueError):
            with tracer.span("gpu", "work"):
                raise ValueError("boom")
        tracer.assert_all_closed()
        assert len(tracer.spans) == 1

    def test_explicit_close_inside_span_is_fine(self, engine):
        tracer = Tracer(engine)
        with tracer.span("gpu", "work") as open_span:
            open_span.close(end=5.0)
        assert len(tracer.spans) == 1
        assert tracer.spans[0].end == 5.0


class TestAsciiTimeline:
    def test_header_aligns_with_lane_rows(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("a-very-long-lane-name", "k", 0.0, 80.0))
        tracer.record(Span("gpu", "k", 10.0, 100.0))
        art = render_ascii_timeline(tracer.spans, width=50)
        lengths = {len(line) for line in art.splitlines()}
        assert len(lengths) == 1

    def test_header_shows_both_endpoints(self, engine):
        art = render_ascii_timeline([Span("gpu", "k", 25.0, 75.0)],
                                    width=60)
        header = art.splitlines()[0]
        assert "25.0 ms" in header and header.rstrip("|").endswith("75.0 ms")

    def test_true_overlap_renders_collision_glyph(self, engine):
        spans = [Span("gpu", "a", 0.0, 60.0, {"glyph": "#"}),
                 Span("gpu", "b", 40.0, 100.0, {"glyph": "@"})]
        art = render_ascii_timeline(spans, width=50)
        assert "*" in art

    def test_adjacent_spans_do_not_collide(self, engine):
        # Back-to-back spans share a boundary cell after rounding but do
        # not overlap in time: no collision glyph.
        spans = [Span("gpu", "a", 0.0, 50.0, {"glyph": "#"}),
                 Span("gpu", "b", 50.0, 100.0, {"glyph": "@"})]
        art = render_ascii_timeline(spans, width=33)
        assert "*" not in art
