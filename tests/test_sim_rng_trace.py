"""Tests for RNG streams and the tracer."""

import pytest

from repro.sim import Engine, RngRegistry, Span, Tracer, derive_seed
from repro.sim.trace import render_ascii_timeline


class TestRng:
    def test_streams_are_independent_of_creation_order(self):
        first = RngRegistry(3)
        a1 = first.stream("a").random()
        b1 = first.stream("b").random()
        second = RngRegistry(3)
        b2 = second.stream("b").random()
        a2 = second.stream("a").random()
        assert a1 == a2 and b1 == b2

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != \
            RngRegistry(2).stream("x").random()

    def test_derive_seed_is_stable(self):
        assert derive_seed(5, "gpu") == derive_seed(5, "gpu")
        assert derive_seed(5, "gpu") != derive_seed(5, "cpu")

    def test_exponential_validates_mean(self):
        with pytest.raises(ValueError):
            RngRegistry(0).exponential("x", 0.0)

    def test_lognormal_center_positive(self):
        with pytest.raises(ValueError):
            RngRegistry(0).lognormal_around("x", -1.0, 0.1)


class TestTracer:
    def test_spans_record_open_close(self, engine):
        tracer = Tracer(engine)

        def proc(env):
            span = tracer.begin("lane", "work", tag=1)
            yield env.timeout(5.0)
            span.close()

        engine.process(proc(engine))
        engine.run()
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.duration == 5.0
        assert span.meta["tag"] == 1

    def test_double_close_raises(self, engine):
        tracer = Tracer(engine)
        span = tracer.begin("lane", "x")
        span.close()
        with pytest.raises(RuntimeError):
            span.close()

    def test_disabled_tracer_drops_spans(self, engine):
        tracer = Tracer(engine, enabled=False)
        tracer.begin("lane", "x").close()
        assert tracer.spans == []

    def test_busy_time_unions_overlaps(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "a", 0.0, 10.0))
        tracer.record(Span("gpu", "b", 5.0, 15.0))
        tracer.record(Span("gpu", "c", 20.0, 25.0))
        assert tracer.busy_time("gpu", 0.0, 30.0) == 20.0

    def test_busy_time_clips_to_window(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "a", 0.0, 100.0))
        assert tracer.busy_time("gpu", 10.0, 30.0) == 20.0

    def test_concurrency_intervals(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("gpu", "a", 0.0, 10.0))
        tracer.record(Span("gpu", "b", 5.0, 15.0))
        levels = tracer.concurrency_intervals("gpu")
        assert (5.0, 10.0, 2) in levels

    def test_lanes_in_first_seen_order(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("z", "a", 0, 1))
        tracer.record(Span("a", "b", 0, 1))
        tracer.record(Span("z", "c", 1, 2))
        assert tracer.lanes() == ["z", "a"]

    def test_render_ascii_timeline(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("gpu0", "k", 0.0, 50.0, {"glyph": "#"}))
        tracer.record(Span("gpu1", "k", 50.0, 100.0, {"glyph": "@"}))
        art = render_ascii_timeline(tracer.spans, width=40)
        assert "gpu0" in art and "gpu1" in art
        assert "#" in art and "@" in art

    def test_render_empty(self, engine):
        assert "empty" in render_ascii_timeline([])
