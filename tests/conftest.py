"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import make_context
from repro.hw import single_gpu_server, v100_server, TESLA_V100
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def v100_ctx():
    """A fresh single-V100 run context (the most common testbed)."""
    return make_context(v100_server, 1, seed=7)


@pytest.fixture
def two_v100_ctx():
    return make_context(v100_server, 2, seed=7)


def run_process(eng: Engine, generator, until=None):
    """Drive a single process to completion and return its value."""
    process = eng.process(generator)
    return eng.run(until=until if until is not None else process)
