"""Tests for the metrics registry (repro.obs.metrics) and the run log."""

import json
import statistics

import numpy as np
import pytest

from repro.obs import MetricsRegistry, RunLog, merge_quantiles


class FakeClock:
    """A settable sim clock for registry tests."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def reg(clock):
    return MetricsRegistry(clock=clock)


class TestCounter:
    def test_inc_accumulates(self, reg):
        counter = reg.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1.0)

    def test_rate_per_ms(self, reg, clock):
        counter = reg.counter("c")
        counter.inc(10.0)
        clock.t = 4.0
        assert counter.rate_per_ms() == pytest.approx(2.5)

    def test_rate_at_time_zero(self, reg):
        assert reg.counter("c").rate_per_ms() == 0.0


class TestGauge:
    def test_set_and_high_water(self, reg):
        gauge = reg.gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.max_value == 5.0

    def test_inc_dec(self, reg):
        gauge = reg.gauge("g")
        gauge.inc(3.0)
        gauge.dec()
        assert gauge.value == 2.0

    def test_time_weighted_mean(self, reg, clock):
        gauge = reg.gauge("g")
        gauge.set(4.0)          # level 4 over [0, 6)
        clock.t = 6.0
        gauge.set(1.0)          # level 1 over [6, 10)
        clock.t = 10.0
        # (4*6 + 1*4) / 10 = 2.8
        assert gauge.time_weighted_mean() == pytest.approx(2.8)

    def test_mean_at_time_zero_is_current(self, reg):
        gauge = reg.gauge("g")
        gauge.set(7.0)
        assert gauge.time_weighted_mean() == 7.0


class TestHistogram:
    def test_count_sum_mean(self, reg):
        histogram = reg.histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(6.0)
        assert histogram.mean() == pytest.approx(2.0)

    def test_quantiles_match_numpy_reference(self, reg):
        samples = [12.0, 3.5, 27.0, 0.25, 8.0, 8.0, 19.5, 4.0, 150.0]
        histogram = reg.histogram("h")
        for value in samples:
            histogram.observe(value)
        for pct in (0, 25, 50, 75, 90, 95, 99, 100):
            assert histogram.quantile(pct) == pytest.approx(
                np.percentile(samples, pct, method="linear"))

    def test_median_matches_statistics_reference(self, reg):
        samples = [5.0, 1.0, 9.0, 2.0, 7.0, 3.0]
        histogram = reg.histogram("h")
        for value in samples:
            histogram.observe(value)
        assert histogram.quantile(50) == pytest.approx(
            statistics.median(samples))

    def test_empty_summary_is_zeroes(self, reg):
        summary = reg.histogram("h").summary()
        assert summary["count"] == 0
        assert summary["p95"] == 0.0

    def test_summary_fields(self, reg):
        histogram = reg.histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(
            np.percentile(range(1, 101), 50))
        assert summary["p95"] == pytest.approx(
            np.percentile(range(1, 101), 95))

    def test_sorted_cache_invalidated_by_observe(self, reg):
        histogram = reg.histogram("h")
        for value in (5.0, 1.0, 3.0):
            histogram.observe(value)
        assert histogram.quantile(100) == 5.0
        cached = histogram._sorted
        assert cached == [1.0, 3.0, 5.0]
        # A second query reuses the cached view, no re-sort.
        assert histogram.quantile(0) == 1.0
        assert histogram._sorted is cached
        histogram.observe(2.0)
        assert histogram._sorted is None
        assert histogram.quantile(50) == pytest.approx(2.5)

    def test_summary_uses_one_sorted_pass(self, reg):
        histogram = reg.histogram("h")
        for value in (9.0, 1.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["max"] == 9.0
        assert summary["p50"] == 4.0
        assert histogram._sorted == [1.0, 4.0, 9.0]

    def test_merge_quantiles(self, reg):
        first = reg.histogram("h", shard="a")
        second = reg.histogram("h", shard="b")
        first.observe(1.0)
        first.observe(2.0)
        second.observe(3.0)
        second.observe(4.0)
        assert merge_quantiles([first, second], 50) == pytest.approx(2.5)
        assert merge_quantiles([], 50) == 0.0


class TestLabels:
    def test_labels_partition_series(self, reg):
        reg.counter("c", device="gpu0").inc(1.0)
        reg.counter("c", device="gpu1").inc(2.0)
        assert reg.value("c", device="gpu0") == 1.0
        assert reg.value("c", device="gpu1") == 2.0
        assert reg.value("c") == 3.0

    def test_label_order_is_irrelevant(self, reg):
        reg.counter("c", a="1", b="2").inc()
        reg.counter("c", b="2", a="1").inc()
        assert reg.value("c", a="1", b="2") == 2.0
        assert len(reg.get("c").series()) == 1

    def test_label_values_stringified(self, reg):
        reg.counter("c", device=0).inc()
        assert reg.value("c", device="0") == 1.0

    def test_kind_mismatch_raises(self, reg):
        reg.counter("c").inc()
        with pytest.raises(TypeError):
            reg.gauge("c")
        with pytest.raises(TypeError):
            reg.histogram("c")

    def test_all_samples_rejects_non_histogram(self, reg):
        reg.counter("c").inc()
        with pytest.raises(TypeError):
            reg.get("c").all_samples()

    def test_histogram_family_aggregates(self, reg):
        reg.histogram("h", job="a").observe(1.0)
        reg.histogram("h", job="b").observe(3.0)
        family = reg.get("h")
        assert family.total() == 2.0
        assert sorted(family.all_samples()) == [1.0, 3.0]
        assert family.quantile(50) == pytest.approx(2.0)


class TestRegistry:
    def test_value_default_for_missing(self, reg):
        assert reg.value("nope") == 0.0
        assert reg.value("nope", default=-1.0) == -1.0
        reg.counter("c", x="1").inc()
        assert reg.value("c", default=-1.0, x="2") == -1.0

    def test_value_of_histogram_is_count(self, reg):
        reg.histogram("h", job="a").observe(5.0)
        reg.histogram("h", job="a").observe(6.0)
        assert reg.value("h", job="a") == 2.0

    def test_quantile_query(self, reg):
        reg.histogram("h", job="a").observe(1.0)
        reg.histogram("h", job="b").observe(3.0)
        assert reg.quantile("h", 50) == pytest.approx(2.0)
        assert reg.quantile("h", 50, job="b") == 3.0
        assert reg.quantile("h", 50, job="zz") == 0.0
        assert reg.quantile("missing", 50) == 0.0

    def test_collectors_run_on_read(self, reg):
        pulls = []

        def collector(registry):
            pulls.append(1)
            registry.gauge("level").set(float(len(pulls)))

        reg.register_collector(collector)
        assert reg.value("level") == 1.0
        assert reg.value("level") == 2.0
        assert len(pulls) == 2

    def test_snapshot_is_json_serializable(self, reg, clock):
        reg.counter("c", device="gpu0").inc(2.0)
        reg.gauge("g").set(5.0)
        reg.histogram("h", job="a").observe(1.5)
        clock.t = 10.0
        snapshot = json.loads(json.dumps(reg.snapshot()))
        assert snapshot["c"]["type"] == "counter"
        assert snapshot["c"]["series"][0]["labels"] == {"device": "gpu0"}
        assert snapshot["c"]["series"][0]["value"] == 2.0
        assert snapshot["g"]["series"][0]["max"] == 5.0
        assert snapshot["h"]["series"][0]["count"] == 1

    def test_render_filters_by_prefix(self, reg):
        reg.counter("sched.preemptions").inc()
        reg.counter("pool.tasks_total", pool="global").inc()
        text = reg.render(prefix="sched.")
        assert "sched.preemptions" in text
        assert "pool.tasks_total" not in text
        full = reg.render()
        assert "pool.tasks_total{pool=global}" in full


class TestRunLog:
    def test_emit_stamps_sim_time(self):
        clock = FakeClock(3.25)
        log = RunLog(clock=clock)
        record = log.emit("preempt", victim="vgg16")
        assert record == {"t_ms": 3.25, "event": "preempt",
                          "victim": "vgg16"}

    def test_non_json_values_are_reprd(self):
        log = RunLog()
        record = log.emit("x", payload={"a": 1})
        assert record["payload"] == repr({"a": 1})

    def test_filter_by_event_and_fields(self):
        log = RunLog()
        log.emit("preempt", victim="a")
        log.emit("preempt", victim="b")
        log.emit("finish", victim="a")
        assert len(log.filter("preempt")) == 2
        assert len(log.filter("preempt", victim="a")) == 1
        assert log.count("finish") == 1
        assert len(log.filter(victim="a")) == 2

    def test_jsonl_round_trips(self, tmp_path):
        log = RunLog(clock=FakeClock(1.0))
        log.emit("a", n=1)
        log.emit("b", n=2)
        path = tmp_path / "run.jsonl"
        log.write(path)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_disabled_log_records_nothing(self):
        log = RunLog(enabled=False)
        assert log.emit("x") is None
        assert len(log) == 0

    def test_empty_jsonl_is_empty_string(self):
        assert RunLog().to_jsonl() == ""

    def test_write_append_mode(self, tmp_path):
        path = tmp_path / "run.jsonl"
        first = RunLog(clock=FakeClock(1.0))
        first.emit("a")
        first.write(path)
        second = RunLog(clock=FakeClock(2.0))
        second.emit("b")
        second.write(path, append=True)
        events = [json.loads(line)["event"]
                  for line in path.read_text().splitlines()]
        assert events == ["a", "b"]

    def test_write_default_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog()
        log.emit("a")
        log.write(path)
        log.write(path)
        assert len(path.read_text().splitlines()) == 1

    def test_sink_flushes_on_clean_exit(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(clock=FakeClock(1.0))
        with log.sink(path):
            log.emit("a", n=1)
            log.emit("b", n=2)
        events = [json.loads(line)["event"]
                  for line in path.read_text().splitlines()]
        assert events == ["a", "b"]

    def test_sink_flushes_on_exception(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(clock=FakeClock(1.0))
        with pytest.raises(RuntimeError):
            with log.sink(path):
                log.emit("before_crash")
                raise RuntimeError("simulated abort")
        lines = path.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] \
            == ["before_crash"]

    def test_sink_truncates_stale_artifact(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "stale"}\n')
        log = RunLog()
        with log.sink(path):
            log.emit("fresh")
        events = [json.loads(line)["event"]
                  for line in path.read_text().splitlines()]
        assert events == ["fresh"]
