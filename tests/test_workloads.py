"""Tests for drivers, the colocation harness, and multitask lockstep."""

import pytest

from repro.baselines import MultiThreadedTF, SessionTimeSlicing
from repro.core import JobHandle, PRIORITY_HIGH, PRIORITY_LOW, make_context
from repro.hw import v100_server
from repro.models import get_model
from repro.workloads import (
    JobSpec,
    run_colocation,
    run_multitask,
)


def _job(ctx, name, **kwargs):
    defaults = dict(model=get_model("MobileNetV2"), batch=8, training=True,
                    preferred_device=ctx.machine.gpu(0).name)
    defaults.update(kwargs)
    return JobHandle(name=name, **defaults)


class TestJobDriver:
    def test_records_one_sample_per_iteration(self):
        ctx = make_context(v100_server, 1, seed=5)
        job = _job(ctx, "job")
        run_colocation(ctx, MultiThreadedTF,
                       [JobSpec(job=job, iterations=7)])
        assert job.stats.iterations == 7
        assert len(job.stats.iteration_spans) == 7
        assert all(t > 0 for t in job.stats.iteration_times_ms)

    def test_start_delay_is_honoured(self):
        ctx = make_context(v100_server, 1, seed=5)
        job = _job(ctx, "job")
        run_colocation(ctx, MultiThreadedTF,
                       [JobSpec(job=job, iterations=2,
                                start_delay_ms=123.0)])
        assert job.stats.started_at == pytest.approx(123.0)

    def test_open_loop_latency_includes_queueing(self):
        ctx = make_context(v100_server, 1, seed=5)
        # Requests arrive every 10 ms but take much longer: a backlog
        # builds and latency must grow monotonically-ish.
        job = _job(ctx, "serve", training=False, batch=64)
        run_colocation(ctx, MultiThreadedTF, [
            JobSpec(job=job, iterations=6, request_interval_ms=10.0)])
        samples = job.stats.iteration_times_ms
        assert samples[-1] > samples[0]

    def test_background_job_stops_after_foreground(self):
        ctx = make_context(v100_server, 1, seed=5)
        background = _job(ctx, "bg")
        foreground = _job(ctx, "fg")
        results = run_colocation(ctx, MultiThreadedTF, [
            JobSpec(job=background, iterations=100_000, background=True),
            JobSpec(job=foreground, iterations=3),
        ])
        assert results.stats["fg"].iterations == 3
        assert results.stats["bg"].iterations < 100_000

    def test_horizon_guard_raises(self):
        ctx = make_context(v100_server, 1, seed=5)
        job = _job(ctx, "job")
        with pytest.raises(RuntimeError):
            run_colocation(ctx, MultiThreadedTF,
                           [JobSpec(job=job, iterations=100_000)],
                           horizon_ms=50.0)

    def test_empty_spec_list_rejected(self):
        ctx = make_context(v100_server, 1, seed=5)
        with pytest.raises(ValueError):
            run_colocation(ctx, MultiThreadedTF, [])

    def test_zero_iterations_rejected(self):
        ctx = make_context(v100_server, 1, seed=5)
        from repro.workloads import JobDriver
        policy = MultiThreadedTF(ctx)
        with pytest.raises(ValueError):
            JobDriver(policy, _job(ctx, "job"), iterations=0)


class TestMultitask:
    def test_lockstep_runs_every_model_every_round(self):
        ctx = make_context(v100_server, 1, seed=5)
        models = [get_model("MobileNetV2"), get_model("MobileNet")]
        result = run_multitask(ctx, models, batch=8, training=False,
                               iterations=5)
        assert result.rounds() == 5
        assert len(result.stats) == 2
        for stats in result.stats.values():
            assert stats.iterations == 5

    def test_secondary_models_skip_preprocessing_and_copy(self):
        ctx = make_context(v100_server, 1, seed=5)
        models = [get_model("MobileNetV2"), get_model("MobileNetV2")]
        run_multitask(ctx, models, batch=8, training=False, iterations=4)
        link = ctx.machine.link(ctx.machine.cpu.name,
                                ctx.machine.gpu(0).name)
        # One HtoD input copy per round (master only), not two.
        htod = [s for s in ctx.tracer.spans
                if s.lane == link.lane and "HtoD" in s.name]
        assert len(htod) == 4

    def test_reuse_beats_time_slicing_for_inference(self):
        baseline_ctx = make_context(v100_server, 1, seed=5)
        jobs = [
            JobHandle(name=f"ts{i}", model=get_model("MobileNetV2"),
                      batch=64, training=False,
                      preferred_device=baseline_ctx.machine.gpu(0).name)
            for i in range(2)
        ]
        run_colocation(baseline_ctx, SessionTimeSlicing, [
            JobSpec(job=job, iterations=6) for job in jobs])
        baseline = sum(j.stats.throughput_items_per_s(warmup=1)
                       for j in jobs) / 2

        reuse_ctx = make_context(v100_server, 1, seed=5)
        result = run_multitask(
            reuse_ctx, [get_model("MobileNetV2")] * 2, batch=64,
            training=False, iterations=6)
        assert result.items_per_second(64, warmup=1) > baseline

    def test_validation(self):
        ctx = make_context(v100_server, 1, seed=5)
        with pytest.raises(ValueError):
            run_multitask(ctx, [], batch=8, training=False, iterations=3)
        with pytest.raises(ValueError):
            run_multitask(ctx, [get_model("MobileNet")], batch=8,
                          training=False, iterations=0)
