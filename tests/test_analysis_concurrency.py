"""Tests for the dynamic concurrency analyzer and its lint rules."""

import pytest

from repro.analysis.concurrency import (
    CONCURRENCY_ENV,
    CONCURRENCY_REPORT_ENV,
    ConcurrencyTracker,
    WaitForGraph,
    concurrency_enabled,
    deadlock_from_runlog,
    finalize_concurrency,
    lint_concurrency_source,
    maybe_attach_concurrency_from_env,
)
from repro.analysis.findings import Severity
from repro.core import JobHandle, SwitchFlowPolicy, make_context
from repro.hw import v100_server
from repro.models import get_model
from repro.runtime.rendezvous import Rendezvous
from repro.sim import Engine, instrument
from repro.sim.errors import Interrupted
from repro.sim.resources import Lock
from repro.workloads import JobSpec, run_colocation


@pytest.fixture(autouse=True)
def _unhook_tracker():
    """Never leak a tracker into other tests (process-wide hook)."""
    yield
    instrument.clear_tracker()


def tracked_engine(mode="hb"):
    engine = Engine()
    tracker = ConcurrencyTracker(engine, mode=mode).install()
    return engine, tracker


def findings(tracker, check):
    return [f for f in tracker.report() if f.check == check]


# ---------------------------------------------------------------------------
# Happens-before race detection
# ---------------------------------------------------------------------------
class TestRaceDetection:
    def test_unordered_writes_race(self):
        engine, tracker = tracked_engine()

        def writer(site):
            yield engine.timeout(1)
            tracker.access("shared.counter", "write", where=site)

        engine.process(writer("a"), name="wa")
        engine.process(writer("b"), name="wb")
        engine.run()
        races = findings(tracker, "concurrency.race")
        assert len(races) == 1
        assert races[0].severity is Severity.ERROR
        assert "shared.counter" in races[0].message

    def test_race_deduplicated_per_actor_pair(self):
        engine, tracker = tracked_engine()

        def writer():
            for _ in range(5):
                yield engine.timeout(1)
                tracker.access("k", "write")

        engine.process(writer())
        engine.process(writer())
        engine.run()
        assert len(findings(tracker, "concurrency.race")) == 1

    def test_lock_ordered_accesses_are_clean(self):
        engine, tracker = tracked_engine()
        lock = Lock(engine)

        def writer(delay):
            yield engine.timeout(delay)
            yield lock.acquire()
            tracker.access("guarded.counter", "write")
            lock.release()

        engine.process(writer(1))
        engine.process(writer(2))
        engine.run()
        report = tracker.report()
        assert not report.has_errors
        assert not report.warnings  # lockset sees the held mutex too

    def test_implicit_guard_orders_and_covers(self):
        # The guard= discipline used by the runtime's instrumented
        # sites: consistent guards mean no race and no lockset gap.
        engine, tracker = tracked_engine()

        def writer():
            yield engine.timeout(1)
            tracker.access("mem:gpu0", "write", guard="lock:mem:gpu0")

        engine.process(writer())
        engine.process(writer())
        engine.run()
        report = tracker.report()
        assert not report.has_errors
        assert not report.warnings

    def test_fork_edge_orders_creator_before_child(self):
        engine, tracker = tracked_engine()

        def parent():
            tracker.access("cfg", "write")
            yield engine.timeout(1)
            engine.process(child())

        def child():
            tracker.access("cfg", "write")
            yield engine.timeout(1)

        engine.process(parent())
        engine.run()
        assert not findings(tracker, "concurrency.race")

    def test_rendezvous_send_orders_producer_before_consumer(self):
        engine, tracker = tracked_engine()
        rdv = Rendezvous(engine)

        def producer():
            tracker.access("tensor.meta", "write")
            yield engine.timeout(1)
            yield rdv.send("it0", "input", object())

        def consumer():
            yield rdv.recv("it0", "input")
            tracker.access("tensor.meta", "write")

        engine.process(producer())
        engine.process(consumer())
        engine.run()
        assert not findings(tracker, "concurrency.race")


# ---------------------------------------------------------------------------
# Lockset (Eraser) pass
# ---------------------------------------------------------------------------
class TestLockset:
    def test_lockset_mode_warns_without_vector_clocks(self):
        engine, tracker = tracked_engine(mode="lockset")

        def writer(delay):
            yield engine.timeout(delay)
            tracker.access("unguarded", "write")

        engine.process(writer(1))
        engine.process(writer(2))
        engine.run()
        report = tracker.report()
        # This interleaving is HB-ordered in wall time, but the
        # discipline violation is still caught — and no race is
        # reported because lockset mode keeps no clocks.
        assert not findings(tracker, "concurrency.race")
        locksets = [f for f in report if f.check == "concurrency.lockset"]
        assert len(locksets) == 1
        assert locksets[0].severity is Severity.WARNING

    def test_single_actor_never_reported(self):
        engine, tracker = tracked_engine(mode="lockset")

        def writer():
            for _ in range(3):
                yield engine.timeout(1)
                tracker.access("private", "write")

        engine.process(writer())
        engine.run()
        assert not tracker.report().warnings


# ---------------------------------------------------------------------------
# Deadlock detection
# ---------------------------------------------------------------------------
class TestDeadlock:
    def test_two_lock_cycle_detected_live(self):
        engine, tracker = tracked_engine()
        a, b = Lock(engine), Lock(engine)

        def grab(first, second):
            yield first.acquire()
            yield engine.timeout(1)
            yield second.acquire()

        engine.process(grab(a, b), name="p1")
        engine.process(grab(b, a), name="p2")
        engine.run()
        cycles = findings(tracker, "concurrency.deadlock")
        assert any("wait-for cycle" in f.message for f in cycles)

    def test_lost_rendezvous_token_reported(self):
        # The PR 4 executor bug, reduced: an aborted path consumed the
        # token, so the real consumer blocks forever. Not a cycle —
        # caught by end-of-run quiescence instead.
        engine, tracker = tracked_engine()
        rdv = Rendezvous(engine)

        def producer():
            yield rdv.send("it0", "input", object())

        def rogue():
            yield rdv.recv("it0", "input")  # consumes, never re-sends

        def consumer():
            yield engine.timeout(1)
            yield rdv.recv("it0", "input")  # blocks forever

        engine.process(producer())
        engine.process(rogue())
        engine.process(consumer(), name="gpu-stage")
        engine.run()
        stuck = findings(tracker, "concurrency.deadlock")
        assert len(stuck) == 1
        assert "still blocked" in stuck[0].message
        assert "chan:it0/input" in stuck[0].message

    def test_granted_wait_leaves_no_finding(self):
        engine, tracker = tracked_engine()
        rdv = Rendezvous(engine)

        def producer():
            yield engine.timeout(1)
            yield rdv.send("it0", "input", object())

        def consumer():
            yield rdv.recv("it0", "input")

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert not tracker.report().has_errors

    def test_interrupted_waiter_is_not_a_deadlock(self):
        engine, tracker = tracked_engine()
        rdv = Rendezvous(engine)

        def consumer():
            try:
                yield rdv.recv("it0", "never")
            except Interrupted:
                pass

        proc = engine.process(consumer())

        def killer():
            yield engine.timeout(1)
            proc.interrupt("shutdown")

        engine.process(killer())
        engine.run()
        assert not tracker.report().has_errors

    def test_waiting_rows_snapshot(self):
        engine, tracker = tracked_engine()
        rdv = Rendezvous(engine)

        def consumer():
            yield rdv.recv("it0", "never")

        engine.process(consumer(), name="stuck")
        engine.run()
        rows = tracker.waiting_rows()
        assert rows == [{"actor": "stuck#1",
                         "resource": "chan:it0/never"}]


class TestWaitForGraph:
    def test_cycle_found_and_broken(self):
        graph = WaitForGraph()
        graph.grant("A", "r1", exclusive=True)
        graph.grant("B", "r2", exclusive=True)
        assert graph.block("A", "r2") is None
        cycle = graph.block("B", "r1")
        assert cycle is not None
        assert {edge[0] for edge in cycle} == {"A", "B"}
        graph.release("A", "r1")
        graph.unblock("B")
        assert graph.find_cycle("A") is None

    def test_replay_from_runlog_records(self):
        records = [
            {"event": "cc_grant", "actor": "A", "resource": "gate:gpu0"},
            {"event": "cc_grant", "actor": "B", "resource": "gate:gpu1"},
            {"event": "cc_block", "actor": "A", "resource": "gate:gpu1"},
            {"event": "cc_block", "actor": "B", "resource": "gate:gpu0",
             "t_ms": 4.0},
            {"event": "other", "actor": "C"},
        ]
        report = deadlock_from_runlog(records)
        cycles = [f for f in report.errors
                  if "wait-for cycle" in f.message]
        assert len(cycles) == 1
        assert "replayed 4 cc_* record(s)" in report.render()

    def test_replay_flags_never_granted_wait(self):
        records = [
            {"event": "cc_block", "actor": "W",
             "resource": "chan:it3/input"},
        ]
        report = deadlock_from_runlog(records)
        assert report.has_errors
        assert "no grant before the log ends" in report.errors[0].message

    def test_replay_of_clean_log_is_clean(self):
        records = [
            {"event": "cc_block", "actor": "A", "resource": "gate:gpu0"},
            {"event": "cc_grant", "actor": "A", "resource": "gate:gpu0"},
            {"event": "cc_release", "actor": "A", "resource": "gate:gpu0"},
        ]
        assert not deadlock_from_runlog(records).has_errors


# ---------------------------------------------------------------------------
# End-to-end: instrumented runtime under a real colocation run
# ---------------------------------------------------------------------------
class TestEndToEnd:
    def test_clean_colocation_run_has_no_findings(self):
        ctx = make_context(v100_server, 2, seed=0, concurrency="hb")
        trainer = JobHandle(
            name="train", model=get_model("ResNet50"), batch=16,
            training=True, preferred_device=ctx.machine.gpu(0).name)
        inference = JobHandle(
            name="infer", model=get_model("MobileNetV2"), batch=8,
            training=False, priority=0,
            preferred_device=ctx.machine.gpu(0).name)
        run_colocation(ctx, SwitchFlowPolicy, [
            JobSpec(job=trainer, iterations=2),
            JobSpec(job=inference, iterations=2)])
        report = ctx.concurrency.report(label="colocation")
        assert not report.at_least(Severity.WARNING), report.render()
        assert ctx.concurrency.accesses > 0
        assert ctx.concurrency.sync_ops > 0

    def test_live_runlog_replays_clean(self):
        ctx = make_context(v100_server, 2, seed=0, concurrency="hb")
        job = JobHandle(name="solo", model=get_model("MobileNetV2"),
                        batch=8, training=False,
                        preferred_device=ctx.machine.gpu(0).name)
        run_colocation(ctx, SwitchFlowPolicy,
                       [JobSpec(job=job, iterations=2)])
        report = deadlock_from_runlog(
            record for record in ctx.runlog.records)
        assert not report.has_errors

    def test_stale_tracker_ignores_other_engines(self, monkeypatch):
        monkeypatch.delenv(CONCURRENCY_ENV, raising=False)
        _engine, tracker = tracked_engine()
        # A fresh context's run fires every sync hook with objects from
        # its own engine; the stale tracker must drop all of them.
        ctx = make_context(v100_server, 1, seed=1)
        job = JobHandle(name="solo", model=get_model("MobileNetV2"),
                        batch=8, training=False,
                        preferred_device=ctx.machine.gpu(0).name)
        run_colocation(ctx, SwitchFlowPolicy,
                       [JobSpec(job=job, iterations=1)])
        assert tracker.sync_ops == 0
        assert not tracker.report().at_least(Severity.WARNING)


# ---------------------------------------------------------------------------
# Harness integration: env attach, finalize, report file
# ---------------------------------------------------------------------------
class TestHarnessIntegration:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CONCURRENCY_ENV, raising=False)
        assert not concurrency_enabled()
        ctx = make_context(v100_server, 1, seed=1)
        assert maybe_attach_concurrency_from_env(ctx) is None
        assert ctx.concurrency is None

    def test_env_attaches_and_selects_mode(self, monkeypatch):
        monkeypatch.setenv(CONCURRENCY_ENV, "lockset")
        ctx = make_context(v100_server, 1, seed=1)
        tracker = maybe_attach_concurrency_from_env(ctx)
        assert tracker is ctx.concurrency
        assert tracker.mode == "lockset"
        # An explicit attach wins; env attach is then a no-op.
        assert maybe_attach_concurrency_from_env(ctx) is None

    def test_finalize_is_idempotent_and_exports_metrics(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        ctx = make_context(v100_server, 1, seed=1, concurrency="hb")
        report = finalize_concurrency(ctx, label="t")
        assert report is not None
        assert report.title == "concurrency: t"
        assert ctx.metrics.value("analysis.runs_total") >= 1
        assert finalize_concurrency(ctx) is None  # second call: no-op
        assert instrument.TRACKER is None

    def test_finalize_appends_report_file(self, monkeypatch, tmp_path):
        out = tmp_path / "concurrency.txt"
        monkeypatch.setenv(CONCURRENCY_REPORT_ENV, str(out))
        ctx = make_context(v100_server, 1, seed=1, concurrency="hb")
        finalize_concurrency(ctx, label="filecheck")
        assert "concurrency: filecheck" in out.read_text(encoding="utf-8")

    def test_double_attach_rejected(self):
        ctx = make_context(v100_server, 1, seed=1, concurrency="hb")
        with pytest.raises(RuntimeError):
            ctx.attach_concurrency()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ConcurrencyTracker(Engine(), mode="tsan")


# ---------------------------------------------------------------------------
# AST lint rules
# ---------------------------------------------------------------------------
class TestConcurrencyLint:
    def lint(self, source, path="src/repro/runtime/x.py"):
        return lint_concurrency_source(source, path)

    def test_token_drop_flagged(self):
        source = (
            "def stage(rdv):\n"
            "    yield rdv.recv('it0', 'input')\n")
        found = self.lint(source)
        assert [f.check for f in found] == ["concurrency.token-drop"]
        assert found[0].severity is Severity.ERROR

    def test_bound_token_is_clean(self):
        source = (
            "def stage(rdv):\n"
            "    token = yield rdv.recv('it0', 'input')\n"
            "    return token\n")
        assert self.lint(source) == []

    def test_acquire_without_finally_release_flagged(self):
        source = (
            "def stage(sem):\n"
            "    yield sem.acquire()\n"
            "    work()\n"
            "    sem.release()\n")
        found = self.lint(source)
        assert [f.check for f in found] == \
            ["concurrency.acquire-no-release"]

    def test_finally_release_is_clean(self):
        source = (
            "def stage(sem):\n"
            "    yield sem.acquire()\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        sem.release()\n")
        assert self.lint(source) == []

    def test_cross_function_release_not_flagged(self):
        # acquire here, release elsewhere: the pairing is invisible, so
        # the rule stays quiet rather than guessing.
        source = (
            "def stage(gate, job):\n"
            "    yield gate.request(job)\n")
        assert self.lint(source) == []

    def test_hold_wait_flagged(self):
        source = (
            "def stage(gate, job, store):\n"
            "    yield gate.request(job)\n"
            "    yield store.get()\n"
            "    gate.release(job)\n")
        found = self.lint(source)
        checks = [f.check for f in found]
        assert "concurrency.hold-wait" in checks

    def test_hold_wait_with_timeout_race_is_clean(self):
        source = (
            "def stage(gate, job, store, engine):\n"
            "    yield gate.request(job)\n"
            "    yield engine.any_of([store.get(), engine.timeout(5)])\n"
            "    gate.release(job)\n")
        found = self.lint(source)
        assert "concurrency.hold-wait" not in [f.check for f in found]

    def test_wait_after_release_is_clean(self):
        source = (
            "def stage(gate, job, store):\n"
            "    yield gate.request(job)\n"
            "    gate.release(job)\n"
            "    yield store.get()\n")
        found = self.lint(source)
        assert "concurrency.hold-wait" not in [f.check for f in found]

    def test_pragma_suppresses(self):
        source = (
            "def stage(rdv):\n"
            "    yield rdv.recv('it0', 'x')  # noqa: repro-analysis\n")
        assert self.lint(source) == []

    def test_syntax_error_reported_not_raised(self):
        found = self.lint("def broken(:\n")
        assert [f.check for f in found] == ["syntax"]

    def test_runtime_tree_is_lint_clean(self):
        from repro.analysis.concurrency import lint_concurrency_paths

        report = lint_concurrency_paths(["src/repro"])
        assert not report.at_least(Severity.WARNING), report.render()
