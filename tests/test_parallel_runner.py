"""Parallel experiment harness: fan-out must not change a single byte.

The contract of ``--jobs N`` is that workers render complete output
blocks and the parent prints them in request order, so parallel stdout
is byte-identical to sequential stdout. These tests exercise both the
generic ``fanout_map`` primitive and the CLI end-to-end on a small,
fast experiment subset.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import runner
from repro.experiments.common import (
    WorkerCrashError,
    _RemoteTraceback,
    fanout_map,
    resolve_jobs,
)
from repro.obs.procpool import ProcPoolStats


def _square(value):
    return value * value


def _raise_for_three(value):
    if value == 3:
        raise ValueError(f"worker rejected {value}")
    return value


def _exit_for_three(value):
    if value == 3:
        os._exit(3)  # die without raising: simulates a killed worker
    return value


def test_fanout_map_serial_matches_parallel():
    items = list(range(20))
    expected = [_square(item) for item in items]
    assert fanout_map(_square, items, jobs=1) == expected
    assert fanout_map(_square, items, jobs=3) == expected


def test_fanout_map_preserves_order():
    items = [5, 1, 4, 2, 3]
    assert fanout_map(_square, items, jobs=2) == [25, 1, 16, 4, 9]


def test_fanout_map_empty():
    assert fanout_map(_square, [], jobs=4) == []


def test_worker_exception_propagates_with_remote_traceback():
    # A worker's exception must surface in the parent as itself — not
    # be swallowed into a bare pool error — with the child's formatted
    # traceback attached as its __cause__.
    with pytest.raises(ValueError, match="worker rejected 3") as info:
        fanout_map(_raise_for_three, list(range(6)), jobs=2)
    cause = info.value.__cause__
    assert isinstance(cause, _RemoteTraceback)
    assert "worker traceback" in str(cause)
    assert "_raise_for_three" in str(cause)  # the real failing frame


def test_worker_exception_propagates_serially_too():
    with pytest.raises(ValueError, match="worker rejected 3"):
        fanout_map(_raise_for_three, list(range(6)), jobs=1)


def test_dead_worker_surfaces_as_worker_crash_error():
    # A child that dies without raising (os._exit, segfault, OOM kill)
    # must become a WorkerCrashError, not a hang or a silent result.
    with pytest.raises(WorkerCrashError, match="died mid-experiment"):
        fanout_map(_exit_for_three, list(range(6)), jobs=2)


def test_resolve_jobs_env_fallback(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(0) == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(2) == 2


def _run_cli(capsys, argv):
    status = runner.main(argv)
    captured = capsys.readouterr()
    return status, captured.out


@pytest.mark.parametrize("experiments", [
    ["table1", "motivation"],
    ["fig3"],                      # internal per-config fan-out path
])
def test_parallel_output_byte_identical(capsys, experiments):
    status_seq, out_seq = _run_cli(capsys, experiments + ["--quick"])
    status_par, out_par = _run_cli(
        capsys, experiments + ["--quick", "--jobs", "2"])
    assert status_seq == status_par == 0
    assert out_par == out_seq
    assert out_seq  # a real rendering, not two empty strings


def test_stats_go_to_stderr_not_stdout(capsys):
    status, out = _run_cli(capsys, ["table1", "--quick", "--jobs", "2",
                                    "--stats"])
    assert status == 0
    assert "procpool" not in out  # stats must never pollute stdout


def test_procpool_stats_accounting():
    stats = ProcPoolStats(jobs=4)
    stats.record("a", 2.0)
    stats.record("b", 6.0)
    assert stats.busy_s == 8.0
    # 8s of work over 4 workers in 4s of wall time: 50% utilization.
    assert stats.utilization(4.0) == pytest.approx(0.5)
    rendered = stats.render(4.0)
    assert "a" in rendered and "b" in rendered
