"""Tests for generator-based processes: waiting, interrupts, failures."""

import pytest

from repro.sim import Engine, Interrupted, SimulationError


def test_process_waits_on_events(engine):
    log = []

    def proc(env):
        yield env.timeout(2.0)
        log.append(env.now)
        yield env.timeout(3.0)
        log.append(env.now)
        return "done"

    process = engine.process(proc(engine))
    assert engine.run(until=process) == "done"
    assert log == [2.0, 5.0]


def test_process_is_alive_until_generator_returns(engine):
    def proc(env):
        yield env.timeout(1.0)

    process = engine.process(proc(engine))
    assert process.is_alive
    engine.run()
    assert not process.is_alive


def test_processes_can_wait_on_each_other(engine):
    def child(env):
        yield env.timeout(4.0)
        return 99

    def parent(env):
        value = yield env.process(child(env))
        return value + 1

    process = engine.process(parent(engine))
    assert engine.run(until=process) == 100


def test_interrupt_delivers_cause(engine):
    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupted as exc:
            return exc.cause

    def interrupter(env, target):
        yield env.timeout(5.0)
        target.interrupt({"reason": "preempt"})

    target = engine.process(sleeper(engine))
    engine.process(interrupter(engine, target))
    assert engine.run(until=target) == {"reason": "preempt"}
    assert engine.now == 5.0


def test_interrupt_unsubscribes_from_stale_target(engine):
    resumes = []

    def sleeper(env):
        try:
            yield env.timeout(10.0)
            resumes.append("timeout")
        except Interrupted:
            resumes.append("interrupted")
        yield env.timeout(20.0)
        resumes.append("after")

    def interrupter(env, target):
        yield env.timeout(1.0)
        target.interrupt()

    target = engine.process(sleeper(engine))
    engine.process(interrupter(engine, target))
    engine.run()
    # The stale 10ms timeout must not resume the process a second time.
    assert resumes == ["interrupted", "after"]
    assert engine.now == 21.0


def test_interrupt_terminated_process_raises(engine):
    def quick(env):
        yield env.timeout(1.0)

    process = engine.process(quick(engine))
    engine.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_self_interrupt_is_rejected(engine):
    def proc(env):
        with pytest.raises(SimulationError):
            env.active_process.interrupt()
        yield env.timeout(1.0)

    engine.process(proc(engine))
    engine.run()


def test_yielding_non_event_raises(engine):
    def bad(env):
        yield 42

    engine.process(bad(engine))
    with pytest.raises(SimulationError):
        engine.run()


def test_uncaught_interrupt_fails_the_process(engine):
    def sleeper(env):
        yield env.timeout(100.0)

    def interrupter(env, target):
        yield env.timeout(1.0)
        target.interrupt("die")

    target = engine.process(sleeper(engine))
    engine.process(interrupter(engine, target))

    def watcher(env):
        try:
            yield target
        except Interrupted:
            return "propagated"

    watcher_proc = engine.process(watcher(engine))
    assert engine.run(until=watcher_proc) == "propagated"


def test_process_requires_generator(engine):
    with pytest.raises(TypeError):
        engine.process(lambda: None)


def test_already_processed_event_resumes_immediately(engine):
    event = engine.event()
    event.succeed("early")
    engine.run()  # processes the event

    def proc(env):
        value = yield event
        return value

    process = engine.process(proc(engine))
    assert engine.run(until=process) == "early"
