"""Tests for the discrete-event engine: clock, agenda, run modes."""

import pytest

from repro.sim import Engine, SimulationError
from repro.sim.errors import UnhandledEventFailure


def test_clock_starts_at_zero(engine):
    assert engine.now == 0.0


def test_clock_starts_at_initial_time():
    assert Engine(initial_time=5.0).now == 5.0


def test_timeout_advances_clock(engine):
    def proc(env):
        yield env.timeout(12.5)

    process = engine.process(proc(engine))
    engine.run(until=process)
    assert engine.now == 12.5


def test_run_until_number_stops_at_that_time(engine):
    def proc(env):
        yield env.timeout(100.0)

    engine.process(proc(engine))
    engine.run(until=40.0)
    assert engine.now == 40.0


def test_run_until_number_in_the_past_raises(engine):
    def proc(env):
        yield env.timeout(100.0)

    engine.process(proc(engine))
    engine.run(until=50.0)
    with pytest.raises(ValueError):
        engine.run(until=10.0)


def test_run_until_event_returns_its_value(engine):
    def proc(env):
        yield env.timeout(3.0)
        return "payload"

    process = engine.process(proc(engine))
    assert engine.run(until=process) == "payload"


def test_run_drains_agenda_without_until(engine):
    seen = []

    def proc(env):
        yield env.timeout(1.0)
        seen.append(env.now)
        yield env.timeout(2.0)
        seen.append(env.now)

    engine.process(proc(engine))
    engine.run()
    assert seen == [1.0, 3.0]


def test_events_at_same_time_run_in_schedule_order(engine):
    order = []

    def make(name):
        def proc(env):
            yield env.timeout(5.0)
            order.append(name)
        return proc

    for name in "abc":
        engine.process(make(name)(engine))
    engine.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time(engine):
    engine.timeout(9.0)
    assert engine.peek() == 9.0


def test_peek_on_empty_agenda_is_infinite(engine):
    assert engine.peek() == float("inf")


def test_step_on_empty_agenda_raises(engine):
    with pytest.raises(SimulationError):
        engine.step()


def test_negative_timeout_rejected(engine):
    with pytest.raises(ValueError):
        engine.timeout(-1.0)


def test_unhandled_process_failure_surfaces(engine):
    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    engine.process(bad(engine))
    with pytest.raises(UnhandledEventFailure):
        engine.run()


def test_run_until_failed_process_reraises(engine):
    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    process = engine.process(bad(engine))
    with pytest.raises(RuntimeError, match="boom"):
        engine.run(until=process)


def test_waiting_on_failed_process_propagates_into_waiter(engine):
    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def waiter(env, target):
        try:
            yield target
        except ValueError as exc:
            return f"caught {exc}"

    target = engine.process(bad(engine))
    waiter_proc = engine.process(waiter(engine, target))
    assert engine.run(until=waiter_proc) == "caught inner"


def test_run_until_already_triggered_event_returns_immediately(engine):
    event = engine.event()
    event.succeed(41)
    assert engine.run(until=event) == 41


def test_determinism_same_structure_same_schedule():
    def build():
        eng = Engine()
        log = []

        def proc(env, name, delay):
            for _ in range(3):
                yield env.timeout(delay)
                log.append((env.now, name))

        eng.process(proc(eng, "x", 1.5))
        eng.process(proc(eng, "y", 2.0))
        eng.run()
        return log

    assert build() == build()
