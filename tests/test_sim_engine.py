"""Tests for the discrete-event engine: clock, agenda, run modes."""

import pytest

from repro.sim import Engine, SimulationError
from repro.sim.errors import UnhandledEventFailure


def test_clock_starts_at_zero(engine):
    assert engine.now == 0.0


def test_clock_starts_at_initial_time():
    assert Engine(initial_time=5.0).now == 5.0


def test_timeout_advances_clock(engine):
    def proc(env):
        yield env.timeout(12.5)

    process = engine.process(proc(engine))
    engine.run(until=process)
    assert engine.now == 12.5


def test_run_until_number_stops_at_that_time(engine):
    def proc(env):
        yield env.timeout(100.0)

    engine.process(proc(engine))
    engine.run(until=40.0)
    assert engine.now == 40.0


def test_run_until_number_in_the_past_raises(engine):
    def proc(env):
        yield env.timeout(100.0)

    engine.process(proc(engine))
    engine.run(until=50.0)
    with pytest.raises(ValueError):
        engine.run(until=10.0)


def test_run_until_event_returns_its_value(engine):
    def proc(env):
        yield env.timeout(3.0)
        return "payload"

    process = engine.process(proc(engine))
    assert engine.run(until=process) == "payload"


def test_run_drains_agenda_without_until(engine):
    seen = []

    def proc(env):
        yield env.timeout(1.0)
        seen.append(env.now)
        yield env.timeout(2.0)
        seen.append(env.now)

    engine.process(proc(engine))
    engine.run()
    assert seen == [1.0, 3.0]


def test_events_at_same_time_run_in_schedule_order(engine):
    order = []

    def make(name):
        def proc(env):
            yield env.timeout(5.0)
            order.append(name)
        return proc

    for name in "abc":
        engine.process(make(name)(engine))
    engine.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time(engine):
    engine.timeout(9.0)
    assert engine.peek() == 9.0


def test_peek_on_empty_agenda_is_infinite(engine):
    assert engine.peek() == float("inf")


def test_step_on_empty_agenda_raises(engine):
    with pytest.raises(SimulationError):
        engine.step()


def test_negative_timeout_rejected(engine):
    with pytest.raises(ValueError):
        engine.timeout(-1.0)


def test_unhandled_process_failure_surfaces(engine):
    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    engine.process(bad(engine))
    with pytest.raises(UnhandledEventFailure):
        engine.run()


def test_run_until_failed_process_reraises(engine):
    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    process = engine.process(bad(engine))
    with pytest.raises(RuntimeError, match="boom"):
        engine.run(until=process)


def test_waiting_on_failed_process_propagates_into_waiter(engine):
    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def waiter(env, target):
        try:
            yield target
        except ValueError as exc:
            return f"caught {exc}"

    target = engine.process(bad(engine))
    waiter_proc = engine.process(waiter(engine, target))
    assert engine.run(until=waiter_proc) == "caught inner"


def test_run_until_already_triggered_event_returns_immediately(engine):
    event = engine.event()
    event.succeed(41)
    assert engine.run(until=event) == 41


def test_determinism_same_structure_same_schedule():
    def build():
        eng = Engine()
        log = []

        def proc(env, name, delay):
            for _ in range(3):
                yield env.timeout(delay)
                log.append((env.now, name))

        eng.process(proc(eng, "x", 1.5))
        eng.process(proc(eng, "y", 2.0))
        eng.run()
        return log

    assert build() == build()


# ---------------------------------------------------------------------------
# Clock semantics regressions: run(until=...) must leave the clock in a
# consistent state on every exit path — normal horizon, early drain,
# StopSimulation, and the _stop_on defuse path for a failed until-event.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("fast", [True, False])
def test_run_until_failed_event_reraises_and_keeps_clock(fast):
    engine = Engine(fast_path=fast)
    watched = engine.event()

    def saboteur(env):
        yield env.timeout(3.0)
        watched.fail(RuntimeError("watched failed"))

    def bystander(env):
        yield env.timeout(10.0)

    engine.process(saboteur(engine))
    engine.process(bystander(engine))
    with pytest.raises(RuntimeError, match="watched failed"):
        engine.run(until=watched)
    # The failure was defused and surfaced to the caller; the clock sits
    # at the failure time, not at some later horizon.
    assert engine.now == 3.0
    # The engine stays usable: the remaining agenda drains normally.
    engine.run()
    assert engine.now == 10.0


@pytest.mark.parametrize("fast", [True, False])
def test_run_until_number_drain_early_lands_on_horizon_once(fast):
    engine = Engine(fast_path=fast)

    def proc(env):
        yield env.timeout(2.0)

    engine.process(proc(engine))
    # Agenda drains at t=2, well before the horizon: clock snaps to the
    # horizon exactly once (no double advance on the idle re-run).
    engine.run(until=50.0)
    assert engine.now == 50.0
    engine.run(until=50.0)
    assert engine.now == 50.0
    engine.run(until=60.0)
    assert engine.now == 60.0


@pytest.mark.parametrize("fast", [True, False])
def test_run_until_event_does_not_advance_to_later_agenda(fast):
    engine = Engine(fast_path=fast)
    stop = engine.event()

    def trigger(env):
        yield env.timeout(5.0)
        stop.succeed("done")

    def later(env):
        yield env.timeout(100.0)

    engine.process(trigger(engine))
    engine.process(later(engine))
    assert engine.run(until=stop) == "done"
    assert engine.now == 5.0


@pytest.mark.parametrize("fast", [True, False])
def test_run_until_number_resumes_pending_entry(fast):
    # An entry beyond the horizon must survive for the next run() call
    # (the fast loop pushes it back onto the heap).
    engine = Engine(fast_path=fast)
    fired = []

    def proc(env):
        yield env.timeout(7.0)
        fired.append(env.now)

    engine.process(proc(engine))
    engine.run(until=4.0)
    assert engine.now == 4.0
    assert fired == []
    engine.run()
    assert fired == [7.0]


def test_fast_and_legacy_dispatch_identical_order():
    def build(fast):
        engine = Engine(fast_path=fast)
        log = []

        def proc(env, name, delay):
            for _ in range(4):
                yield env.timeout(delay)
                log.append((env.now, name))
                # Mix in immediate-lane events between timeouts.
                done = env.event()
                done.succeed()
                yield done
                log.append((env.now, name + "+imm"))

        engine.process(proc(engine, "a", 1.0))
        engine.process(proc(engine, "b", 1.5))
        engine.process(proc(engine, "c", 1.0))
        engine.run()
        return log

    assert build(True) == build(False)


class TestEvery:
    """Engine.every: the periodic backbone of the time-series sampler."""

    def test_fires_on_the_interval(self, engine):
        fired = []
        engine.every(10.0, lambda env: fired.append(env.now))
        engine.run(until=35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_first_delay_overrides_initial_gap(self, engine):
        fired = []
        engine.every(10.0, lambda env: fired.append(env.now),
                     first_delay_ms=3.0)
        engine.run(until=25.0)
        assert fired == [3.0, 13.0, 23.0]

    def test_cancel_stops_future_firings(self, engine):
        fired = []
        handle = engine.every(10.0, lambda env: fired.append(env.now))
        engine.run(until=25.0)
        handle.cancel()
        engine.run(until=60.0)
        assert fired == [10.0, 20.0]

    def test_callback_may_cancel_itself(self, engine):
        fired = []
        handle = engine.every(5.0, lambda env: (fired.append(env.now),
                                                handle.cancel()))
        engine.run(until=50.0)
        assert fired == [5.0]

    def test_non_positive_interval_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.every(0.0, lambda env: None)
        with pytest.raises(ValueError):
            engine.every(-1.0, lambda env: None)

    def test_no_drift_over_long_horizons(self, engine):
        # Re-arming relative to the previous fire time accumulates
        # float error: after thousands of firings with a non-dyadic
        # interval, fire N visibly leaves the `anchor + N * interval`
        # grid. The engine re-arms from the absolute anchor instead, so
        # every fire lands within one ulp-scale rounding of the grid.
        interval = 0.1  # not exactly representable in binary
        fired = []
        engine.every(interval, lambda env: fired.append(env.now))
        engine.run(until=500.0)
        assert len(fired) == 4999
        worst = max(abs(t - (n + 1) * interval)
                    for n, t in enumerate(fired))
        # Cumulative re-arm drift would reach ~1e-12 and grow with the
        # horizon; absolute re-arm stays at one-multiplication rounding.
        assert worst < 1e-13

    def test_periodics_interleave_deterministically(self):
        def build(fast):
            eng = Engine(fast_path=fast)
            log = []
            eng.every(2.0, lambda env: log.append((env.now, "a")))
            eng.every(3.0, lambda env: log.append((env.now, "b")))
            eng.run(until=12.0)
            return log

        assert build(True) == build(False)
