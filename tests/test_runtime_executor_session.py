"""Tests for executors and sessions: execution, abort/resume, memory."""

import pytest

from repro.core import make_context
from repro.hw import OutOfMemoryError, v100_server
from repro.models import get_model
from repro.runtime import Session


@pytest.fixture
def session_setup(v100_ctx):
    ctx = v100_ctx
    session = Session(
        machine=ctx.machine, model=get_model("ResNet50"), batch=8,
        training=True, job="job", rendezvous=ctx.rendezvous,
        resources=ctx.resources, rng=ctx.rng)
    return ctx, session


def _run_iteration(ctx, session, iteration=0, device=None):
    device = device or ctx.machine.gpu(0).name

    def driver(env):
        yield ctx.resources.ensure_state(session.job, device)
        yield from session.run_cpu_stage(ctx.data_pool, iteration)
        run = session.start_gpu_stage(ctx.global_pool, device, iteration)
        outcome = yield run.done
        session.finish_gpu_stage(run, iteration)
        return outcome

    process = ctx.engine.process(driver(ctx.engine))
    return ctx.engine.run(until=process)


class TestSessionExecution:
    def test_full_iteration_completes(self, session_setup):
        ctx, session = session_setup
        assert _run_iteration(ctx, session) == "completed"
        assert session.iterations_completed == 1
        assert ctx.engine.now > 0

    def test_multi_version_executors_cover_all_devices(self, session_setup):
        ctx, session = session_setup
        expected = {device.name for device in ctx.machine.devices}
        assert set(session.versions) == expected

    def test_compute_runs_on_cpu_fallback(self, session_setup):
        ctx, session = session_setup
        outcome = _run_iteration(ctx, session,
                                 device=ctx.machine.cpu.name)
        assert outcome == "completed"
        # No GPU kernels at all.
        assert ctx.machine.gpu(0).kernels_completed == 0

    def test_cpu_fallback_is_much_slower(self, two_v100_ctx):
        ctx = two_v100_ctx

        def compute_time(device_name, job_name):
            session = Session(
                machine=ctx.machine, model=get_model("MobileNetV2"),
                batch=8, training=True, job=job_name,
                rendezvous=ctx.rendezvous, resources=ctx.resources)
            timings = {}

            def driver(env):
                yield ctx.resources.ensure_state(job_name, device_name)
                yield from session.run_cpu_stage(ctx.data_pool, 0)
                timings["compute_start"] = env.now
                run = session.start_gpu_stage(
                    ctx.global_pool, device_name, 0)
                yield run.done
                session.finish_gpu_stage(run, 0)
                return env.now - timings["compute_start"]

            process = ctx.engine.process(driver(ctx.engine))
            return ctx.engine.run(until=process)

        gpu_ms = compute_time(ctx.machine.gpu(0).name, "gpu-job")
        cpu_ms = compute_time(ctx.machine.cpu.name, "cpu-job")
        assert cpu_ms > 3 * gpu_ms

    def test_transient_memory_freed_after_run(self, session_setup):
        ctx, session = session_setup
        gpu = ctx.machine.gpu(0)
        _run_iteration(ctx, session)
        # Only the persistent weights remain.
        assert gpu.memory.used_bytes == session.state_bytes
        assert gpu.memory.high_water_mark >= session.peak_memory_bytes

    def test_oom_on_transient_allocation(self, v100_ctx):
        ctx = v100_ctx
        gpu = ctx.machine.gpu(0)
        hog = gpu.memory.allocate("hog", "block",
                                  gpu.memory.free_bytes - 100)
        session = Session(
            machine=ctx.machine, model=get_model("ResNet50"), batch=8,
            training=True, job="job", rendezvous=ctx.rendezvous,
            resources=ctx.resources)
        with pytest.raises(OutOfMemoryError):
            _run_iteration(ctx, session)
        gpu.memory.free(hog)


class TestAbortResume:
    def test_abort_mid_run_then_resume_elsewhere(self, two_v100_ctx):
        ctx = two_v100_ctx
        gpu0, gpu1 = ctx.machine.gpus
        session = Session(
            machine=ctx.machine, model=get_model("ResNet50"), batch=8,
            training=True, job="job", rendezvous=ctx.rendezvous,
            resources=ctx.resources)
        outcome = {}

        def driver(env):
            yield ctx.resources.ensure_state("job", gpu0.name)
            yield from session.run_cpu_stage(ctx.data_pool, 0)
            run = session.start_gpu_stage(ctx.global_pool, gpu0.name, 0)
            result = yield run.done
            outcome["first"] = result
            outcome["completed_before"] = len(run.completed)
            session.finish_gpu_stage(run, 0)
            # Resume on the other GPU with the completed set carried.
            yield ctx.resources.ensure_state("job", gpu1.name)
            resumed = session.start_gpu_stage(
                ctx.global_pool, gpu1.name, 0, completed=run.completed)
            result = yield resumed.done
            outcome["second"] = result
            session.finish_gpu_stage(resumed, 0)

        def preemptor(env):
            # The CPU stage takes ~80 ms (8 chunks x 80 ms on 8 workers);
            # strike a little into the GPU stage.
            yield env.timeout(95.0)
            yield from session.abort_gpu_stage()
            outcome["abort_done_at"] = env.now

        driver_proc = ctx.engine.process(driver(ctx.engine))
        ctx.engine.process(preemptor(ctx.engine))
        ctx.engine.run(until=driver_proc)

        assert outcome["first"] == "aborted"
        assert outcome["second"] == "completed"
        assert 0 < outcome["completed_before"] < \
            len(session.compute_subgraph)
        # In-flight kernels drained quickly: abort is not a full iteration.
        assert outcome["abort_done_at"] < 115.0
        # The resumed run finished the remaining work on the other GPU.
        assert ctx.machine.gpu(1).kernels_completed > 0

    def test_abort_with_no_run_is_noop(self, session_setup):
        ctx, session = session_setup

        def driver(env):
            yield from session.abort_gpu_stage()
            return "ok"

        process = ctx.engine.process(driver(ctx.engine))
        assert ctx.engine.run(until=process) == "ok"

    def test_resume_with_everything_completed_is_instant(self, session_setup):
        ctx, session = session_setup
        _run_iteration(ctx, session)
        all_nodes = {n.node_id for n in session.compute_subgraph}

        def driver(env):
            run = session.start_gpu_stage(
                ctx.global_pool, ctx.machine.gpu(0).name, 1,
                completed=all_nodes)
            outcome = yield run.done
            session.finish_gpu_stage(run, 1)
            return outcome

        start = ctx.engine.now
        process = ctx.engine.process(driver(ctx.engine))
        assert ctx.engine.run(until=process) == "completed"
        assert ctx.engine.now == start
