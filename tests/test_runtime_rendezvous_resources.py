"""Tests for the rendezvous and the resource manager (state migration)."""

import pytest

from repro.hw import PCIE3_X16, transfer_time_ms
from repro.runtime import Rendezvous
from repro.sim import Engine


class TestRendezvous:
    def test_send_then_recv(self, engine):
        rendezvous = Rendezvous(engine)

        def producer(env):
            yield env.timeout(5.0)
            yield rendezvous.send("scope", "key", "tensor")

        def consumer(env):
            value = yield rendezvous.recv("scope", "key")
            return (env.now, value)

        engine.process(producer(engine))
        consumer_proc = engine.process(consumer(engine))
        assert engine.run(until=consumer_proc) == (5.0, "tensor")

    def test_recv_before_send_blocks(self, engine):
        rendezvous = Rendezvous(engine)

        def consumer(env):
            value = yield rendezvous.recv("s", "k")
            return value

        def producer(env):
            yield env.timeout(9.0)
            yield rendezvous.send("s", "k", 42)

        consumer_proc = engine.process(consumer(engine))
        engine.process(producer(engine))
        assert engine.run(until=consumer_proc) == 42
        assert engine.now == 9.0

    def test_scopes_isolate_iterations(self, engine):
        rendezvous = Rendezvous(engine)

        def producer(env):
            yield rendezvous.send("it0", "k", "zero")
            yield rendezvous.send("it1", "k", "one")

        def consumer(env):
            one = yield rendezvous.recv("it1", "k")
            zero = yield rendezvous.recv("it0", "k")
            return one, zero

        engine.process(producer(engine))
        consumer_proc = engine.process(consumer(engine))
        assert engine.run(until=consumer_proc) == ("one", "zero")

    def test_drop_scope_frees_channels(self, engine):
        rendezvous = Rendezvous(engine)
        rendezvous.send("it0", "a", 1)
        rendezvous.send("it0", "b", 2)
        rendezvous.send("it1", "a", 3)
        engine.run()
        assert rendezvous.pending_channels() == 3
        assert rendezvous.drop_scope("it0") == 2
        assert rendezvous.pending_channels() == 1


class TestResourceManager:
    def test_register_and_initialize(self, v100_ctx):
        ctx = v100_ctx
        ctx.resources.register_job("job", 1000, 4)
        gpu = ctx.machine.gpu(0)

        def driver(env):
            result = yield ctx.resources.ensure_state("job", gpu.name)
            return result

        process = ctx.engine.process(driver(ctx.engine))
        assert ctx.engine.run(until=process) == "initialized"
        assert gpu.memory.used_by("job") == 1000

    def test_ensure_state_resident_is_instant(self, v100_ctx):
        ctx = v100_ctx
        ctx.resources.register_job("job", 1000, 4)
        gpu = ctx.machine.gpu(0)

        def driver(env):
            yield ctx.resources.ensure_state("job", gpu.name)
            before = env.now
            result = yield ctx.resources.ensure_state("job", gpu.name)
            return result, env.now - before

        process = ctx.engine.process(driver(ctx.engine))
        result, elapsed = ctx.engine.run(until=process)
        assert result == "resident"
        assert elapsed == 0.0

    def test_migration_transfers_and_frees_source(self, two_v100_ctx):
        ctx = two_v100_ctx
        nbytes = 100 * 1024 * 1024
        n_tensors = 50
        ctx.resources.register_job("job", nbytes, n_tensors)
        gpu0, gpu1 = ctx.machine.gpus

        def driver(env):
            yield ctx.resources.ensure_state("job", gpu0.name)
            start = env.now
            # During migration both copies exist (paper's tradeoff).
            result = yield ctx.resources.ensure_state("job", gpu1.name)
            return result, env.now - start

        process = ctx.engine.process(driver(ctx.engine))
        result, elapsed = ctx.engine.run(until=process)
        assert result == "migrated"
        expected = transfer_time_ms(PCIE3_X16, nbytes, n_tensors)
        assert elapsed == pytest.approx(expected, rel=0.01)
        assert gpu0.memory.used_by("job") == 0
        assert gpu1.memory.used_by("job") == nbytes
        assert ctx.resources.transfers_started == 1

    def test_double_register_rejected(self, v100_ctx):
        v100_ctx.resources.register_job("job", 10, 1)
        with pytest.raises(ValueError):
            v100_ctx.resources.register_job("job", 10, 1)

    def test_release_job_frees_memory(self, v100_ctx):
        ctx = v100_ctx
        ctx.resources.register_job("job", 1000, 4)
        gpu = ctx.machine.gpu(0)

        def driver(env):
            yield ctx.resources.ensure_state("job", gpu.name)

        process = ctx.engine.process(driver(ctx.engine))
        ctx.engine.run(until=process)
        ctx.resources.release_job("job")
        assert gpu.memory.used_by("job") == 0

    def test_release_unknown_job_is_noop(self, v100_ctx):
        v100_ctx.resources.release_job("ghost")
