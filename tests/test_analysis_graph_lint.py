"""Tests for the static graph linter: each crafted bad graph must
produce exactly its expected finding, and real model graphs are clean."""

from repro.analysis.findings import Severity
from repro.analysis.graph_lint import (
    lint_graph,
    lint_partition,
    lint_replicas,
    lint_session,
)
from repro.graph.graph import Graph
from repro.graph.ops import OpDef, OpKind
from repro.graph.partition import partition_graph
from repro.graph.placement import place_graph
from repro.models import get_model
from repro.runtime.session import ACCELERATOR_TAG


def op(name, kind=OpKind.ELEMENTWISE, **attrs):
    return OpDef(name=name, kind=kind, flops=1.0, attrs=attrs)


def chain(*names, device=None):
    graph = Graph("chain")
    previous = []
    for name in names:
        node = graph.add_node(op(name), inputs=previous, device=device)
        previous = [node]
    return graph


class TestLintGraph:
    def test_clean_chain_has_no_findings(self):
        assert not lint_graph(chain("a", "b", "c")).findings

    def test_cycle_is_detected(self):
        graph = chain("a", "b", "c")
        nodes = graph.nodes
        graph.add_edge(nodes[2], nodes[0])  # c -> a closes the loop
        report = lint_graph(graph)
        findings = report.by_check("cycle")
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "'a'" in findings[0].message
        assert set(findings[0].meta["node_ids"]) == \
            {n.node_id for n in nodes}

    def test_dangling_edge_is_detected(self):
        graph = chain("a", "b")
        src = graph.nodes[0]
        # Simulate corrupted bookkeeping: an edge to a deleted node.
        graph._successors[src.node_id].append(999_999)
        report = lint_graph(graph)
        findings = report.by_check("dangling-edge")
        assert len(findings) == 1
        assert "not in the graph" in findings[0].message

    def test_asymmetric_bookkeeping_is_detected(self):
        graph = chain("a", "b")
        a, b = graph.nodes
        graph._predecessors[b.node_id].remove(a.node_id)
        report = lint_graph(graph)
        assert any("asymmetric" in f.message
                   for f in report.by_check("dangling-edge"))

    def test_unplaced_node_only_flagged_when_placement_required(self):
        graph = chain("a", "b")  # no devices assigned
        assert not lint_graph(graph).by_check("unplaced-node")
        report = lint_graph(graph, require_placement=True)
        assert len(report.by_check("unplaced-node")) == 2

    def test_cross_device_edge_without_transfer_pair(self):
        graph = Graph("split")
        a = graph.add_node(op("a"), device="gpu0")
        graph.add_node(op("b"), inputs=[a], device="gpu1")
        # Not executable: placement legitimately precedes partitioning.
        assert not lint_graph(graph, require_placement=True).findings
        report = lint_graph(graph, executable=True)
        findings = report.by_check("cross-device-edge")
        assert len(findings) == 1
        assert "without a send/recv pair" in findings[0].message

    def test_send_recv_carries_the_hop(self):
        graph = Graph("wired")
        a = graph.add_node(op("a"), device="gpu0")
        send = graph.add_node(op("send", OpKind.SEND, channel="ch"),
                              inputs=[a], device="gpu0")
        recv = graph.add_node(op("recv", OpKind.RECV, channel="ch"),
                              inputs=[send], device="gpu1")
        graph.add_node(op("b"), inputs=[recv], device="gpu1")
        assert not lint_graph(graph, executable=True).findings


class TestLintPartition:
    def _partitioned_model(self, name="MobileNetV2"):
        model = get_model(name)
        graph = model.build_graph(8, training=True, include_pipeline=True,
                                  name=f"{name}/train")
        place_graph(graph, "host-cpu", ACCELERATOR_TAG)
        return graph, partition_graph(graph)

    def test_real_model_partition_is_clean(self):
        graph, partition = self._partitioned_model()
        assert not lint_graph(graph, require_placement=True).findings
        assert not lint_partition(partition).findings

    def test_misplaced_node_is_detected(self):
        _graph, partition = self._partitioned_model()
        device = next(iter(partition.subgraphs))
        subgraph = partition.subgraphs[device]
        next(iter(subgraph)).device = "somewhere-else"
        report = lint_partition(partition)
        assert report.by_check("misplaced-node")

    def test_unpaired_channel_is_detected(self):
        _graph, partition = self._partitioned_model()
        # Drop one RECV: its channel now has a send with no receiver.
        for subgraph in partition.subgraphs.values():
            recv = next((n for n in subgraph if n.kind is OpKind.RECV),
                        None)
            if recv is not None:
                subgraph.remove_node(recv)
                break
        report = lint_partition(partition)
        findings = report.by_check("unpaired-channel")
        assert any(f.severity is Severity.ERROR for f in findings)


class TestLintReplicas:
    def _pair(self):
        primary = chain("a", "b", "c", device="gpu0")
        replica = Graph("replica")
        # Replicas share node objects with the primary (one subgraph,
        # many executor versions) — mirror that aliasing here.
        replica._nodes = dict(primary._nodes)
        replica._successors = {k: list(v)
                               for k, v in primary._successors.items()}
        replica._predecessors = {k: list(v)
                                 for k, v in primary._predecessors.items()}
        return primary, replica

    def test_identical_replica_is_clean(self):
        primary, replica = self._pair()
        assert not lint_replicas(primary, replica).findings

    def test_missing_node_is_divergent(self):
        primary, replica = self._pair()
        replica.remove_node(replica.nodes[-1])
        report = lint_replicas(primary, replica)
        findings = report.by_check("divergent-replica")
        assert findings
        assert any("missing" in f.message for f in findings)

    def test_extra_node_is_divergent(self):
        primary, replica = self._pair()
        replica.add_node(op("rogue"))
        report = lint_replicas(primary, replica)
        assert any("absent from primary" in f.message
                   for f in report.by_check("divergent-replica"))

    def test_edge_differences_are_divergent(self):
        primary, replica = self._pair()
        a, _b, c = replica.nodes
        replica.add_edge(a, c)  # extra dependency the primary lacks
        report = lint_replicas(primary, replica)
        findings = report.by_check("divergent-replica")
        assert len(findings) == 1
        assert "adds edge" in findings[0].message

    def test_missing_edge_is_divergent(self):
        primary, replica = self._pair()
        a, b, _c = replica.nodes
        replica._successors[a.node_id].remove(b.node_id)
        replica._predecessors[b.node_id].remove(a.node_id)
        report = lint_replicas(primary, replica)
        assert any("lacks edge" in f.message
                   for f in report.by_check("divergent-replica"))


class TestLintSession:
    def test_built_session_is_clean(self, v100_ctx):
        from repro.runtime import Session

        ctx = v100_ctx
        session = Session(
            machine=ctx.machine, model=get_model("MobileNetV2"), batch=8,
            training=True, job="j", rendezvous=ctx.rendezvous,
            resources=ctx.resources, rng=ctx.rng)
        report = lint_session(session)
        assert not report.has_errors, report.render()
