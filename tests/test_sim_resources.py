"""Tests for simulated synchronization primitives."""

import pytest

from repro.sim import (
    Engine,
    EventCancelled,
    Lock,
    PriorityStore,
    Semaphore,
    SimulationError,
    Store,
)


class TestSemaphore:
    def test_acquire_release_counts(self, engine):
        sem = Semaphore(engine, 2)
        assert sem.try_acquire()
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.count == 1

    def test_fifo_granting(self, engine):
        sem = Semaphore(engine, 1)
        order = []

        def worker(env, name, hold):
            yield sem.acquire()
            order.append((env.now, name))
            yield env.timeout(hold)
            sem.release()

        engine.process(worker(engine, "first", 10))
        engine.process(worker(engine, "second", 10))
        engine.process(worker(engine, "third", 10))
        engine.run()
        assert order == [(0.0, "first"), (10.0, "second"), (20.0, "third")]

    def test_cancelled_waiter_is_skipped(self, engine):
        sem = Semaphore(engine, 1)
        sem.try_acquire()
        stale = sem.acquire()
        live = sem.acquire()
        stale.cancel()
        sem.release()
        engine.run()
        assert live.triggered and live.ok
        assert not stale.ok

    def test_negative_initial_value_rejected(self, engine):
        with pytest.raises(ValueError):
            Semaphore(engine, -1)


class TestLock:
    def test_release_unlocked_raises(self, engine):
        lock = Lock(engine)
        with pytest.raises(SimulationError):
            lock.release()

    def test_locked_property(self, engine):
        lock = Lock(engine)
        assert not lock.locked
        lock.try_acquire()
        assert lock.locked


class TestStore:
    def test_fifo_ordering(self, engine):
        store = Store(engine)
        received = []

        def producer(env):
            for item in "abc":
                yield store.put(item)
                yield env.timeout(1)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        engine.process(producer(engine))
        engine.process(consumer(engine))
        engine.run()
        assert received == ["a", "b", "c"]

    def test_capacity_blocks_putter(self, engine):
        store = Store(engine, capacity=1)
        times = []

        def producer(env):
            for item in range(2):
                yield store.put(item)
                times.append(env.now)

        def slow_consumer(env):
            yield env.timeout(10)
            yield store.get()

        engine.process(producer(engine))
        engine.process(slow_consumer(engine))
        engine.run()
        assert times == [0.0, 10.0]

    def test_try_get(self, engine):
        store = Store(engine)
        ok, _ = store.try_get()
        assert not ok
        store.put("x")
        ok, item = store.try_get()
        assert ok and item == "x"

    def test_clear_with_predicate(self, engine):
        store = Store(engine)
        for item in range(6):
            store.put(item)
        removed = store.clear(lambda item: item % 2 == 0)
        assert removed == [0, 2, 4]
        assert store.items == [1, 3, 5]

    def test_clear_all(self, engine):
        store = Store(engine)
        store.put(1)
        store.put(2)
        assert store.clear() == [1, 2]
        assert len(store) == 0

    def test_cancelled_getter_does_not_consume(self, engine):
        store = Store(engine)
        stale = store.get()
        live = store.get()
        stale.cancel()
        store.put("only")
        engine.run()
        assert live.value == "only"

    def test_zero_capacity_rejected(self, engine):
        with pytest.raises(ValueError):
            Store(engine, capacity=0)


class TestPriorityStore:
    def test_smallest_first(self, engine):
        store = PriorityStore(engine)
        for item in (5, 1, 3):
            store.put(item)
        received = []

        def consumer(env):
            for _ in range(3):
                received.append((yield store.get()))  # noqa: PERF401

        engine.process(consumer(engine))
        engine.run()
        assert received == [1, 3, 5]

    def test_ties_broken_by_insertion(self, engine):
        store = PriorityStore(engine)
        store.put((1, "first"))
        store.put((1, "second"))
        engine.run()
        ok, item = store.try_get()
        assert ok and item == (1, "first")

    def test_clear_with_predicate_keeps_heap_valid(self, engine):
        store = PriorityStore(engine)
        for item in (4, 2, 9, 1):
            store.put(item)
        engine.run()
        removed = store.clear(lambda item: item > 3)
        assert sorted(removed) == [4, 9]
        ok, item = store.try_get()
        assert ok and item == 1
