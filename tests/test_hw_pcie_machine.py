"""Tests for interconnect links, CPU device, and machine topology."""

import pytest

from repro.hw import (
    CpuDevice,
    GTX_1080_TI,
    PCIE3_X16,
    RTX_2080_TI,
    XEON_DUAL_18C,
    jetson_tx2,
    single_gpu_server,
    transfer_time_ms,
    two_gpu_server,
    v100_server,
)
from repro.sim import Engine, Tracer, UnhandledEventFailure


class TestLink:
    def test_analytic_transfer_time(self):
        payload = int(1 * PCIE3_X16.bytes_per_ms)   # exactly 1 ms of data
        expected = (PCIE3_X16.latency_ms
                    + PCIE3_X16.per_tensor_overhead_ms + 1.0)
        assert transfer_time_ms(PCIE3_X16, payload, 1) == \
            pytest.approx(expected)

    def test_per_tensor_overhead_scales(self):
        slow = transfer_time_ms(PCIE3_X16, 1000, n_tensors=100)
        fast = transfer_time_ms(PCIE3_X16, 1000, n_tensors=1)
        assert slow - fast == pytest.approx(
            99 * PCIE3_X16.per_tensor_overhead_ms)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            transfer_time_ms(PCIE3_X16, -1)

    def test_transfers_serialize_on_the_link(self):
        engine = Engine()
        machine = v100_server(engine, 1)
        link = machine.link(machine.cpu.name, machine.gpu(0).name)
        nbytes = int(5 * PCIE3_X16.bytes_per_ms)
        first = link.transfer(nbytes)
        second = link.transfer(nbytes)

        def waiter(env):
            stats1 = yield first
            stats2 = yield second
            return stats1, stats2

        process = engine.process(waiter(engine))
        stats1, stats2 = engine.run(until=process)
        assert stats2.started_at >= stats1.finished_at
        assert link.transfers_completed == 2
        assert link.bytes_moved == 2 * nbytes

    def test_opposite_directions_are_independent(self):
        engine = Engine()
        machine = v100_server(engine, 1)
        nbytes = int(10 * PCIE3_X16.bytes_per_ms)
        down = machine.link(machine.cpu.name, machine.gpu(0).name)
        up = machine.link(machine.gpu(0).name, machine.cpu.name)
        first = down.transfer(nbytes)
        second = up.transfer(nbytes)

        def waiter(env):
            yield env.all_of([first, second])

        process = engine.process(waiter(engine))
        engine.run(until=process)
        # Full-duplex: both finish in ~one transfer time, not two.
        assert engine.now < 1.5 * transfer_time_ms(PCIE3_X16, nbytes, 1)


class TestCpuDevice:
    def test_execute_occupies_a_core(self):
        engine = Engine()
        cpu = CpuDevice(engine, XEON_DUAL_18C)

        def proc(env):
            yield from cpu.execute(5.0, label="op")

        process = engine.process(proc(engine))
        engine.run(until=process)
        assert engine.now == pytest.approx(5.0)
        assert cpu.ops_completed == 1

    def test_contention_beyond_core_count(self):
        engine = Engine()
        spec = XEON_DUAL_18C
        cpu = CpuDevice(engine, spec)

        def proc(env):
            yield from cpu.execute(10.0)

        for _ in range(spec.cores + 1):
            engine.process(proc(engine))
        engine.run()
        # cores tasks in parallel, then one more round.
        assert engine.now == pytest.approx(20.0)

    def test_negative_cost_rejected(self):
        engine = Engine()
        cpu = CpuDevice(engine, XEON_DUAL_18C)

        def proc(env):
            yield from cpu.execute(-1.0)

        engine.process(proc(engine))
        with pytest.raises(UnhandledEventFailure, match="negative CPU cost"):
            engine.run()


class TestMachine:
    def test_two_gpu_server_topology(self):
        engine = Engine()
        machine = two_gpu_server(engine)
        assert [g.spec.name for g in machine.gpus] == \
            [GTX_1080_TI.name, RTX_2080_TI.name]
        # Links exist host<->gpu and gpu<->gpu, both directions.
        for a in [machine.cpu.name] + [g.name for g in machine.gpus]:
            for b in [machine.cpu.name] + [g.name for g in machine.gpus]:
                if a != b:
                    assert machine.link(a, b) is not None

    def test_duplicate_gpu_names_are_disambiguated(self):
        engine = Engine()
        machine = v100_server(engine, 3)
        names = [g.name for g in machine.gpus]
        assert len(set(names)) == 3

    def test_device_lookup_errors(self):
        engine = Engine()
        machine = single_gpu_server(engine, GTX_1080_TI)
        with pytest.raises(KeyError):
            machine.device("nope")
        with pytest.raises(KeyError):
            machine.link("nope", "other")

    def test_jetson_uses_shared_memory_link(self):
        engine = Engine()
        machine = jetson_tx2(engine)
        link = machine.link(machine.cpu.name, machine.gpu(0).name)
        assert link.spec.name == "TX2 shared DRAM"

    def test_v100_count_validated(self):
        with pytest.raises(ValueError):
            v100_server(Engine(), 5)

    def test_shared_tracer_across_devices(self):
        engine = Engine()
        tracer = Tracer(engine)
        machine = v100_server(engine, 2, tracer=tracer)
        assert machine.cpu.tracer is tracer
        assert all(gpu.tracer is tracer for gpu in machine.gpus)
