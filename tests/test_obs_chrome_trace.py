"""Tests for the Chrome trace-event exporter (repro.obs.chrome_trace)."""

import json

import pytest

from repro.obs import (
    tracer_to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim import Span, Tracer


@pytest.fixture
def tracer(engine):
    tracer = Tracer(engine)
    tracer.record(Span("gpu0", "kernel_a", 0.0, 10.0, {"context": "jobA"}))
    tracer.record(Span("gpu0", "kernel_b", 5.0, 15.0, {"context": "jobB"}))
    tracer.record(Span("gpu0", "kernel_c", 20.0, 25.0))
    tracer.record(Span("cpu", "decode", 0.0, 3.0))
    tracer.instant("gpu0", "preempt")
    return tracer


def events_of(payload, ph):
    return [e for e in payload["traceEvents"] if e["ph"] == ph]


class TestExport:
    def test_round_trips_through_json(self, tracer):
        payload = json.loads(json.dumps(tracer_to_chrome_trace(tracer)))
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"

    def test_complete_events_have_schema_fields(self, tracer):
        payload = tracer_to_chrome_trace(tracer)
        complete = events_of(payload, "X")
        assert len(complete) == 4
        for event in complete:
            for key in ("name", "ts", "dur", "pid", "tid", "cat"):
                assert key in event

    def test_timestamps_scaled_to_microseconds(self, tracer):
        payload = tracer_to_chrome_trace(tracer)
        kernel = next(e for e in events_of(payload, "X")
                      if e["name"] == "kernel_a")
        assert kernel["ts"] == 0.0
        assert kernel["dur"] == 10_000.0

    def test_one_process_per_lane(self, tracer):
        payload = tracer_to_chrome_trace(tracer)
        names = {e["args"]["name"]: e["pid"]
                 for e in events_of(payload, "M")
                 if e["name"] == "process_name"}
        assert set(names) == {"gpu0", "cpu"}
        assert names["gpu0"] != names["cpu"]

    def test_overlapping_spans_spread_over_rows(self, tracer):
        payload = tracer_to_chrome_trace(tracer)
        tids = {e["name"]: e["tid"] for e in events_of(payload, "X")
                if e["cat"] == "gpu0"}
        # kernel_a and kernel_b overlap -> distinct thread rows; the
        # later kernel_c reuses a freed row.
        assert tids["kernel_a"] != tids["kernel_b"]
        assert tids["kernel_c"] == 0

    def test_instant_events(self, tracer):
        payload = tracer_to_chrome_trace(tracer)
        instants = events_of(payload, "i")
        assert len(instants) == 1
        assert instants[0]["name"] == "preempt"
        assert instants[0]["s"] == "t"

    def test_meta_is_json_clean(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("lane", "x", 0.0, 1.0,
                           {"n": 3, "obj": object()}))
        payload = json.loads(json.dumps(tracer_to_chrome_trace(tracer)))
        args = events_of(payload, "X")[0]["args"]
        assert args["n"] == 3
        assert isinstance(args["obj"], str)

    def test_lane_selection(self, tracer):
        payload = tracer_to_chrome_trace(tracer, lanes=["cpu"])
        cats = {e.get("cat") for e in events_of(payload, "X")}
        assert cats == {"cpu"}

    def test_write_to_disk(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []


class TestEdgeCases:
    def test_empty_run_exports_valid_payload(self, engine):
        payload = tracer_to_chrome_trace(Tracer(engine))
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"] == []

    def test_open_spans_dropped_by_default(self, engine):
        tracer = Tracer(engine)
        tracer.begin("gpu0", "stuck_kernel")
        payload = tracer_to_chrome_trace(tracer)
        assert events_of(payload, "X") == []

    def test_open_spans_exported_when_asked(self, engine):
        tracer = Tracer(engine)
        open_span = tracer.begin("gpu0", "stuck_kernel", context="jobA")
        engine.run(until=7.0)
        payload = tracer_to_chrome_trace(tracer, include_open=True)
        assert validate_chrome_trace(payload) == []
        exported = events_of(payload, "X")
        assert len(exported) == 1
        assert exported[0]["name"] == "stuck_kernel"
        assert exported[0]["dur"] == pytest.approx(7_000.0)
        assert exported[0]["args"]["open"] is True
        # Exporting does not close the span.
        assert not open_span.closed

    def test_open_span_on_unseen_lane_creates_the_lane(self, engine):
        tracer = Tracer(engine)
        tracer.begin("gpu9", "only_open_work")
        engine.run(until=1.0)
        payload = tracer_to_chrome_trace(tracer, include_open=True)
        names = {e["args"]["name"] for e in events_of(payload, "M")
                 if e["name"] == "process_name"}
        assert "gpu9" in names

    def test_zero_duration_span_becomes_instant(self, engine):
        tracer = Tracer(engine)
        tracer.record(Span("gpu0", "degenerate", 4.0, 4.0))
        payload = tracer_to_chrome_trace(tracer)
        assert events_of(payload, "X") == []
        [instant] = events_of(payload, "i")
        assert instant["name"] == "degenerate"
        assert instant["ts"] == pytest.approx(4_000.0)

    def test_unicode_metadata_round_trips(self, engine, tmp_path):
        tracer = Tracer(engine)
        tracer.record(Span("gpu0", "kernel-α", 0.0, 1.0,
                           {"job": "训练-β", "note": "café ☕"}))
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []
        [event] = events_of(payload, "X")
        assert event["name"] == "kernel-α"
        assert event["args"]["job"] == "训练-β"
        assert event["args"]["note"] == "café ☕"

    def test_counter_tracks_export(self, tracer):
        counters = {"gpu.util": [(0.0, {"gpu0": 0.5}),
                                 (10.0, {"gpu0": 0.9})]}
        payload = tracer_to_chrome_trace(tracer, counters=counters)
        assert validate_chrome_trace(payload) == []
        track = events_of(payload, "C")
        assert [e["ts"] for e in track] == [0.0, 10_000.0]
        assert track[0]["args"] == {"gpu0": 0.5}
        # Counter events live on their own "metrics" process row.
        lane_pids = {e["pid"] for e in events_of(payload, "X")}
        assert track[0]["pid"] not in lane_pids


class TestValidation:
    def test_flags_missing_trace_events(self):
        assert validate_chrome_trace({}) != []

    def test_flags_bad_events(self):
        payload = {"traceEvents": [
            {"ph": "Z", "pid": 1, "tid": 0, "name": "x"},
            {"ph": "X", "name": "y", "ts": 0.0},
            {"ph": "X", "pid": 1, "tid": 0, "ts": 0.0, "dur": 1.0},
        ]}
        problems = validate_chrome_trace(payload)
        assert any("unknown ph" in p for p in problems)
        assert any("missing pid/tid" in p for p in problems)
        assert any("missing name" in p for p in problems)

    def test_accepts_valid_payload(self):
        payload = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
             "args": {"name": "gpu"}},
            {"ph": "X", "name": "k", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 5.0},
            {"ph": "i", "name": "mark", "pid": 1, "tid": 0, "ts": 1.0},
        ]}
        assert validate_chrome_trace(payload) == []
