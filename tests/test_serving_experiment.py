"""Serving experiment: runner wiring, env knobs, headline checks."""

import json
import os

import pytest

from repro.experiments import serving_colocation
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import main as runner_main
from repro.serving import SERVING_ENV, ServingConfig
from repro.serving.config import ServingConfigError


class TestServingConfigParse:
    def test_full_spec(self):
        config = ServingConfig.parse(
            "rate=60,kind=bursty,queue=32,shed=drop-oldest,"
            "batch=4,timeout=2.5,slo=200")
        assert config.rate_rps == 60.0
        assert config.trace_kind == "bursty"
        assert config.queue_capacity == 32
        assert config.shed_policy == "drop-oldest"
        assert config.max_batch == 4
        assert config.batch_timeout_ms == 2.5
        assert config.slo_p99_ms == 200.0

    def test_empty_spec_is_all_defaults(self):
        config = ServingConfig.parse("")
        assert config == ServingConfig()

    @pytest.mark.parametrize("spec", [
        "rate=fast",          # non-numeric value
        "nonesuch=1",         # unknown key
        "kind=weekly",        # unknown trace kind
        "shed=drop-random",   # unknown shed policy
        "queue=0",            # out of range
        "rate",               # missing '='
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ServingConfigError):
            ServingConfig.parse(spec)


class TestHeadlineChecks:
    def result_with(self, rows):
        result = ExperimentResult(name="serving_colocation", title="t")
        for row in rows:
            result.add_row(**row)
        return result

    def row(self, policy, p99, goodput, slo="met",
            rate=serving_colocation.DEFAULT_RATE):
        return dict(policy=policy, rate_rps=rate, p99_ms=p99,
                    goodput_rps=goodput, slo=slo)

    def test_all_ok(self):
        checks = serving_colocation.headline_checks(self.result_with([
            self.row("SwitchFlow", 100.0, 28.0),
            self.row("TimeSlicing", 400.0, 12.0, slo="MISS"),
        ]))
        assert len(checks) == 3
        assert all(c.endswith("OK") for c in checks)

    def test_p99_inversion_flagged(self):
        checks = serving_colocation.headline_checks(self.result_with([
            self.row("SwitchFlow", 500.0, 28.0),
            self.row("TimeSlicing", 400.0, 12.0),
        ]))
        assert any("p99" in c and c.endswith("MISS") for c in checks)

    def test_missing_operating_point(self):
        checks = serving_colocation.headline_checks(self.result_with([
            self.row("SwitchFlow", 100.0, 28.0, rate=999.0),
        ]))
        assert len(checks) == 1 and checks[0].endswith("MISS")


class TestServingSweep:
    def test_quick_sweep_writes_json(self, tmp_path):
        json_path = tmp_path / "serving.json"
        result = serving_colocation.run(
            duration_ms=serving_colocation.QUICK_DURATION_MS,
            rates=serving_colocation.QUICK_RATES,
            seed=0, json_path=str(json_path))
        payload = json.loads(json_path.read_text())
        assert payload["seed"] == 0
        assert payload["slo_ms"] > 0
        assert len(payload["rows"]) == len(result.rows) == 3
        policies = {row["policy"] for row in payload["rows"]}
        assert policies == {"SwitchFlow", "TimeSlicing", "MPS"}
        for row in payload["rows"]:
            assert row["p99_ms"] > 0
            assert 0.0 <= row["shed_pct"] <= 100.0

    def test_seed_env_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(serving_colocation.SEED_ENV, "7")
        json_path = tmp_path / "serving-seeded.json"
        serving_colocation.run(
            duration_ms=serving_colocation.QUICK_DURATION_MS,
            rates=serving_colocation.QUICK_RATES,
            json_path=str(json_path))
        assert json.loads(json_path.read_text())["seed"] == 7


class TestRunnerServingCli:
    def test_serving_listed(self, capsys):
        assert runner_main(["--list"]) == 0
        assert "serving" in capsys.readouterr().out

    def test_bad_serving_spec_fails_fast(self, capsys):
        # Fail before any experiment runs: exit 2, no result table.
        assert runner_main(["serving", "--quick",
                            "--serving", "rate=banana"]) == 2
        captured = capsys.readouterr()
        assert "serving" in (captured.err + captured.out).lower()

    def test_serving_env_restored_after_run(self, capsys, monkeypatch):
        monkeypatch.delenv(SERVING_ENV, raising=False)
        assert runner_main(["serving", "--quick",
                            "--serving", "rate=20,queue=128"]) == 0
        assert SERVING_ENV not in os.environ
        out = capsys.readouterr().out
        assert "Serving co-location" in out
