"""Tests for the schedule sanitizer: crafted bad traces must produce
exactly the expected findings, and genuine runs must come back clean."""

import pytest

from repro.analysis.sanitizer import (
    SanitizerConfig,
    open_span_findings,
    sanitize_run,
    sanitize_trace,
)
from repro.analysis.findings import Severity
from repro.baselines import MultiThreadedTF
from repro.core import JobHandle, PRIORITY_HIGH, PRIORITY_LOW, make_context
from repro.core.switchflow import SwitchFlowPolicy
from repro.hw import v100_server
from repro.models import get_model
from repro.sim.trace import Span
from repro.workloads import JobSpec, run_colocation

LANE = "gpu:gpu0"


def gpu_span(name, start, end, context, lane=LANE, **meta):
    meta.setdefault("context", context)
    return Span(lane, name, start, end, meta)


class TestMutualExclusion:
    def test_overlapping_cross_job_spans_are_an_error(self):
        spans = [
            gpu_span("conv_a", 0.0, 10.0, "job_a"),
            gpu_span("conv_b", 5.0, 15.0, "job_b"),
        ]
        report = sanitize_trace(spans)
        findings = report.by_check("mutual-exclusion")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity is Severity.ERROR
        assert finding.where == LANE
        assert finding.meta["jobs"] == ["job_a", "job_b"]
        assert finding.t_start == pytest.approx(5.0)

    def test_same_job_overlap_is_fine(self):
        # Multi-stream execution within one job is legal.
        spans = [
            gpu_span("k1", 0.0, 10.0, "job_a", stream=0),
            gpu_span("k2", 5.0, 15.0, "job_a", stream=1),
        ]
        assert not sanitize_trace(spans).by_check("mutual-exclusion")

    def test_back_to_back_spans_are_fine(self):
        spans = [
            gpu_span("k1", 0.0, 10.0, "job_a"),
            gpu_span("k2", 10.0, 20.0, "job_b"),
        ]
        assert not sanitize_trace(spans).by_check("mutual-exclusion")

    def test_non_gpu_lanes_are_ignored(self):
        spans = [
            gpu_span("stage_a", 0.0, 10.0, "job_a", lane="cpu:host-cpu"),
            gpu_span("stage_b", 5.0, 15.0, "job_b", lane="cpu:host-cpu"),
        ]
        assert not sanitize_trace(spans).by_check("mutual-exclusion")

    def test_sharing_policies_waive_the_check(self):
        spans = [
            gpu_span("conv_a", 0.0, 10.0, "job_a"),
            gpu_span("conv_b", 5.0, 15.0, "job_b"),
        ]
        config = SanitizerConfig(exclusive_gpu=False)
        assert not sanitize_trace(spans, config=config).findings

    def test_overflow_is_budgeted_and_summarized(self):
        spans = []
        for i in range(30):
            spans.append(gpu_span(f"a{i}", i * 10.0, i * 10.0 + 8.0, "a"))
            spans.append(gpu_span(f"b{i}", i * 10.0 + 4.0,
                                  i * 10.0 + 9.0, "b"))
        config = SanitizerConfig(max_reports_per_check=5)
        report = sanitize_trace(spans, config=config)
        errors = [f for f in report.by_check("mutual-exclusion")
                  if f.severity is Severity.ERROR]
        summaries = [f for f in report.by_check("mutual-exclusion")
                     if f.severity is Severity.INFO]
        assert len(errors) == 5
        assert len(summaries) == 1
        assert "suppressed" in summaries[0].message


def preemption_records(victim="bg", device="gpu0", target="gpu1",
                       t_preempt=10.0, t_abort=12.0):
    return [
        {"event": "preempt", "victim": victim, "from_device": device,
         "to_device": target, "t_ms": t_preempt},
        {"event": "abort_complete", "victim": victim,
         "drain_ms": t_abort - t_preempt, "t_ms": t_abort},
    ]


class TestPreemptionSafety:
    def test_victim_running_after_abort_is_an_error(self):
        spans = [gpu_span("conv_bg", 15.0, 20.0, "bg")]
        report = sanitize_trace(spans, records=preemption_records())
        findings = report.by_check("preemption-safety")
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "after its abort completed" in findings[0].message

    def test_victim_starting_inside_abort_window_is_an_error(self):
        spans = [gpu_span("conv_bg", 11.0, 11.5, "bg")]
        report = sanitize_trace(spans, records=preemption_records())
        findings = report.by_check("preemption-safety")
        assert len(findings) == 1
        assert "inside the abort window" in findings[0].message

    def test_inflight_kernels_may_drain(self):
        # Dispatched before the preemption decision; ends inside the
        # abort window — exactly the drain the paper describes.
        spans = [gpu_span("conv_bg", 8.0, 11.5, "bg")]
        report = sanitize_trace(spans, records=preemption_records())
        assert not report.by_check("preemption-safety")

    def test_reassignment_back_legitimizes_later_spans(self):
        records = preemption_records()
        # A later scheduling decision sends the victim back to gpu0.
        records += [
            {"event": "preempt", "victim": "fg", "from_device": "gpu1",
             "to_device": "gpu0", "t_ms": 20.0},
            {"event": "abort_complete", "victim": "fg", "t_ms": 21.0},
        ]
        # Rewrite so it is *bg* being sent back to gpu0:
        records[2] = {"event": "preempt", "victim": "bg",
                      "from_device": "gpu1", "to_device": "gpu0",
                      "t_ms": 20.0}
        records[3] = {"event": "abort_complete", "victim": "bg",
                      "t_ms": 21.0}
        spans = [gpu_span("conv_bg", 25.0, 30.0, "bg")]
        report = sanitize_trace(spans, records=records)
        assert not report.by_check("preemption-safety")

    def test_other_jobs_on_the_device_are_unaffected(self):
        spans = [gpu_span("conv_fg", 15.0, 20.0, "fg")]
        report = sanitize_trace(spans, records=preemption_records())
        assert not report.by_check("preemption-safety")


class TestMigrationCriticalPath:
    def _records(self, preemptor_start):
        records = preemption_records()
        records += [
            {"event": "state_transfer_start", "job": "bg", "src": "gpu0",
             "dst": "gpu1", "t_ms": 12.0},
            {"event": "state_transfer_done", "job": "bg", "src": "gpu0",
             "dst": "gpu1", "t_ms": 40.0},
        ]
        spans = [gpu_span("conv_fg", preemptor_start,
                          preemptor_start + 5.0, "fg")]
        return spans, records

    def test_preemptor_waiting_for_transfer_warns(self):
        spans, records = self._records(preemptor_start=45.0)
        report = sanitize_trace(spans, records=records)
        findings = report.by_check("migration-critical-path")
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING

    def test_overlapped_transfer_is_clean(self):
        spans, records = self._records(preemptor_start=14.0)
        report = sanitize_trace(spans, records=records)
        assert not report.by_check("migration-critical-path")


class TestTraceHygiene:
    def test_span_closing_before_opening_is_an_error(self):
        spans = [gpu_span("backwards", 10.0, 4.0, "job_a")]
        report = sanitize_trace(spans)
        findings = report.by_check("span-wellformed")
        assert len(findings) == 1
        assert "closes before it opens" in findings[0].message

    def test_clock_going_backwards_is_an_error(self):
        records = [
            {"event": "a", "t_ms": 5.0},
            {"event": "b", "t_ms": 3.0},
        ]
        report = sanitize_trace([], records=records)
        findings = report.by_check("clock-monotonic")
        assert len(findings) == 1
        assert "before the preceding" in findings[0].message

    def test_memory_over_capacity_is_an_error(self):
        report = sanitize_trace([], memory_peaks={"gpu0": (200, 100)})
        findings = report.by_check("memory-ceiling")
        assert len(findings) == 1
        assert findings[0].meta["over_bytes"] == 100

    def test_memory_at_capacity_is_fine(self):
        report = sanitize_trace([], memory_peaks={"gpu0": (100, 100)})
        assert not report.findings

    def test_open_span_findings_report_the_leak(self, engine):
        from repro.sim.trace import Tracer

        tracer = Tracer(engine)
        tracer.begin("gpu:gpu0", "stuck_kernel")
        findings = open_span_findings(tracer)
        assert len(findings) == 1
        assert findings[0].check == "span-leak"
        assert findings[0].severity is Severity.ERROR
        assert "stuck_kernel" in findings[0].message
        assert findings[0].where == "gpu:gpu0"


class TestSanitizeRun:
    def _run(self, policy_factory, jobs):
        ctx = make_context(v100_server, 2, seed=11)
        gpu = ctx.machine.gpu(0).name
        specs = [
            JobSpec(job=JobHandle(name=name,
                                  model=get_model("MobileNetV2"),
                                  batch=8, training=training,
                                  priority=priority,
                                  preferred_device=gpu),
                    iterations=iterations,
                    start_delay_ms=delay)
            for name, training, priority, iterations, delay in jobs]
        policy_holder = {}

        def factory(ctx):
            policy_holder["policy"] = policy_factory(ctx)
            return policy_holder["policy"]

        run_colocation(ctx, factory, specs)
        return ctx, policy_holder["policy"]

    def test_clean_switchflow_run_has_zero_errors(self):
        ctx, policy = self._run(SwitchFlowPolicy, [
            ("bg", True, PRIORITY_LOW, 4, 0.0),
            ("fg", False, PRIORITY_HIGH, 3, 30.0),
        ])
        report = sanitize_run(ctx, policy=policy)
        assert not report.has_errors, report.render()

    def test_sharing_baseline_waives_exclusion_but_checks_the_rest(self):
        ctx, policy = self._run(MultiThreadedTF, [
            ("a", True, PRIORITY_LOW, 3, 0.0),
            ("b", True, PRIORITY_LOW, 3, 0.0),
        ])
        report = sanitize_run(ctx, policy=policy)
        # MultiThreadedTF co-schedules kernels by design: the run must
        # stay clean because the exclusion check is waived, not because
        # kernels never overlapped.
        assert not report.has_errors, report.render()

    def test_inflight_spans_at_run_end_are_narrated_not_flagged(self):
        # The harness stops the engine the instant the measured
        # processes finish, stranding in-flight pipeline work (e.g. the
        # preemption experiment strands preprocess chunks that close
        # within ~10ms of extra drain). sanitize_run narrates those as
        # INFO; strict closure belongs to Tracer.assert_all_closed.
        ctx, policy = self._run(SwitchFlowPolicy, [
            ("bg", True, PRIORITY_LOW, 4, 0.0),
            ("fg", False, PRIORITY_HIGH, 3, 30.0),
        ])
        ctx.tracer.begin("cpu:test", "stranded_chunk", context="bg")
        report = sanitize_run(ctx, policy=policy)
        assert not report.has_errors, report.render()
        inflight = [f for f in report.findings if f.check == "span-inflight"]
        assert len(inflight) == 1
        assert "stranded_chunk" in inflight[0].message

    def test_corrupted_real_trace_is_caught(self):
        # Even the sharing baseline serializes at kernel granularity in
        # the hardware model (Figure 2), so a clean run never trips the
        # check. Stretch one job's kernel over another's to prove the
        # check catches violations in full-size realistic traces too.
        ctx, policy = self._run(SwitchFlowPolicy, [
            ("bg", True, PRIORITY_LOW, 4, 0.0),
            ("fg", False, PRIORITY_HIGH, 3, 30.0),
        ])
        lane = next(s.lane for s in ctx.tracer.spans
                    if s.lane.startswith("gpu:"))
        others = [s for s in ctx.tracer.spans if s.lane == lane
                  and s.meta.get("context") == "fg" and s.duration > 0]
        victim_span = next(s for s in ctx.tracer.spans if s.lane == lane
                           and s.meta.get("context") == "bg"
                           and s.duration > 0)
        ctx.tracer.spans.append(Span(
            lane, "forged_overlap", victim_span.start,
            victim_span.end, {"context": "fg"}))
        assert others, "expected fg kernels on the contested GPU"
        report = sanitize_run(ctx, policy=policy)
        assert report.by_check("mutual-exclusion")


# ---------------------------------------------------------------------------
# Serving request-span accounting
# ---------------------------------------------------------------------------
def request_records(*events):
    """Build run-log records from (event, req[, t_ms]) shorthand."""
    records = []
    for entry in events:
        event, req = entry[0], entry[1]
        t_ms = entry[2] if len(entry) > 2 else float(len(records))
        records.append({"event": f"request_{event}", "job": "serve",
                        "req": req, "t_ms": t_ms})
    return records


class TestRequestSpans:
    def test_clean_lifecycles_pass(self):
        records = request_records(
            ("arrived", 0), ("arrived", 1), ("completed", 0),
            ("shed", 1))
        report = sanitize_trace([], records=records)
        assert not report.by_check("request-span")

    def test_arrival_without_terminal(self):
        report = sanitize_trace([], records=request_records(
            ("arrived", 0), ("arrived", 1), ("completed", 0)))
        findings = report.by_check("request-span")
        assert len(findings) == 1
        assert "never completed or shed" in findings[0].message

    def test_terminal_without_arrival(self):
        report = sanitize_trace([], records=request_records(
            ("completed", 9),))
        findings = report.by_check("request-span")
        assert len(findings) == 1
        assert "without ever arriving" in findings[0].message

    def test_double_terminal(self):
        report = sanitize_trace([], records=request_records(
            ("arrived", 0), ("completed", 0), ("shed", 0)))
        findings = report.by_check("request-span")
        assert len(findings) == 1
        assert "shed after already being completed" in findings[0].message

    def test_duplicate_arrival(self):
        report = sanitize_trace([], records=request_records(
            ("arrived", 0), ("arrived", 0), ("completed", 0)))
        findings = report.by_check("request-span")
        assert len(findings) == 1
        assert "arrived twice" in findings[0].message

    def test_jobs_keyed_independently(self):
        # The same request id on different jobs must never collide.
        records = request_records(("arrived", 0), ("completed", 0))
        records += [{"event": "request_arrived", "job": "other",
                     "req": 0, "t_ms": 5.0},
                    {"event": "request_shed", "job": "other",
                     "req": 0, "t_ms": 6.0}]
        assert not sanitize_trace([], records=records) \
            .by_check("request-span")

    def test_check_serving_false_waives(self):
        config = SanitizerConfig(check_serving=False)
        report = sanitize_trace([], records=request_records(
            ("arrived", 0),), config=config)
        assert not report.by_check("request-span")

    def test_real_serving_run_is_clean(self):
        from repro.serving import (
            SLOTarget, ServedModelSpec, make_trace, run_serving,
        )

        ctx = make_context(v100_server, 1, seed=0)
        gpu = ctx.machine.gpu(0).name
        spec = ServedModelSpec(
            job=JobHandle(name="serve", model=get_model("MobileNetV2"),
                          batch=4, training=False,
                          priority=PRIORITY_HIGH, preferred_device=gpu),
            trace=make_trace(ctx.rng, "serve", "poisson", 30.0, 900.0),
            max_batch=4, batch_timeout_ms=5.0, queue_capacity=8,
            shed_policy="drop-newest", slo=SLOTarget(p99_ms=400.0))
        run_serving(ctx, MultiThreadedTF, [spec])
        report = sanitize_run(ctx)
        assert not report.by_check("request-span"), report.render()
