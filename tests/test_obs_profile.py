"""Tests for the causal critical-path profiler (repro.obs.profile).

The acceptance bar from the issue: on a sanitized colocation run the
profiler attributes >= 95% of wall time to named categories, and the
per-category sums reconcile with the tracer's busy time within 1%.
"""

import json

import pytest

from repro.obs.profile import (
    CATEGORIES,
    _merge,
    _preemption_windows,
    _union_ms,
    main,
    profile_run,
    render_profile,
)
from repro.obs.report import WORKLOADS


@pytest.fixture(scope="module")
def preemption_profile():
    ctx = WORKLOADS["preemption"](0, 4)
    return ctx, profile_run(ctx)


@pytest.fixture(scope="module")
def serve_profile():
    ctx = WORKLOADS["serve"](0, 6)
    return ctx, profile_run(ctx)


class TestHelpers:
    def test_merge_unions_overlaps(self):
        assert _merge([(5.0, 7.0), (0.0, 2.0), (1.0, 3.0)]) == \
            [(0.0, 3.0), (5.0, 7.0)]

    def test_merge_drops_empty_intervals(self):
        assert _merge([(2.0, 2.0), (3.0, 1.0)]) == []

    def test_union_ms_counts_overlap_once(self):
        assert _union_ms([(0.0, 10.0), (5.0, 15.0)]) == 15.0

    def test_preemption_windows_pair_per_victim_fifo(self):
        records = [
            {"event": "preempt", "victim": "v", "from_device": "g0",
             "t_ms": 10.0},
            {"event": "preempt", "victim": "v", "from_device": "g1",
             "t_ms": 20.0},
            {"event": "abort_complete", "victim": "v", "t_ms": 12.0},
            {"event": "abort_complete", "victim": "v", "t_ms": 25.0},
        ]
        assert _preemption_windows(records) == [
            ("v", "g0", 10.0, 12.0), ("v", "g1", 20.0, 25.0)]

    def test_unmatched_abort_ignored(self):
        records = [{"event": "abort_complete", "victim": "v", "t_ms": 5.0}]
        assert _preemption_windows(records) == []


class TestPartition:
    def test_categories_sum_exactly_to_wall_clock(self, preemption_profile):
        _ctx, result = preemption_profile
        assert sum(result.category_ms.values()) == \
            pytest.approx(result.end_ms)

    def test_segments_are_a_disjoint_cover(self, preemption_profile):
        _ctx, result = preemption_profile
        segments = result.segments
        assert segments[0].start == 0.0
        assert segments[-1].end == pytest.approx(result.end_ms)
        for left, right in zip(segments, segments[1:]):
            assert left.end == right.start
        assert all(s.duration > 0 for s in segments)
        assert all(s.category in CATEGORIES for s in segments)

    def test_attributes_at_least_95_percent(self, preemption_profile):
        _ctx, result = preemption_profile
        assert result.attributed_fraction >= 0.95

    def test_reconciles_with_tracer_within_1_percent(self,
                                                     preemption_profile):
        _ctx, result = preemption_profile
        assert result.tracer_busy_ms > 0
        assert result.reconciliation_error < 0.01

    def test_preemption_window_is_attributed(self, preemption_profile):
        _ctx, result = preemption_profile
        assert result.category_ms["preempt"] > 0
        assert result.meta["preemption_windows"] >= 1

    def test_serve_run_also_clears_the_bar(self, serve_profile):
        _ctx, result = serve_profile
        assert result.attributed_fraction >= 0.95
        assert result.reconciliation_error < 0.01


class TestBreakdowns:
    def test_victim_breakdown(self, preemption_profile):
        _ctx, result = preemption_profile
        victim = result.per_job["victim"]
        assert victim["preemptions_suffered"] >= 1
        assert victim["preempt_overhead_ms"] > 0
        assert victim["busy_ms"] > 0

    def test_iteration_time_dominates_critical_path_bound(
            self, preemption_profile):
        # The dependency-graph critical path is a lower bound on any
        # observed iteration; a mean below it means the DP is wrong.
        _ctx, result = preemption_profile
        for name, entry in result.per_job.items():
            if "critical_path_ms" not in entry:
                continue
            assert entry["critical_path_ms"] > 0, name
            assert entry["mean_iteration_ms"] >= entry["critical_path_ms"], \
                name

    def test_per_device_busy_fractions(self, preemption_profile):
        _ctx, result = preemption_profile
        assert result.per_device
        for lane, entry in result.per_device.items():
            assert 0.0 <= entry["busy_fraction"] <= 1.0, lane
        assert any(lane.startswith("gpu:") for lane in result.per_device)

    def test_metrics_exported(self, preemption_profile):
        ctx, result = preemption_profile
        assert ctx.metrics.value("profile.attributed_fraction") == \
            pytest.approx(result.attributed_fraction)
        assert ctx.metrics.value(
            "profile.category_ms", category="compute") > 0
        assert ctx.metrics.value("profile.overhead_wall_ms") > 0

    def test_export_opt_out(self):
        ctx = WORKLOADS["fig2"](0, 2)
        profile_run(ctx, export_metrics=False)
        assert ctx.metrics.get("profile.attributed_fraction") is None

    def test_overhead_measured(self, preemption_profile):
        _ctx, result = preemption_profile
        assert result.overhead_wall_ms > 0


class TestRendering:
    def test_render_names_every_category(self, preemption_profile):
        _ctx, result = preemption_profile
        text = render_profile(result)
        for category in CATEGORIES:
            assert category in text
        assert "reconciliation" in text
        assert "profiler overhead" in text

    def test_to_dict_round_trips_through_json(self, preemption_profile):
        _ctx, result = preemption_profile
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["end_ms"] == pytest.approx(result.end_ms)
        assert set(payload["category_ms"]) == set(CATEGORIES)


class TestCli:
    def test_cli_prints_profile_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = main(["--workload", "preemption", "--iterations", "3",
                     "--json", str(out)])
        text = capsys.readouterr().out
        assert code == 0
        assert "critical-path profile: preemption" in text
        payload = json.loads(out.read_text())
        assert payload["attributed_fraction"] >= 0.95

    def test_cli_rejects_bad_iterations(self):
        with pytest.raises(SystemExit):
            main(["--workload", "preemption", "--iterations", "0"])
