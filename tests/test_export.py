"""Tests for experiment-result exporters."""

import csv
import io

from repro.experiments.common import ExperimentResult
from repro.experiments.export import from_json, to_csv, to_json, to_markdown


def sample():
    result = ExperimentResult(name="demo", title="Demo result")
    result.add_row(model="ResNet50", value=1.23456, flag="yes")
    result.add_row(model="VGG16", value=100.0, extra=None)
    result.notes.append("a note")
    return result


def test_csv_roundtrip_structure():
    text = to_csv(sample())
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 2
    assert rows[0]["model"] == "ResNet50"
    assert float(rows[0]["value"]) == 1.2346
    # Missing cells serialize empty, not crash.
    assert rows[0]["extra"] == ""


def test_csv_writes_file(tmp_path):
    path = tmp_path / "out.csv"
    to_csv(sample(), path)
    assert path.read_text().startswith("model,")


def test_json_roundtrip():
    original = sample()
    restored = from_json(to_json(original))
    assert restored.name == original.name
    assert restored.title == original.title
    assert restored.notes == original.notes
    assert restored.rows[0]["model"] == "ResNet50"
    assert restored.rows[0]["value"] == 1.2346


def test_json_writes_file(tmp_path):
    path = tmp_path / "out.json"
    to_json(sample(), path)
    assert path.read_text().startswith("{")


def test_markdown_table():
    text = to_markdown(sample())
    assert "### Demo result" in text
    assert "| model |" in text
    assert "ResNet50" in text
    assert "—" in text           # None renders as em-dash
    assert "*a note*" in text


def test_markdown_empty():
    assert "(no rows)" in to_markdown(
        ExperimentResult(name="x", title="Empty"))
