"""Cost-model memoization: cached results must equal uncached ones.

The cache is keyed by op *value* (kind, flop/byte counts, attrs) plus
the hardware spec, so two ops that describe the same computation share
an entry even across graph rebuilds. These tests sweep every model in
the registry on both a GPU and a CPU spec and assert the memoized
answers are identical to the uncached ones, then check the hit-rate
accounting that the observability layer exports.
"""

from __future__ import annotations

import pytest

from repro.graph.cost_model import (
    COST_CACHE_STATS,
    clear_cost_cache,
    cost_cache_disabled,
    cpu_op_cost_ms,
    gpu_kernel_cost,
    register_cost_cache_collector,
)
from repro.hw import JETSON_TX2_GPU, TESLA_V100, XEON_DUAL_18C
from repro.models import get_model, model_names
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cost_cache(reset_stats=True)
    yield
    clear_cost_cache(reset_stats=True)


def _model_ops(name):
    graph = get_model(name).build_graph(batch=32, training=True)
    return [node.op for node in graph]


@pytest.mark.parametrize("model_name", model_names())
def test_cached_costs_identical_to_uncached(model_name):
    ops = _model_ops(model_name)
    assert ops

    with cost_cache_disabled():
        gpu_expected = [gpu_kernel_cost(op, TESLA_V100) for op in ops]
        cpu_expected = [cpu_op_cost_ms(op, XEON_DUAL_18C) for op in ops]

    # Two cached sweeps: the first populates, the second must hit.
    for _ in range(2):
        gpu_cached = [gpu_kernel_cost(op, TESLA_V100) for op in ops]
        cpu_cached = [cpu_op_cost_ms(op, XEON_DUAL_18C) for op in ops]
        assert gpu_cached == gpu_expected
        assert cpu_cached == cpu_expected


def test_cache_distinguishes_specs():
    ops = _model_ops("ResNet50")
    v100 = [gpu_kernel_cost(op, TESLA_V100) for op in ops]
    tx2 = [gpu_kernel_cost(op, JETSON_TX2_GPU) for op in ops]
    # Same ops, different hardware: the cache must not conflate them.
    assert v100 != tx2


def test_cache_hit_rate_accounting():
    ops = _model_ops("MobileNetV2")
    for op in ops:
        gpu_kernel_cost(op, TESLA_V100)
        cpu_op_cost_ms(op, XEON_DUAL_18C)
    first_gpu_misses = COST_CACHE_STATS.gpu_misses
    assert first_gpu_misses > 0

    for _ in range(3):
        for op in ops:
            gpu_kernel_cost(op, TESLA_V100)
            cpu_op_cost_ms(op, XEON_DUAL_18C)
    # Repeat sweeps add only hits: misses frozen, hit rate high.
    assert COST_CACHE_STATS.gpu_misses == first_gpu_misses
    assert COST_CACHE_STATS.gpu_hits >= 3 * len(ops)
    assert COST_CACHE_STATS.hit_rate("gpu") > 0.5
    assert COST_CACHE_STATS.hit_rate("cpu") > 0.5


def test_disabled_cache_records_no_stats():
    ops = _model_ops("MobileNetV2")
    with cost_cache_disabled():
        for op in ops:
            gpu_kernel_cost(op, TESLA_V100)
    assert COST_CACHE_STATS.gpu_hits == 0
    assert COST_CACHE_STATS.gpu_misses == 0


def test_obs_collector_exports_cache_counters():
    registry = MetricsRegistry()
    register_cost_cache_collector(registry)
    ops = _model_ops("ResNet50")
    for _ in range(2):
        for op in ops:
            gpu_kernel_cost(op, TESLA_V100)
            cpu_op_cost_ms(op, XEON_DUAL_18C)

    gpu_hits = registry.value("cost_model.cache_hits", device="gpu")
    gpu_misses = registry.value("cost_model.cache_misses", device="gpu")
    cpu_hits = registry.value("cost_model.cache_hits", device="cpu")
    assert gpu_hits == COST_CACHE_STATS.gpu_hits
    assert gpu_misses == COST_CACHE_STATS.gpu_misses
    assert cpu_hits == COST_CACHE_STATS.cpu_hits
    assert gpu_hits > 0
    # The second sweep was all hits, so the rate clears 50%.
    assert gpu_hits / (gpu_hits + gpu_misses) > 0.5
