"""End-to-end integration tests: determinism, invariants, full stack."""

import pytest

from repro.baselines import MultiThreadedTF, SessionTimeSlicing
from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SwitchFlowPolicy,
    make_context,
)
from repro.hw import two_gpu_server, v100_server
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation


def _fig6_style(policy_factory, seed):
    ctx = make_context(v100_server, 2, seed=seed)
    gpu = ctx.machine.gpu(0).name
    train = JobHandle(name="train", model=get_model("VGG16"), batch=32,
                      training=True, priority=PRIORITY_LOW,
                      preferred_device=gpu)
    infer = JobHandle(name="infer", model=get_model("ResNet50"), batch=1,
                      training=False, priority=PRIORITY_HIGH,
                      preferred_device=gpu)
    result = run_colocation(ctx, policy_factory, [
        JobSpec(job=train, iterations=100_000, background=True),
        JobSpec(job=infer, iterations=25, start_delay_ms=1200.0),
    ])
    return ctx, result


class TestDeterminism:
    def test_identical_seeds_identical_latencies(self):
        first = _fig6_style(SwitchFlowPolicy, seed=9)[1]
        second = _fig6_style(SwitchFlowPolicy, seed=9)[1]
        assert first.stats["infer"].iteration_times_ms == \
            second.stats["infer"].iteration_times_ms
        assert first.stats["train"].iteration_times_ms == \
            second.stats["train"].iteration_times_ms

    def test_different_seeds_jitter_latencies(self):
        first = _fig6_style(SwitchFlowPolicy, seed=9)[1]
        second = _fig6_style(SwitchFlowPolicy, seed=10)[1]
        assert first.stats["infer"].iteration_times_ms != \
            second.stats["infer"].iteration_times_ms


class TestHeadlineResult:
    def test_switchflow_beats_tf_tail_latency(self):
        _, tf_result = _fig6_style(MultiThreadedTF, seed=9)
        _, sf_result = _fig6_style(SwitchFlowPolicy, seed=9)
        tf_p95 = tf_result.latency_summary("infer", warmup=4).p95
        sf_p95 = sf_result.latency_summary("infer", warmup=4).p95
        assert tf_p95 / sf_p95 > 2.5

    def test_switchflow_beats_time_slicing_tail_latency(self):
        _, ts_result = _fig6_style(SessionTimeSlicing, seed=9)
        _, sf_result = _fig6_style(SwitchFlowPolicy, seed=9)
        ts_p95 = ts_result.latency_summary("infer", warmup=4).p95
        sf_p95 = sf_result.latency_summary("infer", warmup=4).p95
        assert ts_p95 / sf_p95 > 2.0


class TestGlobalInvariants:
    def test_no_memory_leaks_after_jobs_finish(self):
        ctx, _ = _fig6_style(SwitchFlowPolicy, seed=9)
        for device in ctx.machine.devices:
            assert device.memory.used_bytes == 0

    def test_gpu_spans_never_exceed_capacity(self):
        ctx, _ = _fig6_style(MultiThreadedTF, seed=9)
        for gpu in ctx.machine.gpus:
            # Occupancy-weighted concurrency never exceeds the device.
            events = []
            for span in ctx.tracer.spans:
                if span.lane != gpu.lane or span.duration <= 0:
                    continue
                occ = span.meta.get("occupancy", 0.0)
                events.append((span.start, occ))
                events.append((span.end, -occ))
            events.sort()
            level = 0.0
            for _time, delta in events:
                level += delta
                assert level <= 1.0 + 1e-6

    def test_every_iteration_monotone_in_time(self):
        _, result = _fig6_style(SwitchFlowPolicy, seed=9)
        for stats in result.stats.values():
            spans = stats.iteration_spans
            # Pairwise window: the off-by-one zip is intentional.
            for (start_a, end_a), (start_b, _end_b) in zip(spans, spans[1:],
                                                           strict=False):
                assert end_a <= start_b + 1e-9
                assert start_a <= end_a

    def test_preempted_work_is_conserved(self):
        """An aborted+resumed iteration executes every node exactly once
        across its runs (no lost work, Section 3.3)."""
        ctx = make_context(two_gpu_server, seed=4)
        fast = max(ctx.machine.gpus,
                   key=lambda g: g.spec.peak_fp32_tflops)
        victim = JobHandle(name="victim", model=get_model("ResNet50"),
                           batch=32, training=True, priority=PRIORITY_LOW,
                           preferred_device=fast.name)
        preemptor = JobHandle(name="high", model=get_model("ResNet50"),
                              batch=32, training=True,
                              priority=PRIORITY_HIGH,
                              preferred_device=fast.name)
        run_colocation(ctx, SwitchFlowPolicy, [
            JobSpec(job=victim, iterations=6),
            JobSpec(job=preemptor, iterations=6, start_delay_ms=450.0),
        ])
        assert victim.stats.iterations == 6
        assert preemptor.stats.iterations == 6
        # Victim's kernels ran on both GPUs (work split by migration).
        contexts_by_gpu = {
            gpu.name: {s.meta.get("context") for s in ctx.tracer.spans
                       if s.lane == gpu.lane}
            for gpu in ctx.machine.gpus
        }
        assert any("victim" in seen for seen in contexts_by_gpu.values())
        if victim.stats.preemptions:
            assert sum("victim" in seen
                       for seen in contexts_by_gpu.values()) == 2
