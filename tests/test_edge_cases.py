"""Edge cases and failure injection across the scheduling stack."""

import pytest

from repro.baselines import SessionTimeSlicing
from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SwitchFlowPolicy,
    make_context,
)
from repro.hw import GTX_1080_TI, single_gpu_server, v100_server
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation


def _job(ctx, name, model="MobileNetV2", batch=8, training=True,
         priority=PRIORITY_LOW):
    return JobHandle(name=name, model=get_model(model), batch=batch,
                     training=training, priority=priority,
                     preferred_device=ctx.machine.gpu(0).name)


class TestTimeSlicingExclusivity:
    def test_slice_covers_prefetch_no_cross_job_cpu_overlap(self):
        """Strict exclusivity: while job A holds the slice, job B's
        preprocessing must not run (its chunks start after A's slice)."""
        ctx = make_context(v100_server, 1, seed=6)
        jobs = [_job(ctx, f"job{i}", model="ResNet50", batch=32)
                for i in range(2)]
        run_colocation(ctx, SessionTimeSlicing, [
            JobSpec(job=job, iterations=4) for job in jobs])
        chunk_spans = [
            (s.start, s.end, s.meta.get("context"))
            for s in ctx.tracer.spans
            if s.lane.startswith("cpu") and "chunk" in s.name]
        for i, (start_a, end_a, ctx_a) in enumerate(chunk_spans):
            for start_b, end_b, ctx_b in chunk_spans[i + 1:]:
                if ctx_a != ctx_b:
                    overlap = min(end_a, end_b) - max(start_a, start_b)
                    assert overlap <= 1e-9, (ctx_a, ctx_b)


class TestSwitchFlowEdgeCases:
    def test_three_way_priority_preemption_chain(self):
        """Mid arrives and preempts low; high arrives and preempts mid."""
        ctx = make_context(v100_server, 2, seed=6)
        gpu = ctx.machine.gpu(0).name
        low = JobHandle(name="low", model=get_model("ResNet50"),
                        batch=32, training=True, priority=20,
                        preferred_device=gpu)
        mid = JobHandle(name="mid", model=get_model("ResNet50"),
                        batch=32, training=True, priority=10,
                        preferred_device=gpu)
        high = JobHandle(name="high", model=get_model("ResNet50"),
                         batch=32, training=True, priority=0,
                         preferred_device=gpu)
        results = run_colocation(ctx, SwitchFlowPolicy, [
            JobSpec(job=low, iterations=100_000, background=True),
            JobSpec(job=mid, iterations=100_000, background=True,
                    start_delay_ms=400.0),
            JobSpec(job=high, iterations=6, start_delay_ms=900.0),
        ])
        assert not results.crashed_jobs()
        assert high.stats.iterations == 6
        # Every job kept making progress somewhere.
        assert low.stats.iterations > 0
        assert mid.stats.iterations > 0

    def test_inference_job_can_be_victim_too(self):
        """Preemption works when the low-priority job is inference."""
        ctx = make_context(v100_server, 2, seed=6)
        gpu = ctx.machine.gpu(0).name
        low_infer = JobHandle(
            name="low-infer", model=get_model("ResNet50"), batch=128,
            training=False, priority=PRIORITY_LOW, preferred_device=gpu)
        high_train = JobHandle(
            name="high-train", model=get_model("ResNet50"), batch=32,
            training=True, priority=PRIORITY_HIGH, preferred_device=gpu)
        results = run_colocation(ctx, SwitchFlowPolicy, [
            JobSpec(job=low_infer, iterations=100_000, background=True),
            JobSpec(job=high_train, iterations=5, start_delay_ms=600.0),
        ])
        assert not results.crashed_jobs()
        assert high_train.stats.iterations == 5

    def test_many_jobs_one_gpu_all_make_progress(self):
        ctx = make_context(v100_server, 1, seed=6)
        jobs = [_job(ctx, f"job{i}") for i in range(4)]
        run_colocation(ctx, SwitchFlowPolicy, [
            JobSpec(job=job, iterations=3) for job in jobs])
        assert all(job.stats.iterations == 3 for job in jobs)

    def test_oom_victim_under_switchflow_survives_serially(self):
        """Two models whose SUM exceeds memory still both run under
        SwitchFlow because executors never overlap (Section 3.4)."""
        ctx = make_context(single_gpu_server, GTX_1080_TI, seed=6)
        jobs = [
            JobHandle(name=f"vgg{i}", model=get_model("VGG16"), batch=32,
                      training=True,
                      preferred_device=ctx.machine.gpu(0).name)
            for i in range(2)
        ]
        results = run_colocation(ctx, SwitchFlowPolicy, [
            JobSpec(job=job, iterations=3) for job in jobs])
        assert not results.crashed_jobs()
        assert all(job.stats.iterations == 3 for job in jobs)


class TestAblationHooks:
    def test_cpu_fallback_disabled_keeps_victim_on_gpu(self):
        ctx = make_context(v100_server, 1, seed=6)
        gpu = ctx.machine.gpu(0).name
        victim = JobHandle(name="victim", model=get_model("ResNet50"),
                           batch=32, training=True,
                           priority=PRIORITY_LOW, preferred_device=gpu)
        high = JobHandle(name="high", model=get_model("ResNet50"),
                         batch=32, training=True,
                         priority=PRIORITY_HIGH, preferred_device=gpu)
        run_colocation(
            ctx, lambda c: SwitchFlowPolicy(c, allow_cpu_fallback=False),
            [JobSpec(job=victim, iterations=100_000, background=True),
             JobSpec(job=high, iterations=5, start_delay_ms=500.0)])
        assert victim.assigned_device == gpu
        assert high.stats.iterations == 5

    def test_temporary_pool_size_scales_victim_speed(self):
        from repro.experiments.ablations import _single_gpu_preemption

        slow_ctx, slow_victim, _ = _single_gpu_preemption(
            seed=6, temporary_workers=1, high_iterations=25)
        fast_ctx, fast_victim, _ = _single_gpu_preemption(
            seed=6, temporary_workers=8, high_iterations=25)
        if (slow_victim.assigned_device
                == slow_ctx.machine.cpu.name
                == fast_victim.assigned_device):
            assert fast_victim.stats.throughput_after(500.0) > \
                slow_victim.stats.throughput_after(500.0)
