"""Arrival-trace generators: determinism, prefixes, stream isolation."""

import pytest

from repro.serving import arrivals
from repro.serving.arrivals import (
    ArrivalTrace,
    bursty_trace,
    diurnal_trace,
    make_trace,
    poisson_trace,
)
from repro.sim.rng import RngRegistry

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the image
    HAVE_HYPOTHESIS = False


def rng(seed=0):
    return RngRegistry(seed)


class TestBasics:
    @pytest.mark.parametrize("kind", arrivals.KINDS)
    def test_times_sorted_and_in_horizon(self, kind):
        trace = make_trace(rng(), "t", kind, 50.0, 5_000.0)
        assert list(trace.times_ms) == sorted(trace.times_ms)
        assert all(0.0 <= t < 5_000.0 for t in trace.times_ms)

    @pytest.mark.parametrize("kind", arrivals.KINDS)
    def test_mean_rate_near_nominal(self, kind):
        trace = make_trace(rng(), "t", kind, 50.0, 20_000.0)
        # Bursty adds extra arrivals on top of the base process, so its
        # realized mean runs above nominal; the others should be close.
        if kind == "bursty":
            assert trace.mean_rate_rps > 40.0
        else:
            assert trace.mean_rate_rps == pytest.approx(50.0, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(rng(), "t", 0.0, 1_000.0)
        with pytest.raises(ValueError):
            poisson_trace(rng(), "t", 10.0, 0.0)
        with pytest.raises(ValueError):
            make_trace(rng(), "t", "nonesuch", 10.0, 1_000.0)
        with pytest.raises(ValueError):
            diurnal_trace(rng(), "t", 10.0, 1_000.0, amplitude=1.5)


class TestDeterminism:
    @pytest.mark.parametrize("kind", arrivals.KINDS)
    def test_same_seed_same_trace(self, kind):
        a = make_trace(rng(3), "t", kind, 40.0, 4_000.0)
        b = make_trace(rng(3), "t", kind, 40.0, 4_000.0)
        assert a.times_ms == b.times_ms

    @pytest.mark.parametrize("kind", arrivals.KINDS)
    def test_different_seeds_differ(self, kind):
        a = make_trace(rng(3), "t", kind, 40.0, 4_000.0)
        b = make_trace(rng(4), "t", kind, 40.0, 4_000.0)
        assert a.times_ms != b.times_ms

    def test_named_streams_isolated(self):
        # Drawing one trace must not perturb another name's stream —
        # and the trace must not depend on *when* its stream is used.
        registry = rng(5)
        first = poisson_trace(registry, "alpha", 40.0, 4_000.0)
        poisson_trace(registry, "beta", 90.0, 4_000.0)
        again = poisson_trace(rng(5), "alpha", 40.0, 4_000.0)
        assert first.times_ms == again.times_ms

    def test_trace_independent_of_batch_parameters(self):
        # The trace is materialized from its own stream before any
        # front-end config applies: batching/queue knobs can never
        # shift arrival times (batch-size invariance by construction).
        trace = poisson_trace(rng(1), "t", 40.0, 4_000.0)
        assert isinstance(trace, ArrivalTrace)
        same = poisson_trace(rng(1), "t", 40.0, 4_000.0)
        assert trace.times_ms == same.times_ms

    def test_poisson_prefix_property(self):
        # A shorter horizon yields a prefix of the longer trace: the
        # generator draws gaps sequentially in time.
        long = poisson_trace(rng(2), "t", 40.0, 8_000.0)
        short = poisson_trace(rng(2), "t", 40.0, 2_000.0)
        prefix = tuple(t for t in long.times_ms if t < 2_000.0)
        assert short.times_ms == prefix

    def test_diurnal_prefix_property(self):
        long = diurnal_trace(rng(2), "t", 40.0, 8_000.0)
        short = diurnal_trace(rng(2), "t", 40.0, 2_000.0)
        prefix = tuple(t for t in long.times_ms if t < 2_000.0)
        assert short.times_ms == prefix

    def test_bursty_base_stable_under_burst_params(self):
        # The burst windows draw from a separate derived stream, so
        # changing burst parameters never shifts the base arrivals.
        plain = bursty_trace(rng(6), "t", 40.0, 4_000.0,
                             burst_factor=1.0)
        heavy = bursty_trace(rng(6), "t", 40.0, 4_000.0,
                             burst_factor=5.0)
        assert set(plain.times_ms) <= set(heavy.times_ms)


if HAVE_HYPOTHESIS:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**20),
           rate=st.floats(5.0, 200.0),
           kind=st.sampled_from(arrivals.KINDS))
    def test_property_deterministic_per_seed(seed, rate, kind):
        a = make_trace(rng(seed), "t", kind, rate, 2_000.0)
        b = make_trace(rng(seed), "t", kind, rate, 2_000.0)
        assert a.times_ms == b.times_ms
        assert list(a.times_ms) == sorted(a.times_ms)
        assert all(0.0 <= t < 2_000.0 for t in a.times_ms)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**20),
           cut=st.floats(100.0, 1_900.0))
    def test_property_poisson_prefix(seed, cut):
        long = poisson_trace(rng(seed), "t", 60.0, 2_000.0)
        short = poisson_trace(rng(seed), "t", 60.0, cut)
        assert short.times_ms == tuple(
            t for t in long.times_ms if t < cut)
