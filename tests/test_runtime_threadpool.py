"""Tests for the worker thread pool: dispatch, stealing, cancellation."""

import pytest

from repro.hw import CpuDevice, XEON_DUAL_18C
from repro.runtime import Task, ThreadPool
from repro.sim import Engine, RngRegistry


@pytest.fixture
def pool_setup():
    engine = Engine()
    cpu = CpuDevice(engine, XEON_DUAL_18C)
    pool = ThreadPool(engine, cpu, n_workers=4, name="test",
                      rng=RngRegistry(0))
    return engine, cpu, pool


def make_task(engine, cpu, log, name, cost=1.0, job="j"):
    def body(worker):
        yield from cpu.execute(cost, label=name)
        log.append((engine.now, name, worker.index))

    return Task(name=name, job=job, body=body)


def test_tasks_execute_and_complete(pool_setup):
    engine, cpu, pool = pool_setup
    log = []
    for index in range(8):
        pool.submit(make_task(engine, cpu, log, f"t{index}"))
    engine.run()
    assert len(log) == 8
    # 8 tasks of 1 ms on 4 workers -> two waves.
    assert engine.now == pytest.approx(2.0)


def test_submit_prefers_idle_workers(pool_setup):
    engine, cpu, pool = pool_setup
    log = []
    for index in range(4):
        pool.submit(make_task(engine, cpu, log, f"t{index}"))
    engine.run()
    assert {entry[2] for entry in log} == {0, 1, 2, 3}


def test_submit_many_round_robins(pool_setup):
    engine, cpu, pool = pool_setup
    log = []
    pool.submit_many([make_task(engine, cpu, log, f"t{i}")
                      for i in range(4)])
    assert all(len(w.local) == 1 for w in pool.workers)
    engine.run()
    assert len(log) == 4


def test_cancel_removes_queued_tasks(pool_setup):
    engine, cpu, pool = pool_setup
    log = []
    # Saturate all workers with long tasks, then queue victims.
    for index in range(4):
        pool.submit(make_task(engine, cpu, log, f"long{index}", cost=10.0))
    victims = [make_task(engine, cpu, log, f"victim{i}", job="victim")
               for i in range(3)]
    pool.submit_many(victims)
    engine.run(until=1.0)
    cancelled = pool.cancel(lambda task: task.job == "victim")
    assert cancelled == 3
    engine.run()
    names = {entry[1] for entry in log}
    assert not any(name.startswith("victim") for name in names)
    assert len(names) == 4


def test_cancel_cannot_stop_running_task(pool_setup):
    engine, cpu, pool = pool_setup
    log = []
    pool.submit(make_task(engine, cpu, log, "running", cost=10.0,
                          job="victim"))
    engine.run(until=1.0)
    assert pool.cancel(lambda task: task.job == "victim") == 0
    engine.run()
    assert log  # it drained to completion


def test_work_stealing_balances_load(pool_setup):
    engine, cpu, pool = pool_setup
    log = []
    # Pile every task on one worker's local queue; idle peers steal.
    tasks = [make_task(engine, cpu, log, f"t{i}") for i in range(8)]
    for task in tasks:
        pool.workers[0].push_back(task)
    engine.run()
    assert len(log) == 8
    assert engine.now < 8.0     # strictly better than serial
    assert sum(worker.steals for worker in pool.workers) > 0


def test_push_front_places_task_at_queue_head(pool_setup):
    engine, cpu, pool = pool_setup
    log = []
    worker = pool.workers[0]
    worker.push_back(make_task(engine, cpu, log, "back"))
    worker.push_front(make_task(engine, cpu, log, "front"))
    assert [task.name for task in worker.local] == ["front", "back"]
    engine.run()
    assert len(log) == 2


def test_shutdown_interrupts_sleeping_workers(pool_setup):
    engine, cpu, pool = pool_setup
    engine.run()
    pool.shutdown()
    engine.run()
    assert all(not worker.process.is_alive for worker in pool.workers)


def test_zero_workers_rejected(pool_setup):
    engine, cpu, _pool = pool_setup
    with pytest.raises(ValueError):
        ThreadPool(engine, cpu, 0)
