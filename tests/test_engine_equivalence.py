"""Fast-path vs legacy engine equivalence.

The two-lane agenda (``Engine(fast_path=True)``) was introduced as a
pure optimisation over the legacy loop, with the legacy path kept as
the semantic baseline — but the equivalence was never tested. These
tests run the *same* workload under both agenda implementations and
require bit-identical observable behaviour: execution log, final
clock, trace rows and run-log records.
"""

import pytest

from repro.baselines import MultiThreadedTF
from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    make_context,
)
from repro.core.switchflow import SwitchFlowPolicy
from repro.faults import FaultPlan
from repro.hw import v100_server
from repro.models import get_model
from repro.sim import Engine
from repro.workloads import JobSpec, run_colocation

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the image
    HAVE_HYPOTHESIS = False


# ---------------------------------------------------------------------------
# Randomized micro-workloads straight on the engine
# ---------------------------------------------------------------------------
def run_program(fast_path, program):
    """Execute a little process zoo; return the observable transcript.

    ``program`` is a list of per-process instruction lists; each
    instruction is ``(delay, signal_index)`` — wait ``delay`` ms, then
    (optionally) succeed a shared event that other processes may be
    waiting on. ``signal_index`` may also be ``None`` (pure timeout) or
    negative (wait on event ``-signal_index - 1`` instead of timing
    out), which exercises the immediate-FIFO lane against the heap.
    """
    engine = Engine(fast_path=fast_path)
    n_events = len(program)
    events = [engine.event() for _ in range(n_events)]
    log = []

    def proc(pid, instructions):
        for step, (delay, signal) in enumerate(instructions):
            if signal is not None and signal < 0:
                target = events[(-signal - 1) % n_events]
                if not target.triggered:
                    yield target
            else:
                yield engine.timeout(delay)
                if signal is not None:
                    event = events[signal % n_events]
                    if not event.triggered:
                        event.succeed(value=pid)
            log.append((engine.now, pid, step))

    processes = [engine.process(proc(pid, instructions), name=f"p{pid}")
                 for pid, instructions in enumerate(program)]
    # Not every process terminates (a wait on an event nobody fires);
    # run to quiescence with a horizon instead of joining them all.
    engine.run(until=engine.any_of([engine.all_of(processes),
                                    engine.timeout(1e6)]))
    return log, engine.now


instruction = st.tuples(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False,
              allow_infinity=False),
    st.one_of(st.none(), st.integers(min_value=-8, max_value=8)),
) if HAVE_HYPOTHESIS else None


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(instruction, max_size=6), min_size=1,
                max_size=5))
def test_fast_and_legacy_agendas_are_equivalent(program):
    fast = run_program(True, program)
    legacy = run_program(False, program)
    assert fast == legacy


def test_fixed_program_equivalence():
    # Deterministic fallback covering the same ground as the property
    # test: ties at one timestamp, immediate wakeups, and waits on
    # events fired by other processes.
    program = [
        [(0.0, 1), (5.0, None), (0.0, 2)],
        [(0.0, -1), (0.0, 0)],
        [(5.0, None), (0.0, -3), (1.0, None)],
        [(0.0, -2), (2.0, 1)],
    ]
    assert run_program(True, program) == run_program(False, program)


# ---------------------------------------------------------------------------
# Full simulation runs
# ---------------------------------------------------------------------------
def colocation_transcript(fast_path, policy_factory, jobs, seed):
    ctx = make_context(v100_server, 2, seed=seed, fast_path=fast_path)
    gpu = ctx.machine.gpu(0).name
    specs = [
        JobSpec(job=JobHandle(name=name, model=get_model(model),
                              batch=batch, training=training,
                              priority=priority, preferred_device=gpu),
                iterations=iterations, start_delay_ms=delay)
        for name, model, batch, training, priority, iterations, delay
        in jobs]
    result = run_colocation(ctx, policy_factory, specs)
    stats = {name: (s.iterations, tuple(s.iteration_times_ms), s.crashed)
             for name, s in result.stats.items()}
    return (ctx.tracer.to_rows(), ctx.runlog.records, ctx.engine.now,
            stats)


WORKLOADS = {
    "multithreaded": (MultiThreadedTF, [
        ("a", "MobileNetV2", 8, True, PRIORITY_LOW, 3, 0.0),
        ("b", "ResNet50", 8, False, PRIORITY_LOW, 3, 10.0),
    ]),
    "switchflow-preempting": (SwitchFlowPolicy, [
        ("bg", "ResNet50", 8, True, PRIORITY_LOW, 4, 0.0),
        ("fg", "MobileNetV2", 8, False, PRIORITY_HIGH, 3, 30.0),
    ]),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", [3, 11])
def test_colocation_identical_under_both_agendas(workload, seed):
    policy_factory, jobs = WORKLOADS[workload]
    fast = colocation_transcript(True, policy_factory, jobs, seed)
    legacy = colocation_transcript(False, policy_factory, jobs, seed)
    assert fast[2] == legacy[2]          # final clock
    assert fast[0] == legacy[0]          # every trace span, in order
    assert fast[1] == legacy[1]          # every run-log record
    assert fast[3] == legacy[3]          # per-job stats


# ---------------------------------------------------------------------------
# Fault injection must preserve the equivalence: the injector draws
# from named RNG streams at hook sites, and site call order is part of
# the engine transcript — so an identical FaultPlan + seed must break
# things identically under both agendas.
# ---------------------------------------------------------------------------
def faulted_transcript(fast_path, plan_payload, seed):
    plan = FaultPlan.from_dict(plan_payload)
    ctx = make_context(v100_server, 2, seed=seed, fast_path=fast_path,
                       fault_plan=plan)
    gpu = ctx.machine.gpu(0).name
    specs = [
        JobSpec(job=JobHandle(name="bg", model=get_model("ResNet50"),
                              batch=8, training=True,
                              priority=PRIORITY_LOW,
                              preferred_device=gpu),
                iterations=4),
        JobSpec(job=JobHandle(name="fg", model=get_model("MobileNetV2"),
                              batch=8, training=False,
                              priority=PRIORITY_HIGH,
                              preferred_device=gpu),
                iterations=3, start_delay_ms=30.0),
    ]
    result = run_colocation(ctx, SwitchFlowPolicy, specs)
    stats = {name: (s.iterations, tuple(s.iteration_times_ms), s.crashed)
             for name, s in result.stats.items()}
    return (ctx.tracer.to_rows(), ctx.runlog.records, ctx.engine.now,
            stats)


FAULT_PLANS = {
    "mixed": {
        "faults": [
            {"kind": "kernel_slowdown", "trigger": {"every_n": 9},
             "factor": 1.5},
            {"kind": "kernel_stall", "trigger": {"probability": 0.05},
             "stall_ms": 1.0},
            {"kind": "transfer_fail", "trigger": {"probability": 0.5}},
            {"kind": "device_oom", "trigger": {"at_ms": 120.0},
             "fraction": 0.9, "duration_ms": 40.0},
            {"kind": "spurious_preempt", "trigger": {"every_ms": 90.0}},
            {"kind": "job_crash", "trigger": {"probability": 0.03}},
        ],
    },
    "crash-on-preempt": {
        "faults": [{"kind": "job_crash", "trigger": {"probability": 1.0},
                    "on": "preempt"}],
        "recovery": {"checkpoint_interval": 2, "restart_delay_ms": 5.0},
    },
}


@pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize("seed", [3, 11])
def test_faulted_colocation_identical_under_both_agendas(plan_name,
                                                         seed):
    payload = FAULT_PLANS[plan_name]
    fast = faulted_transcript(True, payload, seed)
    legacy = faulted_transcript(False, payload, seed)
    assert fast[2] == legacy[2]          # final clock
    assert fast[0] == legacy[0]          # every trace span, in order
    assert fast[1] == legacy[1]          # every run-log record
    assert fast[3] == legacy[3]          # per-job stats


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
@settings(max_examples=8, deadline=None)
@given(
    stall_p=st.floats(min_value=0.0, max_value=0.2),
    slowdown_n=st.integers(min_value=3, max_value=40),
    transfer_p=st.floats(min_value=0.0, max_value=1.0),
    preempt_ms=st.floats(min_value=40.0, max_value=400.0),
    crash_on_preempt=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_fault_plans_preserve_equivalence(stall_p, slowdown_n,
                                                 transfer_p, preempt_ms,
                                                 crash_on_preempt, seed):
    payload = {
        "faults": [
            {"kind": "kernel_stall", "trigger": {"probability": stall_p},
             "stall_ms": 1.0},
            {"kind": "kernel_slowdown",
             "trigger": {"every_n": slowdown_n}, "factor": 1.5},
            {"kind": "transfer_fail",
             "trigger": {"probability": transfer_p}},
            {"kind": "spurious_preempt",
             "trigger": {"every_ms": preempt_ms}},
            {"kind": "job_crash", "trigger": {"probability": 1.0},
             "on": "preempt"} if crash_on_preempt else
            {"kind": "job_crash", "trigger": {"probability": 0.02}},
        ],
        "recovery": {"restart_delay_ms": 5.0},
    }
    assert faulted_transcript(True, payload, seed) \
        == faulted_transcript(False, payload, seed)
