"""Three-way engine-core equivalence: legacy == two-lane == array.

The two-lane agenda was introduced as a pure optimisation over the
legacy loop; the array-structured core replaced it as the default.
Both optimised cores keep the legacy path as the semantic baseline —
so these tests run the *same* workload under all three agenda
implementations and require bit-identical observable behaviour:
execution log, final clock, trace rows and run-log records.
"""

import pytest

from repro.baselines import MultiThreadedTF
from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    make_context,
)
from repro.core.switchflow import SwitchFlowPolicy
from repro.faults import FaultPlan
from repro.hw import v100_server
from repro.models import get_model
from repro.sim import Engine
from repro.sim.engine import CORES
from repro.workloads import JobSpec, run_colocation

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the image
    HAVE_HYPOTHESIS = False


# ---------------------------------------------------------------------------
# Randomized micro-workloads straight on the engine
# ---------------------------------------------------------------------------
def run_program(core, program):
    """Execute a little process zoo; return the observable transcript.

    ``program`` is a list of per-process instruction lists; each
    instruction is ``(delay, signal_index)`` — wait ``delay`` ms, then
    (optionally) succeed a shared event that other processes may be
    waiting on. ``signal_index`` may also be ``None`` (pure timeout) or
    negative (wait on event ``-signal_index - 1`` instead of timing
    out), which exercises the immediate-FIFO lane against the heap.
    """
    engine = Engine(core=core)
    n_events = len(program)
    events = [engine.event() for _ in range(n_events)]
    log = []

    def proc(pid, instructions):
        for step, (delay, signal) in enumerate(instructions):
            if signal is not None and signal < 0:
                target = events[(-signal - 1) % n_events]
                if not target.triggered:
                    yield target
            else:
                yield engine.timeout(delay)
                if signal is not None:
                    event = events[signal % n_events]
                    if not event.triggered:
                        event.succeed(value=pid)
            log.append((engine.now, pid, step))

    processes = [engine.process(proc(pid, instructions), name=f"p{pid}")
                 for pid, instructions in enumerate(program)]
    # Not every process terminates (a wait on an event nobody fires);
    # run to quiescence with a horizon instead of joining them all.
    engine.run(until=engine.any_of([engine.all_of(processes),
                                    engine.timeout(1e6)]))
    return log, engine.now


instruction = st.tuples(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False,
              allow_infinity=False),
    st.one_of(st.none(), st.integers(min_value=-8, max_value=8)),
) if HAVE_HYPOTHESIS else None


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(instruction, max_size=6), min_size=1,
                max_size=5))
def test_all_three_agendas_are_equivalent(program):
    transcripts = {core: run_program(core, program) for core in CORES}
    assert transcripts["array"] == transcripts["legacy"]
    assert transcripts["twolane"] == transcripts["legacy"]


def test_fixed_program_equivalence():
    # Deterministic fallback covering the same ground as the property
    # test: ties at one timestamp, immediate wakeups, and waits on
    # events fired by other processes.
    program = [
        [(0.0, 1), (5.0, None), (0.0, 2)],
        [(0.0, -1), (0.0, 0)],
        [(5.0, None), (0.0, -3), (1.0, None)],
        [(0.0, -2), (2.0, 1)],
    ]
    baseline = run_program("legacy", program)
    assert run_program("array", program) == baseline
    assert run_program("twolane", program) == baseline


# ---------------------------------------------------------------------------
# Full simulation runs
# ---------------------------------------------------------------------------
def colocation_transcript(core, policy_factory, jobs, seed):
    ctx = make_context(v100_server, 2, seed=seed, core=core)
    gpu = ctx.machine.gpu(0).name
    specs = [
        JobSpec(job=JobHandle(name=name, model=get_model(model),
                              batch=batch, training=training,
                              priority=priority, preferred_device=gpu),
                iterations=iterations, start_delay_ms=delay)
        for name, model, batch, training, priority, iterations, delay
        in jobs]
    result = run_colocation(ctx, policy_factory, specs)
    stats = {name: (s.iterations, tuple(s.iteration_times_ms), s.crashed)
             for name, s in result.stats.items()}
    return (ctx.tracer.to_rows(), ctx.runlog.records, ctx.engine.now,
            stats)


WORKLOADS = {
    "multithreaded": (MultiThreadedTF, [
        ("a", "MobileNetV2", 8, True, PRIORITY_LOW, 3, 0.0),
        ("b", "ResNet50", 8, False, PRIORITY_LOW, 3, 10.0),
    ]),
    "switchflow-preempting": (SwitchFlowPolicy, [
        ("bg", "ResNet50", 8, True, PRIORITY_LOW, 4, 0.0),
        ("fg", "MobileNetV2", 8, False, PRIORITY_HIGH, 3, 30.0),
    ]),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", [3, 11])
def test_colocation_identical_under_all_agendas(workload, seed):
    policy_factory, jobs = WORKLOADS[workload]
    legacy = colocation_transcript("legacy", policy_factory, jobs, seed)
    for core in ("array", "twolane"):
        other = colocation_transcript(core, policy_factory, jobs, seed)
        assert other[2] == legacy[2], core   # final clock
        assert other[0] == legacy[0], core   # every trace span, in order
        assert other[1] == legacy[1], core   # every run-log record
        assert other[3] == legacy[3], core   # per-job stats


# ---------------------------------------------------------------------------
# Fault injection must preserve the equivalence: the injector draws
# from named RNG streams at hook sites, and site call order is part of
# the engine transcript — so an identical FaultPlan + seed must break
# things identically under every agenda.
# ---------------------------------------------------------------------------
def faulted_transcript(core, plan_payload, seed):
    plan = FaultPlan.from_dict(plan_payload)
    ctx = make_context(v100_server, 2, seed=seed, core=core,
                       fault_plan=plan)
    gpu = ctx.machine.gpu(0).name
    specs = [
        JobSpec(job=JobHandle(name="bg", model=get_model("ResNet50"),
                              batch=8, training=True,
                              priority=PRIORITY_LOW,
                              preferred_device=gpu),
                iterations=4),
        JobSpec(job=JobHandle(name="fg", model=get_model("MobileNetV2"),
                              batch=8, training=False,
                              priority=PRIORITY_HIGH,
                              preferred_device=gpu),
                iterations=3, start_delay_ms=30.0),
    ]
    result = run_colocation(ctx, SwitchFlowPolicy, specs)
    stats = {name: (s.iterations, tuple(s.iteration_times_ms), s.crashed)
             for name, s in result.stats.items()}
    return (ctx.tracer.to_rows(), ctx.runlog.records, ctx.engine.now,
            stats)


FAULT_PLANS = {
    "mixed": {
        "faults": [
            {"kind": "kernel_slowdown", "trigger": {"every_n": 9},
             "factor": 1.5},
            {"kind": "kernel_stall", "trigger": {"probability": 0.05},
             "stall_ms": 1.0},
            {"kind": "transfer_fail", "trigger": {"probability": 0.5}},
            {"kind": "device_oom", "trigger": {"at_ms": 120.0},
             "fraction": 0.9, "duration_ms": 40.0},
            {"kind": "spurious_preempt", "trigger": {"every_ms": 90.0}},
            {"kind": "job_crash", "trigger": {"probability": 0.03}},
        ],
    },
    "crash-on-preempt": {
        "faults": [{"kind": "job_crash", "trigger": {"probability": 1.0},
                    "on": "preempt"}],
        "recovery": {"checkpoint_interval": 2, "restart_delay_ms": 5.0},
    },
}


@pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize("seed", [3, 11])
def test_faulted_colocation_identical_under_all_agendas(plan_name,
                                                        seed):
    payload = FAULT_PLANS[plan_name]
    legacy = faulted_transcript("legacy", payload, seed)
    for core in ("array", "twolane"):
        other = faulted_transcript(core, payload, seed)
        assert other[2] == legacy[2], core   # final clock
        assert other[0] == legacy[0], core   # every trace span, in order
        assert other[1] == legacy[1], core   # every run-log record
        assert other[3] == legacy[3], core   # per-job stats


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
@settings(max_examples=8, deadline=None)
@given(
    stall_p=st.floats(min_value=0.0, max_value=0.2),
    slowdown_n=st.integers(min_value=3, max_value=40),
    transfer_p=st.floats(min_value=0.0, max_value=1.0),
    preempt_ms=st.floats(min_value=40.0, max_value=400.0),
    crash_on_preempt=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_fault_plans_preserve_equivalence(stall_p, slowdown_n,
                                                 transfer_p, preempt_ms,
                                                 crash_on_preempt, seed):
    payload = {
        "faults": [
            {"kind": "kernel_stall", "trigger": {"probability": stall_p},
             "stall_ms": 1.0},
            {"kind": "kernel_slowdown",
             "trigger": {"every_n": slowdown_n}, "factor": 1.5},
            {"kind": "transfer_fail",
             "trigger": {"probability": transfer_p}},
            {"kind": "spurious_preempt",
             "trigger": {"every_ms": preempt_ms}},
            {"kind": "job_crash", "trigger": {"probability": 1.0},
             "on": "preempt"} if crash_on_preempt else
            {"kind": "job_crash", "trigger": {"probability": 0.02}},
        ],
        "recovery": {"restart_delay_ms": 5.0},
    }
    legacy = faulted_transcript("legacy", payload, seed)
    assert faulted_transcript("array", payload, seed) == legacy
    assert faulted_transcript("twolane", payload, seed) == legacy


# ---------------------------------------------------------------------------
# Two-node cluster workloads: the topology layer (multi-hop routes,
# route-cost migration targets, cross-node state transfers) must be as
# core-independent as everything below it. Preemptions here force both
# same-node and cross-node migrations into the transcript.
# ---------------------------------------------------------------------------
def cluster_transcript(core, seed, fg_delays=(500.0, 520.0),
                       fault_payload=None):
    from repro.hw import v100_cluster

    plan = (FaultPlan.from_dict(fault_payload)
            if fault_payload is not None else None)
    ctx = make_context(v100_cluster, 2, 2, seed=seed, core=core,
                       fault_plan=plan)
    machine = ctx.machine
    specs = [
        JobSpec(job=JobHandle(name=f"bg{i}", model=get_model("ResNet50"),
                              batch=16, training=True,
                              priority=PRIORITY_LOW,
                              preferred_device=gpu.name),
                iterations=100_000, background=True)
        for i, gpu in enumerate(machine.gpus)
    ] + [
        JobSpec(job=JobHandle(name=f"fg{i}", model=get_model("MobileNetV2"),
                              batch=1, training=False,
                              priority=PRIORITY_HIGH,
                              preferred_device=machine.gpus[i].name),
                iterations=3, start_delay_ms=delay)
        for i, delay in enumerate(fg_delays)]
    result = run_colocation(ctx, SwitchFlowPolicy, specs)
    stats = {name: (s.iterations, tuple(s.iteration_times_ms), s.crashed)
             for name, s in result.stats.items()}
    return (ctx.tracer.to_rows(), ctx.runlog.records, ctx.engine.now,
            stats)


@pytest.mark.parametrize("seed", [3, 17])
def test_cluster_colocation_identical_under_all_agendas(seed):
    legacy = cluster_transcript("legacy", seed)
    # The scenario must actually exercise the topology layer: at least
    # one multi-hop (cross-node) state transfer in the run log.
    assert any(r.get("hops", 0) > 1 for r in legacy[1]
               if r.get("event") == "state_transfer_start")
    for core in ("array", "twolane"):
        other = cluster_transcript(core, seed)
        assert other[2] == legacy[2], core   # final clock
        assert other[0] == legacy[0], core   # every trace span, in order
        assert other[1] == legacy[1], core   # every run-log record
        assert other[3] == legacy[3], core   # per-job stats


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    delay0=st.floats(min_value=0.0, max_value=800.0),
    gap=st.floats(min_value=0.0, max_value=200.0),
    transfer_p=st.floats(min_value=0.0, max_value=0.6),
    preempt_ms=st.floats(min_value=80.0, max_value=600.0),
)
def test_random_cluster_workloads_preserve_equivalence(seed, delay0, gap,
                                                       transfer_p,
                                                       preempt_ms):
    payload = {
        "faults": [
            {"kind": "transfer_fail",
             "trigger": {"probability": transfer_p}},
            {"kind": "spurious_preempt",
             "trigger": {"every_ms": preempt_ms}},
        ],
        "recovery": {"restart_delay_ms": 5.0},
    }
    delays = (delay0, delay0 + gap)
    legacy = cluster_transcript("legacy", seed, fg_delays=delays,
                                fault_payload=payload)
    assert cluster_transcript("array", seed, fg_delays=delays,
                              fault_payload=payload) == legacy
    assert cluster_transcript("twolane", seed, fg_delays=delays,
                              fault_payload=payload) == legacy


# ---------------------------------------------------------------------------
# Array-core internals: the calendar/bucket agenda, the double-buffered
# immediate lane and the pooled Timeout path have edge cases (growth,
# wraparound, re-entry) that generic workloads may not hit reliably.
# ---------------------------------------------------------------------------
class TestArrayCoreEdges:

    def test_event_storm_grows_past_initial_capacity(self):
        # Thousands of same-time events force every pooled list to grow
        # far beyond its recycled capacity; ordering must stay schedule
        # order within each lane.
        engine = Engine(core="array")
        log = []
        for index in range(5000):
            engine.timeout(1.0).callbacks.append(
                lambda _e, i=index: log.append(i))
        engine.run()
        assert log == list(range(5000))
        assert engine.now == 1.0

    def test_immediate_lane_swap_cycling_with_interleaved_appends(self):
        # Each callback appends a new immediate event, forcing repeated
        # append-buffer/drain-buffer swaps while both buffers are live.
        # The drain order must match the legacy heap bit for bit.
        def run(core):
            engine = Engine(core=core)
            log = []

            def chain(chain_id, step):
                log.append((chain_id, step))
                if step < 200:
                    engine.timeout(0.0).callbacks.append(
                        lambda _e: chain(chain_id, step + 1))

            for chain_id in range(3):
                engine.timeout(0.0).callbacks.append(
                    lambda _e, c=chain_id: chain(c, 0))
            engine.run()
            assert len(log) == 3 * 201
            assert engine.now == 0.0
            return log

        assert run("array") == run("legacy")

    def test_horizon_reentry_resumes_pending_work(self):
        # run(until=N) snaps the clock to the horizon; a later run()
        # must still deliver events scheduled beyond it, and peek()
        # must see them in between.
        engine = Engine(core="array")
        log = []
        for when in (5.0, 15.0, 25.0):
            engine.timeout(when).callbacks.append(
                lambda _e, w=when: log.append(w))
        engine.run(until=10.0)
        assert log == [5.0]
        assert engine.now == 10.0
        assert engine.peek() == 15.0
        engine.run(until=20.0)
        assert log == [5.0, 15.0]
        engine.run()
        assert log == [5.0, 15.0, 25.0]
        assert engine.now == 25.0

    def test_urgent_at_now_preempts_mid_slice(self):
        # An URGENT event scheduled *while the current slice drains*
        # must run before the remaining NORMAL events of that slice.
        from repro.sim.events import URGENT

        engine = Engine(core="array")
        log = []

        def first(_event):
            log.append("first")
            urgent = engine.event()
            urgent.callbacks.append(lambda _e: log.append("urgent"))
            engine.schedule(urgent, priority=URGENT)

        engine.timeout(1.0).callbacks.append(first)
        engine.timeout(1.0).callbacks.append(lambda _e: log.append("second"))
        engine.run()
        assert log == ["first", "urgent", "second"]

    def test_step_and_peek_drive_array_core(self):
        engine = Engine(core="array")
        log = []
        engine.timeout(2.0).callbacks.append(lambda _e: log.append("a"))
        engine.timeout(2.0).callbacks.append(lambda _e: log.append("b"))
        engine.timeout(7.0).callbacks.append(lambda _e: log.append("c"))
        assert engine.peek() == 2.0
        engine.step()
        assert (engine.now, log) == (2.0, ["a"])
        assert engine.peek() == 2.0
        engine.step()
        assert log == ["a", "b"]
        assert engine.peek() == 7.0
        engine.step()
        assert (engine.now, log) == (7.0, ["a", "b", "c"])
        assert engine.peek() == float("inf")

    def test_pooled_timeouts_recycle_without_crosstalk(self):
        # Long chains of waiter-path timeouts exercise pool reuse; each
        # reused Timeout must deliver its own fresh delay and value.
        engine = Engine(core="array")
        seen = []

        def proc():
            for round_no in range(300):
                value = yield engine.timeout(0.5, value=round_no)
                seen.append((engine.now, value))

        engine.process(proc())
        engine.run()
        assert seen == [(0.5 * (i + 1), i) for i in range(300)]

    def test_rejects_exotic_priorities(self):
        from repro.sim.errors import SimulationError

        engine = Engine(core="array")
        with pytest.raises(SimulationError, match="URGENT/NORMAL"):
            engine.schedule(engine.event(), priority=7)

    def test_core_selection(self):
        assert Engine().core == "array"
        assert Engine(fast_path=False).core == "legacy"
        assert Engine(core="twolane").core == "twolane"
        with pytest.raises(ValueError):
            Engine(core="nonesuch")


# ---------------------------------------------------------------------------
# Serving front-end equivalence
# ---------------------------------------------------------------------------
def serving_transcript(core, seed):
    """Full serving workload transcript under one engine core."""
    from repro.serving import (SLOTarget, ServedModelSpec, make_trace,
                               run_serving)

    ctx = make_context(v100_server, 2, seed=seed, core=core)
    gpu = ctx.machine.gpu(0).name
    trace = make_trace(ctx.rng, "serve", "bursty", 40.0, 1_200.0)
    served = ServedModelSpec(
        job=JobHandle(name="serve", model=get_model("MobileNetV2"),
                      batch=4, training=False, priority=PRIORITY_HIGH,
                      preferred_device=gpu),
        trace=trace, max_batch=4, batch_timeout_ms=5.0,
        queue_capacity=16, shed_policy="drop-oldest",
        slo=SLOTarget(p99_ms=250.0))
    background = JobSpec(
        job=JobHandle(name="train", model=get_model("ResNet50"),
                      batch=16, training=True, priority=PRIORITY_LOW,
                      preferred_device=gpu),
        iterations=100_000, background=True)
    result = run_serving(ctx, SwitchFlowPolicy, [served], [background])
    stream = result.served("serve")
    requests = tuple(
        (r.rid, r.arrival_ms, r.admitted_ms, r.dispatched_ms,
         r.completed_ms, r.shed_reason, r.batch_id)
        for r in stream.requests)
    return (ctx.tracer.to_rows(), ctx.runlog.records, ctx.engine.now,
            requests)


@pytest.mark.parametrize("seed", [0, 7])
def test_serving_identical_under_all_agendas(seed):
    """The serving workload (queue events, batching timeouts, preemption)
    must be bit-identical across the three engine cores."""
    reference = serving_transcript("legacy", seed)
    for core in CORES:
        if core == "legacy":
            continue
        assert serving_transcript(core, seed) == reference, core
