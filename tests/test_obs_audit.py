"""Tests for the scheduler decision audit (repro.obs.audit).

Acceptance bar from the issue: the audit CLI returns a decision record
for every preemption the sanitizer observed in a colocation run.
"""

import json

import pytest

from repro.core import make_context
from repro.core.switchflow import SwitchFlowPolicy
from repro.hw import v100_server
from repro.obs.audit import (
    DECISION_EVENT,
    FLIGHT_DIR_ENV,
    decisions,
    dump_flight_record,
    emit_decision,
    explain,
    flight_record,
    main,
    why,
)
from repro.obs.report import WORKLOADS
from repro.obs.runlog import RunLog


@pytest.fixture(scope="module")
def preemption_ctx():
    return WORKLOADS["preemption"](0, 4)


class TestEmission:
    def test_ids_are_sequential_per_runlog(self):
        runlog = RunLog()
        first = emit_decision(runlog, "admit", job="a", chosen="gpu0")
        second = emit_decision(runlog, "preempt", job="b", victim="a")
        assert (first, second) == (1, 2)
        records = runlog.filter(DECISION_EVENT)
        assert [r["decision"] for r in records] == [1, 2]
        assert records[0]["kind"] == "admit"

    def test_disabled_runlog_returns_none_without_advancing(self):
        runlog = RunLog(enabled=False)
        assert emit_decision(runlog, "admit", job="a") is None
        assert emit_decision(runlog, "admit", job="b") is None
        assert not hasattr(runlog, "_decision_seq")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            emit_decision(RunLog(), "reboot", job="a")

    def test_considered_and_rejected_encoded_flat(self):
        runlog = RunLog()
        emit_decision(runlog, "preempt", job="hi", victim="lo",
                      chosen="gpu1",
                      rejected=[{"device": "gpu2", "why": "degraded"}])
        raw = runlog.filter(DECISION_EVENT)[0]
        assert isinstance(raw["rejected"], str)  # flat JSONL field
        assert json.loads(raw["rejected"])[0]["why"] == "degraded"
        # ...and the query layer decodes it back to structure.
        decoded = decisions(runlog.records)[0]
        assert decoded["rejected"][0]["device"] == "gpu2"


class TestQueries:
    @pytest.fixture()
    def records(self):
        runlog = RunLog()
        emit_decision(runlog, "admit", job="train", chosen="gpu0")
        emit_decision(runlog, "admit", job="serve", chosen="gpu0")
        emit_decision(runlog, "preempt", job="serve", victim="train",
                      requester="serve", device="gpu0", chosen="gpu1")
        return runlog.records

    def test_filter_by_kind(self, records):
        assert len(decisions(records, kind="admit")) == 2
        assert len(decisions(records, kind="preempt")) == 1

    def test_job_matches_victim_and_requester(self, records):
        # "why was train preempted" and "why did serve preempt" both hit.
        assert decisions(records, kind="preempt", job="train")
        assert decisions(records, kind="preempt", job="serve")
        assert not decisions(records, job="nobody")

    def test_why_returns_last_decision(self, records):
        record = why(records, "serve")
        assert record["kind"] == "preempt"

    def test_why_at_ms_returns_decision_in_force(self):
        runlog = RunLog(clock=lambda: 0.0)
        emit_decision(runlog, "admit", job="a", chosen="gpu0")
        runlog.records[-1]["t_ms"] = 100.0
        emit_decision(runlog, "readmit", job="a", chosen="gpu1")
        runlog.records[-1]["t_ms"] = 500.0
        assert why(runlog.records, "a", at_ms=200.0)["kind"] == "admit"
        assert why(runlog.records, "a", at_ms=500.0)["kind"] == "readmit"
        assert why(runlog.records, "a")["kind"] == "readmit"

    def test_why_unknown_job_is_none(self, records):
        assert why(records, "nobody") is None

    def test_explain_renders_rejections(self, records):
        runlog = RunLog()
        emit_decision(runlog, "preempt", job="hi", victim="lo",
                      rejected=[{"device": "gpu2", "why": "degraded"}])
        text = explain(runlog.records[0])
        assert "[preempt]" in text
        assert "device=gpu2, why=degraded" in text


class TestEndToEnd:
    def test_every_preemption_has_a_decision_record(self, preemption_ctx):
        # The acceptance property: each preempt outcome the sanitizer
        # observed references a decision the audit query can return.
        runlog = preemption_ctx.runlog
        preempts = runlog.filter("preempt")
        assert preempts
        for outcome in preempts:
            assert outcome.get("decision") is not None
            record = why(runlog.records, outcome["victim"],
                         at_ms=outcome["t_ms"])
            assert record is not None
            assert record["decision"] == outcome["decision"]
            assert record["victim"] == outcome["victim"]

    def test_abort_outcomes_reference_their_decision(self, preemption_ctx):
        runlog = preemption_ctx.runlog
        ids = {r["decision"] for r in runlog.filter(DECISION_EVENT)}
        for outcome in runlog.filter("abort_complete"):
            assert outcome["decision"] in ids

    def test_every_job_admission_is_audited(self, preemption_ctx):
        runlog = preemption_ctx.runlog
        admitted = {r["job"] for r in decisions(runlog.records,
                                                kind="admit")}
        started = {r["job"] for r in runlog.filter("job_started")}
        assert started <= admitted

    def test_preempt_decision_carries_inputs_and_alternatives(
            self, preemption_ctx):
        record = decisions(preemption_ctx.runlog.records,
                           kind="preempt")[0]
        assert record["victim_priority"] > record["requester_priority"]
        assert record["chosen"]
        assert "queue_depth" in record
        assert isinstance(record["rejected"], list)

    def test_gate_wait_records_emitted(self, preemption_ctx):
        waits = preemption_ctx.runlog.filter("gate_wait")
        assert waits
        assert all(w["wait_ms"] > 0 for w in waits)


class TestFlightRecorder:
    def test_snapshot_captures_pending_decisions(self):
        ctx = make_context(v100_server, 1, seed=7)
        decision = emit_decision(ctx.runlog, "preempt", job="hi",
                                 victim="lo", device="gpu0")
        snapshot = flight_record(ctx, "deadlock-abort")
        assert snapshot["reason"] == "deadlock-abort"
        assert [d["decision"] for d in snapshot["pending_decisions"]] == \
            [decision]
        # Once the abort lands, the decision is no longer pending.
        ctx.runlog.emit("abort_complete", victim="lo", decision=decision)
        assert flight_record(ctx, "again")["pending_decisions"] == []

    def test_snapshot_includes_gate_and_timeseries_state(self):
        ctx = make_context(v100_server, 2, seed=7,
                           timeseries_interval_ms=5.0)
        policy = SwitchFlowPolicy(ctx)
        ctx.engine.run(until=12.0)
        snapshot = flight_record(ctx, "sanitization-error", policy=policy)
        assert set(snapshot["gates"]) == \
            {gpu.name for gpu in ctx.machine.gpus}
        for state in snapshot["gates"].values():
            assert state == {"holder": None, "waiting": []}
        assert len(snapshot["timeseries_windows"]) == 2

    def test_dump_requires_opt_in(self, monkeypatch):
        monkeypatch.delenv(FLIGHT_DIR_ENV, raising=False)
        ctx = make_context(v100_server, 1, seed=7)
        assert dump_flight_record(ctx, "deadlock-abort") is None

    def test_dump_writes_json_into_flight_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path / "flights"))
        ctx = make_context(v100_server, 1, seed=7)
        emit_decision(ctx.runlog, "preempt", job="hi", victim="lo")
        path = dump_flight_record(ctx, "sanitization-error")
        assert path is not None and path.exists()
        payload = json.loads(path.read_text())
        assert payload["reason"] == "sanitization-error"
        assert payload["pending_decisions"]

    def test_explicit_path_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FLIGHT_DIR_ENV, raising=False)
        ctx = make_context(v100_server, 1, seed=7)
        target = tmp_path / "dump.json"
        assert dump_flight_record(ctx, "x", path=target) == target
        assert json.loads(target.read_text())["reason"] == "x"


class TestCli:
    def test_why_over_a_workload(self, capsys):
        code = main(["why", "victim", "--workload", "preemption",
                     "--iterations", "3"])
        text = capsys.readouterr().out
        assert code == 0
        assert "[preempt]" in text
        assert "victim: victim" in text

    def test_list_filters_by_kind(self, capsys):
        code = main(["list", "--workload", "preemption",
                     "--iterations", "3", "--kind", "admit"])
        text = capsys.readouterr().out
        assert code == 0
        assert text.count("[admit]") == 2

    def test_why_over_a_log_file(self, tmp_path, capsys):
        runlog = RunLog()
        emit_decision(runlog, "admit", job="a", chosen="gpu0")
        log = tmp_path / "run.jsonl"
        runlog.write(log)
        assert main(["why", "a", "--log", str(log)]) == 0
        assert "[admit]" in capsys.readouterr().out

    def test_unknown_job_exits_nonzero(self, capsys):
        code = main(["why", "nobody", "--workload", "preemption",
                     "--iterations", "3"])
        assert code == 1
        assert "no decision found" in capsys.readouterr().out

    def test_log_and_workload_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["why", "a", "--log", str(tmp_path / "x.jsonl"),
                  "--workload", "preemption"])
        with pytest.raises(SystemExit):
            main(["list"])
