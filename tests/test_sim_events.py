"""Tests for event primitives: trigger semantics, conditions, cancel."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, EventCancelled, SimulationError


def test_event_lifecycle(engine):
    event = engine.event()
    assert not event.triggered and not event.processed
    event.succeed("v")
    assert event.triggered and not event.processed
    engine.run()
    assert event.processed
    assert event.ok
    assert event.value == "v"


def test_event_cannot_trigger_twice(engine):
    event = engine.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_value_before_trigger_raises(engine):
    event = engine.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_fail_requires_exception(engine):
    event = engine.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_cancel_pending_event_fails_with_event_cancelled(engine):
    event = engine.event()
    assert event.cancel("reason") is True

    def waiter(env, target):
        try:
            yield target
        except EventCancelled as exc:
            return exc.reason

    process = engine.process(waiter(engine, event))
    assert engine.run(until=process) == "reason"


def test_cancel_after_trigger_is_noop(engine):
    event = engine.event()
    event.succeed(1)
    assert event.cancel() is False
    engine.run()
    assert event.value == 1


def test_timeout_is_triggered_at_birth_but_not_processed(engine):
    timeout = engine.timeout(10.0)
    assert timeout.triggered
    assert not timeout.processed


def test_any_of_fires_on_first_processed(engine):
    slow = engine.timeout(10.0, value="slow")
    fast = engine.timeout(2.0, value="fast")
    condition = engine.any_of([slow, fast])

    def waiter(env):
        values = yield condition
        return values

    process = engine.process(waiter(engine))
    values = engine.run(until=process)
    assert engine.now == 2.0
    assert values == {fast: "fast"}


def test_any_of_does_not_fire_early_for_unexpired_timeout(engine):
    # Regression: Timeouts are 'triggered' from creation; AnyOf must
    # wait until one is actually processed.
    done = engine.event()
    deadline = engine.timeout(1000.0)
    condition = engine.any_of([done, deadline])

    def finisher(env):
        yield env.timeout(5.0)
        done.succeed("finished")

    engine.process(finisher(engine))

    def waiter(env):
        return (yield condition)

    process = engine.process(waiter(engine))
    values = engine.run(until=process)
    assert engine.now == 5.0
    assert values == {done: "finished"}


def test_all_of_waits_for_every_event(engine):
    events = [engine.timeout(t, value=t) for t in (3.0, 7.0, 5.0)]
    condition = engine.all_of(events)

    def waiter(env):
        return (yield condition)

    process = engine.process(waiter(engine))
    values = engine.run(until=process)
    assert engine.now == 7.0
    assert sorted(values.values()) == [3.0, 5.0, 7.0]


def test_all_of_empty_fires_immediately(engine):
    condition = engine.all_of([])
    assert condition.triggered


def test_all_of_fails_if_member_fails(engine):
    good = engine.timeout(5.0)
    bad = engine.event()

    def failer(env):
        yield env.timeout(1.0)
        bad.fail(RuntimeError("member failed"))

    engine.process(failer(engine))
    condition = engine.all_of([good, bad])

    def waiter(env):
        try:
            yield condition
        except RuntimeError as exc:
            return str(exc)

    process = engine.process(waiter(engine))
    assert engine.run(until=process) == "member failed"


def test_trigger_copies_state_from_other_event(engine):
    source = engine.event()
    mirror = engine.event()
    source.callbacks.append(mirror.trigger)
    source.succeed("copied")
    engine.run()
    assert mirror.value == "copied"
