"""Recovery primitives: backoff schedule, degradation tracking, and
the restart / give-up behaviour of crashed jobs."""

import pytest

from repro.faults import DegradationTracker, backoff_ms
from tests.test_faults_injection import events_of, run_faulted


# ---------------------------------------------------------------------------
# Backoff
# ---------------------------------------------------------------------------
def test_backoff_doubles_then_caps():
    waits = [backoff_ms(attempt, base_ms=4.0, cap_ms=64.0)
             for attempt in range(8)]
    assert waits == [4.0, 8.0, 16.0, 32.0, 64.0, 64.0, 64.0, 64.0]


def test_backoff_rejects_negative_attempt():
    with pytest.raises(ValueError):
        backoff_ms(-1, base_ms=4.0, cap_ms=64.0)


# ---------------------------------------------------------------------------
# Degradation tracker (unit level: no context needed)
# ---------------------------------------------------------------------------
def test_degradation_trips_at_threshold():
    tracker = DegradationTracker(None, threshold=3)
    assert not tracker.record_fault("gpu0")
    assert not tracker.record_fault("gpu0")
    assert not tracker.is_degraded("gpu0")
    assert tracker.record_fault("gpu0")      # third fault: flips
    assert tracker.is_degraded("gpu0")
    assert not tracker.record_fault("gpu0")  # already degraded
    assert tracker.fault_count("gpu0") == 4
    assert tracker.degraded_devices() == ["gpu0"]


def test_degradation_is_per_device():
    tracker = DegradationTracker(None, threshold=2)
    tracker.record_fault("gpu0")
    tracker.record_fault("gpu1")
    assert not tracker.is_degraded("gpu0")
    assert not tracker.is_degraded("gpu1")
    tracker.record_fault("gpu1")
    assert tracker.is_degraded("gpu1")
    assert not tracker.is_degraded("gpu0")
    assert tracker.degraded_devices() == ["gpu1"]


def test_degradation_ignores_missing_device():
    tracker = DegradationTracker(None, threshold=1)
    assert not tracker.record_fault(None)
    assert not tracker.record_fault("")
    assert not tracker.is_degraded(None)
    assert tracker.degraded_devices() == []


# ---------------------------------------------------------------------------
# Restart-from-checkpoint, end to end
# ---------------------------------------------------------------------------
def test_restart_resumes_from_last_checkpoint():
    plan = {"faults": [{"kind": "job_crash",
                        "trigger": {"at_ms": 150.0}, "job": "bg"}],
            "recovery": {"checkpoint_interval": 2}}
    ctx, result = run_faulted(plan)
    counts = events_of(ctx)
    assert counts["job_restarting"] == 1
    assert not result.crashed_jobs()
    restart = next(record for record in ctx.runlog.records
                   if record.get("event") == "job_restarting")
    checkpoints = [record for record in ctx.runlog.records
                   if record.get("event") == "checkpoint"
                   and record.get("job") == "bg"
                   and record.get("t_ms", 0.0) <= restart["t_ms"]]
    # The restart resumes exactly at the last checkpointed iteration
    # (a multiple of checkpoint_interval), not from zero.
    resumed_from = restart.get("from_iteration")
    assert resumed_from is not None
    if checkpoints:
        assert resumed_from == max(c["iteration"] for c in checkpoints)
        assert resumed_from % 2 == 0
    else:
        assert resumed_from == 0
    # The redone tail shows up as extra recorded iterations.
    assert result.stats["bg"].iterations >= 6


def test_crash_on_preempt_plan_recovers():
    plan = {"faults": [{"kind": "job_crash",
                        "trigger": {"probability": 1.0},
                        "on": "preempt"}],
            "recovery": {"checkpoint_interval": 2,
                         "restart_delay_ms": 5.0}}
    ctx, result = run_faulted(plan)
    counts = events_of(ctx)
    # The priority preemption arms the crash; the victim dies at its
    # next safe point and restarts.
    assert counts["preempt"] >= 1
    assert counts["fault_injected"] >= 1
    assert counts["job_restarting"] >= 1
    assert ctx.metrics.value("faults.recovered_total") >= 1
    assert not result.crashed_jobs()


def test_max_restarts_exhaustion_is_a_permanent_crash():
    plan = {"faults": [{"kind": "job_crash",
                        "trigger": {"every_n": 1}, "job": "bg"}],
            "recovery": {"max_restarts": 1}}
    ctx, result = run_faulted(plan)
    counts = events_of(ctx)
    assert counts["job_restarting"] == 1       # the one allowed restart
    assert counts["job_crashed"] == 1          # then it stays down
    assert result.crashed_jobs() == ["bg"]
    assert result.stats["bg"].crashed
    # The co-located foreground job is unaffected.
    assert result.stats["fg"].iterations >= 3
    assert not result.stats["fg"].crashed


def test_zero_restarts_means_first_crash_is_fatal():
    plan = {"faults": [{"kind": "job_crash",
                        "trigger": {"at_ms": 100.0}, "job": "bg"}],
            "recovery": {"max_restarts": 0}}
    ctx, result = run_faulted(plan)
    assert events_of(ctx)["job_restarting"] == 0
    assert result.crashed_jobs() == ["bg"]


def test_degraded_device_falls_back_to_time_slicing():
    # Hammer gpu0 with stalls until it degrades, then check SwitchFlow
    # stops preempting there: both jobs still finish (time slicing
    # through the gate) and no preemption happens after degradation.
    plan = {"faults": [{"kind": "kernel_stall",
                        "trigger": {"every_n": 1}, "stall_ms": 1.0}],
            "recovery": {"degrade_after": 2}}
    ctx, result = run_faulted(plan)
    degraded = [record for record in ctx.runlog.records
                if record.get("event") == "device_degraded"]
    assert degraded
    degraded_at = degraded[0]["t_ms"]
    late_preempts = [record for record in ctx.runlog.records
                     if record.get("event") == "preempt"
                     and record.get("t_ms", 0.0) > degraded_at]
    assert not late_preempts
    assert not result.crashed_jobs()
    assert result.stats["bg"].iterations >= 6
    assert result.stats["fg"].iterations >= 3
