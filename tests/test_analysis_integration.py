"""Tests for the runner/CLI wiring of the analysis passes."""

import pytest

from repro.analysis.cli import main as analysis_main
from repro.analysis.integration import (
    SANITIZE_ENV,
    SanitizationError,
    analyze_context,
    enforce,
    sanitize_enabled,
)
from repro.baselines import MultiThreadedTF
from repro.core import JobHandle, make_context
from repro.hw import v100_server
from repro.models import get_model
from repro.sim.trace import Span
from repro.workloads import JobSpec, run_colocation


def small_run(seed=3):
    ctx = make_context(v100_server, 1, seed=seed)
    job = JobHandle(name="solo", model=get_model("MobileNetV2"), batch=8,
                    training=False,
                    preferred_device=ctx.machine.gpu(0).name)
    policy_holder = {}

    def factory(ctx):
        policy_holder["policy"] = MultiThreadedTF(ctx)
        return policy_holder["policy"]

    run_colocation(ctx, factory, [JobSpec(job=job, iterations=2)])
    return ctx, policy_holder["policy"]


def forge_violation(ctx):
    lane = next(s.lane for s in ctx.tracer.spans
                if s.lane.startswith("gpu:"))
    real = next(s for s in ctx.tracer.spans
                if s.lane == lane and s.duration > 0
                and s.meta.get("context"))
    ctx.tracer.spans.append(
        Span(lane, "forged", real.start, real.end,
             {"context": "intruder"}))


class TestEnvGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert not sanitize_enabled()

    def test_zero_and_empty_mean_disabled(self, monkeypatch):
        for value in ("", "0"):
            monkeypatch.setenv(SANITIZE_ENV, value)
            assert not sanitize_enabled()

    def test_any_other_value_enables(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert sanitize_enabled()


class TestEnforce:
    def test_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        ctx, policy = small_run()
        forge_violation(ctx)  # even a bad trace passes silently
        assert enforce(ctx, policy=policy) is None

    def test_clean_run_returns_the_report(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        ctx, policy = small_run()
        report = enforce(ctx, policy=policy, label="smoke")
        assert report is not None
        assert not report.has_errors
        assert report.title == "analysis: smoke"

    def test_error_finding_raises(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        ctx, _policy = small_run()
        forge_violation(ctx)
        # No policy given: the exclusivity invariant is enforced.
        with pytest.raises(SanitizationError) as excinfo:
            enforce(ctx, label="bad")
        assert "mutual-exclusion" in str(excinfo.value)
        assert excinfo.value.report.has_errors

    def test_sanitized_colocation_runs_inline(self, monkeypatch):
        # run_colocation itself calls enforce: a clean run under the
        # flag must complete without raising.
        monkeypatch.setenv(SANITIZE_ENV, "1")
        ctx, _policy = small_run()
        assert ctx.metrics.value("analysis.runs_total") >= 1


class TestMetricsExport:
    def test_analyze_context_exports_counts(self):
        ctx, policy = small_run()
        forge_violation(ctx)
        analyze_context(ctx, policy=None, label="forged")
        assert ctx.metrics.value("analysis.runs_total") == 1
        assert ctx.metrics.value("analysis.findings_total",
                                 check="mutual-exclusion",
                                 severity="error") >= 1


class TestCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert analysis_main(["lint", str(target)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_bad_file_exits_one(self, tmp_path, capsys):
        core = tmp_path / "core"
        core.mkdir()
        target = core / "bad.py"
        target.write_text("import time\nt = time.time()\n")
        assert analysis_main(["lint", str(target)]) == 1
        assert "wallclock" in capsys.readouterr().out

    def test_lint_shipped_tree_is_clean(self, capsys):
        assert analysis_main(["--quiet", "lint", "src/repro"]) == 0

    def test_graphs_subcommand_lints_a_model(self, capsys):
        assert analysis_main(["graphs", "MobileNetV2", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "linted 2 graph(s) from 1 model(s)" in out

    def test_sanitize_subcommand_sets_and_restores_env(
            self, monkeypatch, capsys):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        seen = {}

        def fake_main(argv):
            import os
            seen["argv"] = argv
            seen["env"] = os.environ.get(SANITIZE_ENV)
            return 0

        from repro.experiments import runner
        monkeypatch.setattr(runner, "main", fake_main)
        assert analysis_main(["sanitize", "fig3", "--quick"]) == 0
        assert seen["argv"] == ["fig3", "--quick"]
        assert seen["env"] == "1"
        import os
        assert os.environ.get(SANITIZE_ENV) is None


class _FakeResult:
    def to_table(self):
        return "fake table"


class TestRunnerFlag:
    def test_runner_sanitize_flag_fails_on_violation(
            self, monkeypatch, capsys):
        # Patch one experiment to emit a forged bad trace; the runner
        # must catch SanitizationError and exit non-zero.
        from repro.experiments import runner

        def bad_experiment():
            ctx, _policy = small_run()
            forge_violation(ctx)
            enforce(ctx, label="forged")
            return _FakeResult()

        monkeypatch.setitem(
            runner.EXPERIMENTS, "motivation",
            {"quick": bad_experiment, "full": bad_experiment})
        code = runner.main(["motivation", "--quick", "--sanitize"])
        assert code == 1
        err = capsys.readouterr().err
        assert "invariant violation" in err
        assert "mutual-exclusion" in err

    def test_runner_sanitize_flag_restores_env(self, monkeypatch, capsys):
        import os

        from repro.experiments import runner

        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        seen = {}

        def clean_experiment():
            seen["env"] = os.environ.get(SANITIZE_ENV)
            return _FakeResult()

        monkeypatch.setitem(
            runner.EXPERIMENTS, "motivation",
            {"quick": clean_experiment, "full": clean_experiment})
        assert runner.main(["motivation", "--quick", "--sanitize"]) == 0
        assert seen["env"] == "1"
        assert os.environ.get(SANITIZE_ENV) is None
