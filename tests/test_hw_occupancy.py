"""Tests for the occupancy calculator (the register-bound heuristic)."""

import pytest

from repro.hw import (
    KernelResourceDemand,
    TESLA_V100,
    JETSON_TX2_GPU,
    blocks_per_sm,
    can_corun,
    device_occupancy,
)


def test_register_bound_kernel_fills_device():
    # 256 threads x 128 regs = 32768 regs/block; 2 blocks/SM on V100;
    # enough blocks to cover all SMs => occupancy ~1.
    demand = KernelResourceDemand(
        threads_per_block=256, registers_per_thread=128,
        shared_mem_per_block_bytes=48 * 1024, blocks=640)
    assert device_occupancy(demand, TESLA_V100) > 0.9


def test_small_kernel_has_small_occupancy():
    demand = KernelResourceDemand(
        threads_per_block=64, registers_per_thread=32,
        shared_mem_per_block_bytes=4 * 1024, blocks=8)
    assert device_occupancy(demand, TESLA_V100) < 0.2


def test_blocks_per_sm_limited_by_registers():
    demand = KernelResourceDemand(256, 128, 0, 100)
    # 65536 regs / (256*128) = 2 blocks by registers; 8 by threads.
    assert blocks_per_sm(demand, TESLA_V100) == 2


def test_blocks_per_sm_limited_by_shared_memory():
    demand = KernelResourceDemand(64, 16, 48 * 1024, 100)
    # 96 KiB shmem / 48 KiB = 2 blocks by shmem.
    assert blocks_per_sm(demand, TESLA_V100) == 2


def test_blocks_per_sm_limited_by_threads():
    demand = KernelResourceDemand(1024, 16, 1024, 100)
    assert blocks_per_sm(demand, TESLA_V100) == 2


def test_overdemanding_kernel_serializes():
    # Cannot fit even one block on an SM: treated as device-filling.
    demand = KernelResourceDemand(2048, 64, 0, 10)
    assert device_occupancy(demand, TESLA_V100) == 1.0


def test_occupancy_is_bounded():
    demand = KernelResourceDemand(256, 64, 0, 10_000)
    occupancy = device_occupancy(demand, TESLA_V100)
    assert 0.0 < occupancy <= 1.0


def test_small_device_saturates_sooner():
    demand = KernelResourceDemand(256, 64, 16 * 1024, 64)
    assert device_occupancy(demand, JETSON_TX2_GPU) >= \
        device_occupancy(demand, TESLA_V100)


def test_can_corun_threshold():
    assert can_corun(0.4, 0.6)
    assert not can_corun(0.6, 0.6)


def test_demand_validation():
    with pytest.raises(ValueError):
        KernelResourceDemand(0, 32, 0, 1)
    with pytest.raises(ValueError):
        KernelResourceDemand(64, -1, 0, 1)
