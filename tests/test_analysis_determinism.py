"""Tests for the determinism lint: the AST pass must flag the three
replay-breaking bug classes and honour the inline suppression pragma."""

import textwrap

from repro.analysis.determinism import (
    PRAGMA,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Severity

SIM_PATH = "src/repro/sim/module.py"
OBS_PATH = "src/repro/obs/module.py"
OTHER_PATH = "src/repro/metrics/module.py"


def lint(source, path=SIM_PATH):
    return lint_source(textwrap.dedent(source), path)


class TestWallclock:
    def test_time_time_is_flagged(self):
        findings = lint("""
            import time
            t = time.time()
        """)
        assert [f.check for f in findings] == ["wallclock"]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].where == f"{SIM_PATH}:3"

    def test_aliased_import_is_resolved(self):
        findings = lint("""
            from time import perf_counter as tick
            tick()
        """)
        assert [f.check for f in findings] == ["wallclock"]

    def test_datetime_now_through_module_alias(self):
        findings = lint("""
            import datetime as dt
            when = dt.datetime.now()
        """)
        assert [f.check for f in findings] == ["wallclock"]

    def test_obs_layer_may_read_wall_time(self):
        findings = lint("""
            import time
            t = time.perf_counter()
        """, path=OBS_PATH)
        assert not findings

    def test_engine_time_is_not_confused_with_wall_time(self):
        findings = lint("""
            def f(engine):
                return engine.now
        """)
        assert not findings


class TestUnseededRng:
    def test_global_random_module_is_flagged(self):
        findings = lint("""
            import random
            random.shuffle([1, 2])
            x = random.randint(0, 3)
        """)
        assert [f.check for f in findings] == ["unseeded-rng"] * 2

    def test_argless_random_instance_is_flagged(self):
        findings = lint("""
            import random
            rng = random.Random()
        """)
        assert [f.check for f in findings] == ["unseeded-rng"]

    def test_seeded_random_instance_is_fine(self):
        findings = lint("""
            import random
            rng = random.Random(1234)
        """)
        assert not findings

    def test_numpy_global_state_is_flagged(self):
        findings = lint("""
            import numpy as np
            x = np.random.rand(3)
            np.random.seed(0)
        """)
        assert [f.check for f in findings] == ["unseeded-rng"] * 2

    def test_seeded_numpy_generator_is_fine(self):
        findings = lint("""
            import numpy as np
            gen = np.random.default_rng(7)
        """)
        assert not findings


class TestSetIteration:
    def test_for_loop_over_set_literal_is_flagged(self):
        findings = lint("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert [f.check for f in findings] == ["set-iteration"]

    def test_comprehension_over_set_call_is_flagged(self):
        findings = lint("""
            out = [x for x in set(items)]
        """)
        assert [f.check for f in findings] == ["set-iteration"]

    def test_list_of_set_is_flagged(self):
        findings = lint("""
            out = list(set(items))
        """)
        assert [f.check for f in findings] == ["set-iteration"]

    def test_sorted_set_is_fine(self):
        # sorted() imposes a total order, which is the recommended fix.
        findings = lint("""
            out = sorted(set(items))
        """)
        assert not findings

    def test_iterating_a_list_is_fine(self):
        findings = lint("""
            for x in [1, 2, 3]:
                print(x)
        """)
        assert not findings

    def test_rule_only_applies_to_the_deterministic_core(self):
        source = """
            out = list(set(items))
        """
        assert lint(source, path=SIM_PATH)
        assert not lint(source, path=OTHER_PATH)

    def test_faults_package_is_order_sensitive(self):
        # Injected fault timing feeds the event agenda, so repro.faults
        # joined the set-iteration scope alongside sim/core/runtime.
        source = """
            out = list(set(devices))
        """
        assert lint(source, path="src/repro/faults/injection.py")

    def test_topology_module_is_order_sensitive(self):
        # hw/ is mostly passive specs, but topology's route/placement
        # enumeration orders gang-scheduling decisions.
        source = """
            for node in {a, b}:
                place(node)
        """
        assert lint(source, path="src/repro/hw/topology.py")
        assert not lint(source, path="src/repro/hw/devices.py")


class TestPragma:
    def test_pragma_suppresses_the_line(self):
        findings = lint(f"""
            import time
            t = time.time()  {PRAGMA} (wall-time stats)
        """)
        assert not findings

    def test_pragma_is_per_line_not_per_file(self):
        findings = lint(f"""
            import time
            a = time.time()  {PRAGMA}
            b = time.time()
        """)
        assert len(findings) == 1
        assert findings[0].where == f"{SIM_PATH}:4"


class TestPlumbing:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n", path=SIM_PATH)
        assert [f.check for f in findings] == ["syntax"]
        assert findings[0].severity is Severity.ERROR

    def test_lint_paths_walks_directories(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        (core / "bad.py").write_text("import time\nt = time.time()\n")
        (core / "good.py").write_text("x = 1\n")
        (core / "notes.txt").write_text("not python\n")
        report = lint_paths([tmp_path])
        assert len(report.errors) == 1
        assert report.errors[0].check == "wallclock"
        assert any("scanned 2 file(s)" in f.message
                   for f in report.findings)

    def test_iter_python_files_accepts_single_files(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert iter_python_files([target]) == [target]

    def test_repro_source_tree_is_clean(self):
        # The acceptance bar: the lint runs clean over the shipped tree
        # (allowed exceptions carry explicit pragmas).
        report = lint_paths(["src/repro"])
        assert not report.has_errors, report.render()
