"""Tests for the device memory allocator and OOM semantics."""

import pytest

from repro.hw import MemoryPool, OutOfMemoryError


@pytest.fixture
def pool():
    return MemoryPool("test-gpu", capacity_bytes=1000)


def test_allocate_and_free_roundtrip(pool):
    record = pool.allocate("job", "weights", 400)
    assert pool.used_bytes == 400
    assert pool.free_bytes == 600
    pool.free(record)
    assert pool.used_bytes == 0


def test_oom_raises_and_counts(pool):
    pool.allocate("a", "weights", 800)
    with pytest.raises(OutOfMemoryError) as excinfo:
        pool.allocate("b", "weights", 300)
    assert excinfo.value.requested == 300
    assert excinfo.value.free == 200
    assert excinfo.value.owner == "b"
    assert pool.oom_events == 1
    # The failed allocation must not corrupt accounting.
    assert pool.used_bytes == 800


def test_high_water_mark_tracks_peak(pool):
    first = pool.allocate("a", "x", 600)
    pool.allocate("a", "y", 300)
    pool.free(first)
    pool.allocate("a", "z", 100)
    assert pool.high_water_mark == 900


def test_per_owner_accounting(pool):
    pool.allocate("a", "weights", 100)
    pool.allocate("a", "transient", 200)
    pool.allocate("b", "weights", 300)
    assert pool.used_by("a") == 300
    assert pool.used_by("b") == 300
    assert pool.owners() == {"a": 300, "b": 300}


def test_free_owner_by_tag(pool):
    pool.allocate("a", "weights", 100)
    pool.allocate("a", "transient", 200)
    released = pool.free_owner("a", tag="transient")
    assert released == 200
    assert pool.used_by("a") == 100


def test_free_owner_all(pool):
    pool.allocate("a", "weights", 100)
    pool.allocate("a", "transient", 200)
    assert pool.free_owner("a") == 300
    assert pool.used_bytes == 0


def test_double_free_is_idempotent(pool):
    record = pool.allocate("a", "x", 100)
    pool.free(record)
    pool.free(record)
    assert pool.used_bytes == 0


def test_zero_byte_allocation_allowed(pool):
    pool.allocate("a", "empty", 0)
    assert pool.used_bytes == 0


def test_negative_allocation_rejected(pool):
    with pytest.raises(ValueError):
        pool.allocate("a", "bad", -1)


def test_can_allocate_probe(pool):
    pool.allocate("a", "x", 900)
    assert pool.can_allocate(100)
    assert not pool.can_allocate(101)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        MemoryPool("bad", 0)
