"""Tests for placement, partitioning (send/recv), and the cost model."""

import pytest

from repro.graph import (
    EXPENSIVE_THRESHOLD_MS,
    Graph,
    GraphError,
    OpDef,
    OpKind,
    cpu_op_cost_ms,
    gpu_kernel_cost,
    partition_graph,
    place_graph,
    validate_placement,
)
from repro.hw import JETSON_TX2_GPU, TESLA_V100, XEON_DUAL_18C


def _mixed_graph():
    graph = Graph("mixed")
    iterator = graph.add_node(OpDef(
        name="it", kind=OpKind.ITERATOR_GET_NEXT, output_bytes=100,
        preferred_device="cpu"))
    decode = graph.add_node(OpDef(
        name="decode", kind=OpKind.DECODE_JPEG, output_bytes=100,
        preferred_device="cpu", attrs={"images": 4}), inputs=[iterator])
    conv = graph.add_node(OpDef(
        name="conv", kind=OpKind.CONV2D, flops=1e9, input_bytes=100,
        output_bytes=200, preferred_device="gpu"), inputs=[decode])
    loss = graph.add_node(OpDef(
        name="loss", kind=OpKind.LOSS, flops=1e6, input_bytes=200,
        preferred_device="gpu"), inputs=[conv])
    return graph


class TestPlacement:
    def test_pipeline_ops_pinned_to_cpu(self):
        graph = _mixed_graph()
        place_graph(graph, "host", "gpu0")
        assert graph.find("it").device == "host"
        assert graph.find("decode").device == "host"
        assert graph.find("conv").device == "gpu0"

    def test_cpu_only_placement(self):
        graph = _mixed_graph()
        place_graph(graph, "host", None)
        assert {node.device for node in graph} == {"host"}

    def test_validate_placement_detects_missing(self):
        graph = _mixed_graph()
        with pytest.raises(GraphError):
            validate_placement(graph)


class TestPartition:
    def test_cross_device_edge_creates_send_recv_pair(self):
        graph = _mixed_graph()
        place_graph(graph, "host", "gpu0")
        partition = partition_graph(graph)
        assert set(partition.devices) == {"host", "gpu0"}
        assert len(partition.channels) == 1
        channel = partition.channels[0]
        assert channel.src_device == "host"
        assert channel.dst_device == "gpu0"
        host_kinds = {n.kind for n in partition.subgraph("host")}
        gpu_kinds = {n.kind for n in partition.subgraph("gpu0")}
        assert OpKind.SEND in host_kinds
        assert OpKind.RECV in gpu_kinds

    def test_fanout_to_same_device_reuses_one_channel(self):
        graph = Graph("fan")
        src = graph.add_node(OpDef(name="src", kind=OpKind.IDENTITY,
                                   output_bytes=10, preferred_device="cpu"))
        for index in range(3):
            graph.add_node(OpDef(name=f"sink{index}", kind=OpKind.CONV2D,
                                 flops=1e6, preferred_device="gpu"),
                           inputs=[src])
        place_graph(graph, "host", "gpu0")
        partition = partition_graph(graph)
        assert len(partition.channels) == 1

    def test_single_device_graph_has_no_channels(self):
        graph = _mixed_graph()
        place_graph(graph, "host", None)
        partition = partition_graph(graph)
        assert partition.channels == []
        assert partition.devices == ["host"]

    def test_partition_requires_placement(self):
        with pytest.raises(GraphError):
            partition_graph(_mixed_graph())

    def test_subgraphs_are_valid_dags(self):
        graph = _mixed_graph()
        place_graph(graph, "host", "gpu0")
        partition = partition_graph(graph)
        for device in partition.devices:
            partition.subgraph(device).validate()


class TestGpuCost:
    def test_compute_bound_scales_with_flops(self):
        small = OpDef(name="s", kind=OpKind.MATMUL, flops=1e9)
        large = OpDef(name="l", kind=OpKind.MATMUL, flops=2e9)
        assert gpu_kernel_cost(large, TESLA_V100).work_ms == pytest.approx(
            2 * (gpu_kernel_cost(small, TESLA_V100).work_ms
                 - TESLA_V100.kernel_launch_overhead_ms)
            + TESLA_V100.kernel_launch_overhead_ms)

    def test_memory_bound_op_uses_bandwidth(self):
        op = OpDef(name="ew", kind=OpKind.ELEMENTWISE, flops=1e3,
                   input_bytes=int(900e6), output_bytes=0)
        cost = gpu_kernel_cost(op, TESLA_V100)
        # 900 MB at 900 GB/s ~ 1 ms.
        assert cost.work_ms == pytest.approx(1.0, rel=0.05)

    def test_register_bound_op_has_full_occupancy(self):
        op = OpDef(name="c", kind=OpKind.CONV2D, flops=1e9)
        assert gpu_kernel_cost(op, TESLA_V100).occupancy == 1.0

    def test_small_elementwise_has_small_occupancy(self):
        op = OpDef(name="ew", kind=OpKind.ELEMENTWISE, flops=1e4,
                   output_bytes=1000)
        assert gpu_kernel_cost(op, TESLA_V100).occupancy < 0.2

    def test_expensive_classification(self):
        heavy = OpDef(name="h", kind=OpKind.CONV2D, flops=1e10)
        light = OpDef(name="l", kind=OpKind.ELEMENTWISE, flops=1e3)
        assert gpu_kernel_cost(heavy, TESLA_V100).expensive
        assert not gpu_kernel_cost(light, TESLA_V100).expensive

    def test_slower_gpu_takes_longer(self):
        op = OpDef(name="c", kind=OpKind.CONV2D, flops=1e10)
        assert gpu_kernel_cost(op, JETSON_TX2_GPU).work_ms > \
            gpu_kernel_cost(op, TESLA_V100).work_ms


class TestCpuCost:
    def test_preprocess_chunk_cost(self):
        chunk = OpDef(name="chunk", kind=OpKind.DECODE_JPEG,
                      attrs={"images": 4.0})
        assert cpu_op_cost_ms(chunk, XEON_DUAL_18C) == pytest.approx(
            4.0 * XEON_DUAL_18C.image_preprocess_ms)

    def test_tokenize_cost(self):
        chunk = OpDef(name="tok", kind=OpKind.TOKENIZE,
                      attrs={"sentences": 8.0})
        assert cpu_op_cost_ms(chunk, XEON_DUAL_18C) == pytest.approx(
            8.0 * XEON_DUAL_18C.sentence_preprocess_ms)

    def test_plumbing_ops_are_cheap(self):
        send = OpDef(name="s", kind=OpKind.SEND)
        assert cpu_op_cost_ms(send, XEON_DUAL_18C) < EXPENSIVE_THRESHOLD_MS

    def test_compute_op_uses_mkl_roofline(self):
        matmul = OpDef(name="m", kind=OpKind.MATMUL, flops=1e9)
        cost = cpu_op_cost_ms(matmul, XEON_DUAL_18C)
        # Must be far slower than the V100 but finite and positive.
        assert cost > gpu_kernel_cost(matmul, TESLA_V100).work_ms
        assert cost < 1e4
