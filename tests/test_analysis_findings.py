"""Tests for the shared Finding/Report diagnostic model."""

from repro.analysis.findings import Finding, Report, Severity, merge
from repro.obs.metrics import MetricsRegistry


class TestSeverity:
    def test_ordering_is_by_seriousness(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_renders_lowercase(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"


class TestFinding:
    def test_render_includes_check_location_and_window(self):
        finding = Finding(check="mutual-exclusion", severity=Severity.ERROR,
                          message="jobs overlap", where="gpu:gpu0",
                          t_start=1.0, t_end=2.5)
        text = finding.render()
        assert "error: mutual-exclusion" in text
        assert "[gpu:gpu0]" in text
        assert "1.000..2.500ms" in text
        assert "jobs overlap" in text

    def test_render_without_location_or_window(self):
        finding = Finding(check="cycle", severity=Severity.WARNING,
                          message="m")
        assert finding.render() == "warning: cycle: m"

    def test_meta_does_not_affect_equality(self):
        a = Finding("c", Severity.INFO, "m", meta={"x": 1})
        b = Finding("c", Severity.INFO, "m", meta={"x": 2})
        assert a == b


class TestReport:
    def test_add_and_query(self):
        report = Report("t")
        report.error("a", "boom")
        report.warning("b", "hmm")
        report.info("a", "fyi")
        assert len(report) == 3
        assert report.has_errors
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert {f.check for f in report.by_check("a")} == {"a"}
        assert len(report.by_check("a")) == 2
        assert len(report.at_least(Severity.WARNING)) == 2
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}

    def test_clean_report_has_no_errors(self):
        report = Report()
        report.info("x", "nothing to see")
        assert not report.has_errors

    def test_render_respects_min_severity(self):
        report = Report("t")
        report.info("quiet", "hidden at WARNING level")
        report.error("loud", "always shown")
        text = report.render(min_severity=Severity.WARNING)
        assert "loud" in text
        assert "hidden at WARNING level" not in text
        # the tally line still counts everything
        assert "1 error(s), 0 warning(s), 1 info" in text

    def test_merge_concatenates(self):
        first, second = Report("a"), Report("b")
        first.error("x", "1")
        second.warning("y", "2")
        merged = merge("all", [first, second])
        assert merged.title == "all"
        assert [f.check for f in merged] == ["x", "y"]

    def test_merge_dedupe_keeps_first_occurrence(self):
        first, second = Report("a"), Report("b")
        first.error("x", "same", where="f.py:1", shard=1)
        first.warning("y", "kept")
        second.error("x", "same", where="f.py:1", shard=2)
        second.error("x", "same", where="f.py:2")  # different site
        merged = merge("all", [first, second], dedupe=True)
        assert [f.check for f in merged] == ["x", "y", "x"]
        # First occurrence wins, meta and all.
        assert merged.findings[0].meta == {"shard": 1}

    def test_merge_dedupe_respects_severity_and_window(self):
        first, second = Report(), Report()
        first.error("x", "m", t_start=1.0)
        second.error("x", "m", t_start=2.0)   # different window: kept
        second.warning("x", "m", t_start=1.0)  # different severity: kept
        merged = merge("all", [first, second], dedupe=True)
        assert len(merged) == 3

    def test_merge_ordering_is_stable(self):
        reports = []
        for shard in range(3):
            report = Report(f"shard{shard}")
            report.error("a", f"a{shard}")
            report.info("b", f"b{shard}")
            reports.append(report)
        merged = merge("all", reports, dedupe=True)
        assert [f.message for f in merged] == \
            ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_export_metrics_counts_by_check_and_severity(self):
        registry = MetricsRegistry()
        report = Report()
        report.error("mutual-exclusion", "a")
        report.error("mutual-exclusion", "b")
        report.warning("migration-critical-path", "c")
        report.export_metrics(registry)
        assert registry.value("analysis.runs_total") == 1
        assert registry.value("analysis.findings_total",
                              check="mutual-exclusion",
                              severity="error") == 2
        assert registry.value("analysis.findings_total",
                              check="migration-critical-path",
                              severity="warning") == 1

    def test_export_metrics_on_clean_report_still_marks_the_run(self):
        registry = MetricsRegistry()
        Report().export_metrics(registry)
        assert registry.value("analysis.runs_total") == 1
        assert registry.value("analysis.findings_total") == 0
