"""Smoke and shape tests for the experiment harnesses.

These run small instances of each table/figure reproduction and assert
the paper's *qualitative* claims hold (who wins, in which direction).
Full-scale runs live in benchmarks/.
"""

import pytest

from repro.experiments import (
    fig2_timeline,
    fig3_idle,
    fig6_tail_latency,
    fig8_input_reuse,
    fig10_interleaving,
    motivation_streams,
    preemption_overhead,
    table1_state_transfer,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import main as runner_main


class TestCommon:
    def test_result_table_rendering(self):
        result = ExperimentResult(name="x", title="T")
        result.add_row(a=1, b="text")
        result.add_row(a=2.5, c=None)
        table = result.to_table()
        assert "T" in table and "a" in table and "text" in table

    def test_empty_table(self):
        assert "no rows" in ExperimentResult(name="x", title="T").to_table()


class TestTable1:
    def test_matches_paper_within_tolerance(self):
        result = table1_state_transfer.run(simulate=False)
        for row in result.rows:
            assert row["stateful_mib"] == pytest.approx(
                row["paper_mib"], rel=0.06)
            assert row["analytic_ms"] == pytest.approx(
                row["paper_ms"], rel=0.25)

    def test_simulated_transfer_close_to_analytic(self):
        ms = table1_state_transfer.simulated_transfer_ms("MobileNetV2")
        result = table1_state_transfer.run(
            models=["MobileNetV2"], simulate=False)
        assert ms == pytest.approx(result.rows[0]["analytic_ms"], rel=0.02)


class TestMotivation:
    def test_majority_of_conv_kernels_register_bound(self):
        result = motivation_streams.occupancy_analysis()
        blocked = sum(1 for row in result.rows
                      if row["can_corun_with_twin"] == "no")
        assert blocked == 10          # paper: 10 of 13

    def test_two_streams_no_faster_than_sequential(self):
        result = motivation_streams.two_stream_timing()
        sequential = result.rows[0]["completion_ms"]
        concurrent = result.rows[1]["completion_ms"]
        assert concurrent >= 0.95 * sequential


class TestFig2:
    def test_corun_roughly_halves_throughput(self):
        result = fig2_timeline.run(iterations=8)
        solo = result.rows[0]["images_per_s"]
        corun = [row["images_per_s"] for row in result.rows[1:]]
        for rate in corun:
            assert 0.35 * solo < rate < 0.7 * solo
        # Heavy kernels serialize almost completely.
        assert result.rows[1]["serialization_fraction"] > 0.9

    def test_ascii_timeline_renders(self):
        art = fig2_timeline.render_timeline(window_ms=200.0, width=60)
        assert "█" in art and "░" in art


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_idle.run(iterations=12,
                             models=["ResNet50", "MobileNetV2",
                                     "NASNetMobile"])

    def test_all_headline_checks_pass(self, result):
        checks = fig3_idle.headline_checks(result)
        misses = [check for check in checks if "MISS" in check]
        assert not misses, misses

    def test_idle_fractions_are_valid_percentages(self, result):
        for row in result.rows:
            assert 0.0 <= row["gpu_idle_pct"] <= 100.0


class TestFig6:
    def test_switchflow_beats_tf_for_every_pair(self):
        result = fig6_tail_latency.run(
            requests=20,
            panels=[("VGG16", ["ResNet50"]), ("NMT-panel", ["VGG16"])])
        for row in result.rows:
            assert row["improvement_x"] > 2.0
        nmt_row = [r for r in result.rows
                   if r["inference_job"] == "NMT"][0]
        assert nmt_row["improvement_x"] > 8.0   # paper: up to 19.05x


class TestFig8:
    def test_inference_gains_exceed_training_gains(self):
        from repro.hw import TESLA_V100, single_gpu_server
        configs = [
            ("train", single_gpu_server, (TESLA_V100,), True, 32, 32),
            ("infer", single_gpu_server, (TESLA_V100,), False, 128, 32),
        ]
        result = fig8_input_reuse.run(iterations=6, models=["ResNet50"],
                                      configs=configs)
        gains = {row["panel"]: row["improvement_pct"]
                 for row in result.rows}
        assert gains["infer"] > gains["train"]
        assert gains["infer"] > 30.0


class TestFig10:
    def test_interleaving_beats_time_slicing(self):
        result = fig10_interleaving.run(iterations=6,
                                        models=["ResNet50"])
        for row in result.rows:
            assert row["improvement_pct"] > 0.0


class TestPreemptionOverhead:
    def test_latency_is_tens_of_ms(self):
        result = preemption_overhead.run(models=["VGG16"])
        row = result.rows[0]
        assert 1.0 < row["preemption_latency_ms"] < 120.0
        assert row["state_fraction_of_11gb_pct"] < 10.0


class TestRunnerCli:
    def test_list(self, capsys):
        assert runner_main(["--list"]) == 0
        assert "fig6" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert runner_main(["nope"]) == 2

    def test_runs_table1(self, capsys):
        assert runner_main(["table1", "--quick"]) == 0
        assert "Table 1" in capsys.readouterr().out
