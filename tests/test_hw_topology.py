"""Cluster topology tests: typed links, routes, gang placement, and the
cross-node sanitizer invariants.

The load-bearing property throughout: a Machine is the degenerate
one-node cluster, so everything that holds for a Cluster route holds
for the single link it wraps — and single-node behavior is unchanged.
"""

import pytest

from repro.analysis.sanitizer import (
    SanitizerConfig,
    open_span_findings,
    sanitize_trace,
)
from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    make_context,
)
from repro.core.switchflow import SwitchFlowPolicy
from repro.graph.placement import GangMember, GangScheduler
from repro.hw import (
    NETWORK_100G,
    NVLINK2,
    PCIE3_X16,
    Cluster,
    Route,
    transfer_time_ms,
    v100_cluster,
    v100_server,
)
from repro.hw.pcie import Link
from repro.models import get_model
from repro.obs.audit import decisions
from repro.sim import Engine, Interrupted, Tracer
from repro.workloads import JobSpec, run_colocation


# ---------------------------------------------------------------------------
# LinkSpec edge cases (transfer_time_ms on the new specs)
# ---------------------------------------------------------------------------
class TestClusterLinkSpecs:
    def test_zero_byte_transfer_still_pays_latency_and_setup(self):
        for spec in (NVLINK2, NETWORK_100G):
            assert transfer_time_ms(spec, 0, n_tensors=1) == \
                pytest.approx(spec.latency_ms + spec.per_tensor_overhead_ms)

    def test_zero_tensors_is_pure_latency(self):
        assert transfer_time_ms(NETWORK_100G, 0, n_tensors=0) == \
            pytest.approx(NETWORK_100G.latency_ms)

    def test_per_tensor_overhead_dominates_on_the_network(self):
        # Framing a 100-tensor model costs an order of magnitude more
        # over RoCE than over NVLink — the reason routes batch state
        # into one logical transfer instead of a message per tensor.
        nvlink = (transfer_time_ms(NVLINK2, 0, 100)
                  - transfer_time_ms(NVLINK2, 0, 1))
        network = (transfer_time_ms(NETWORK_100G, 0, 100)
                   - transfer_time_ms(NETWORK_100G, 0, 1))
        assert nvlink == pytest.approx(99 * NVLINK2.per_tensor_overhead_ms)
        assert network == pytest.approx(
            99 * NETWORK_100G.per_tensor_overhead_ms)
        assert network > 10 * nvlink

    def test_nvlink_outruns_pcie_on_bulk_payloads(self):
        nbytes = 500 * 1024 * 1024
        assert transfer_time_ms(NVLINK2, nbytes) < \
            transfer_time_ms(PCIE3_X16, nbytes)


# ---------------------------------------------------------------------------
# Route
# ---------------------------------------------------------------------------
class TestRoute:
    def _cluster(self):
        engine = Engine()
        return engine, v100_cluster(engine, 2, 2)

    def test_route_must_be_contiguous(self):
        engine = Engine()
        a_b = Link(engine, PCIE3_X16, "a", "b")
        c_d = Link(engine, PCIE3_X16, "c", "d")
        with pytest.raises(ValueError, match="not contiguous"):
            Route(engine, [a_b, c_d])
        with pytest.raises(ValueError, match="at least one link"):
            Route(engine, [])

    def test_same_node_route_is_the_direct_link(self):
        _engine, cluster = self._cluster()
        route = cluster.route("node0/gpu0", "node0/gpu1")
        assert route.hops == 1
        assert route.path == ("node0/gpu0", "node0/gpu1")
        assert route.links[0] is cluster.link("node0/gpu0", "node0/gpu1")
        assert route.links[0].spec is NVLINK2

    def test_cross_node_route_stages_through_both_cpus(self):
        _engine, cluster = self._cluster()
        route = cluster.route("node0/gpu0", "node1/gpu1")
        assert route.hops == 3
        assert route.path == ("node0/gpu0", "node0/cpu", "node1/cpu",
                              "node1/gpu1")
        assert route.describe() == \
            "node0/gpu0->node0/cpu->node1/cpu->node1/gpu1"
        specs = [link.spec for link in route.links]
        assert specs == [PCIE3_X16, NETWORK_100G, PCIE3_X16]

    def test_cpu_endpoints_drop_their_pcie_legs(self):
        _engine, cluster = self._cluster()
        assert cluster.route("node0/cpu", "node1/gpu0").hops == 2
        assert cluster.route("node0/cpu", "node1/cpu").hops == 1
        assert cluster.route("node0/cpu", "node1/cpu").links[0].spec \
            is NETWORK_100G

    def test_routes_are_cached(self):
        _engine, cluster = self._cluster()
        assert cluster.route("node0/gpu0", "node1/gpu1") is \
            cluster.route("node0/gpu0", "node1/gpu1")

    def test_cost_is_the_sum_of_hops(self):
        _engine, cluster = self._cluster()
        route = cluster.route("node0/gpu0", "node1/gpu1")
        nbytes, n_tensors = 10_000_000, 7
        expected = sum(transfer_time_ms(link.spec, nbytes, n_tensors)
                       for link in route.links)
        assert route.cost_ms(nbytes, n_tensors) == pytest.approx(expected)
        assert cluster.route_cost_ms("node0/gpu0", "node1/gpu1", nbytes,
                                     n_tensors) == pytest.approx(expected)

    def test_multi_hop_transfer_serializes_hops(self):
        engine, cluster = self._cluster()
        route = cluster.route("node0/gpu0", "node1/gpu0")
        nbytes = 50_000_000
        done = route.transfer(nbytes, n_tensors=3, label="state/job")

        def waiter(env):
            stats = yield done
            return stats

        process = engine.process(waiter(engine))
        stats = engine.run(until=process)
        assert stats.nbytes == nbytes
        assert stats.duration_ms == pytest.approx(
            route.cost_ms(nbytes, 3))
        assert engine.now == pytest.approx(route.cost_ms(nbytes, 3))
        # Each hop moved the full payload through its own link.
        for link in route.links:
            assert link.bytes_moved == nbytes
            assert link.transfers_completed == 1

    def test_single_hop_transfer_is_transcript_identical_to_the_link(self):
        # A 1-hop route must delegate verbatim: same spans, same lanes.
        def spans(use_route):
            engine = Engine()
            cluster = v100_cluster(engine, 1, 2)
            link = cluster.link("node0/gpu0", "node0/gpu1")
            source = (cluster.route("node0/gpu0", "node0/gpu1")
                      if use_route else link)
            done = source.transfer(1_000_000, n_tensors=2, label="x")

            def waiter(env):
                yield done

            engine.run(until=engine.process(waiter(engine)))
            return cluster.tracer.to_rows(), engine.now

        assert spans(True) == spans(False)


# ---------------------------------------------------------------------------
# Cluster addressing and the degenerate Machine surface
# ---------------------------------------------------------------------------
class TestClusterAddressing:
    def test_canonical_device_names(self):
        engine = Engine()
        cluster = v100_cluster(engine, 2, 2)
        assert [d.name for d in cluster.devices] == [
            "node0/cpu", "node1/cpu",
            "node0/gpu0", "node0/gpu1", "node1/gpu0", "node1/gpu1"]
        assert cluster.cpu.name == "node0/cpu"
        assert cluster.gpu(2).name == "node1/gpu0"
        assert isinstance(cluster, Cluster)

    def test_device_lookup_and_errors(self):
        engine = Engine()
        cluster = v100_cluster(engine, 2, 1)
        assert cluster.device("node1/gpu0") is cluster.gpu(1)
        with pytest.raises(KeyError, match="no device named 'node2/gpu0'"):
            cluster.device("node2/gpu0")
        with pytest.raises(KeyError, match="no device named"):
            cluster.route("node0/gpu0", "nowhere")
        with pytest.raises(KeyError, match="no link"):
            cluster.link("node0/gpu0", "node1/gpu0")   # not directly linked

    def test_node_queries(self):
        engine = Engine()
        cluster = v100_cluster(engine, 2, 2)
        assert cluster.node_name_of("node1/gpu0") == "node1"
        assert cluster.same_node("node0/gpu0", "node0/cpu")
        assert not cluster.same_node("node0/gpu0", "node1/gpu0")
        assert cluster.host_cpu("node1/gpu1").name == "node1/cpu"
        assert cluster.host_cpu("node1/cpu").name == "node1/cpu"

    def test_builder_validates_shape(self):
        with pytest.raises(ValueError):
            v100_cluster(Engine(), 0, 2)
        with pytest.raises(ValueError):
            v100_cluster(Engine(), 1, 0)

    def test_machine_is_the_degenerate_cluster(self):
        engine = Engine()
        machine = v100_server(engine, 2)
        gpu0, gpu1 = (g.name for g in machine.gpus)
        assert machine.same_node(gpu0, gpu1)
        assert machine.node_name_of(gpu0) == "node0"
        assert machine.node_of(gpu0) is machine
        assert machine.host_cpu(gpu0) is machine.cpu
        route = machine.route(gpu0, gpu1)
        assert route.hops == 1
        assert route.links[0] is machine.link(gpu0, gpu1)
        assert machine.route(gpu0, gpu1) is route   # cached
        assert machine.route_cost_ms(gpu0, gpu1, 1000, 2) == \
            pytest.approx(transfer_time_ms(route.links[0].spec, 1000, 2))
        with pytest.raises(KeyError, match="no device named"):
            machine.same_node(gpu0, "node7/gpu9")

    def test_machine_device_dict_matches_scan(self):
        engine = Engine()
        machine = v100_server(engine, 4)
        for device in machine.devices:
            assert machine.device(device.name) is device


# ---------------------------------------------------------------------------
# Span hygiene on interrupted transfers (regression: the Link span leak)
# ---------------------------------------------------------------------------
class TestInterruptedTransferSpans:
    def test_interrupted_transfer_leaves_no_open_span(self):
        engine = Engine()
        tracer = Tracer(engine)
        link = Link(engine, PCIE3_X16, "a", "b", tracer=tracer)
        done = engine.event()
        duration = transfer_time_ms(PCIE3_X16, 10_000_000)

        def doomed(env):
            try:
                yield from link._run(done, 10_000_000, 1, "memcpy")
            except Interrupted:
                pass

        victim = engine.process(doomed(engine), name="xfer")

        def killer(env):
            yield env.timeout(duration / 2)
            victim.interrupt("fault mid-transfer")

        engine.process(killer(engine))
        engine.run()
        assert not done.triggered
        assert link.transfers_completed == 0
        assert open_span_findings(tracer) == []
        # The span was closed at interrupt time, not dropped entirely.
        rows = tracer.to_rows()
        assert len(rows) == 1
        assert rows[0]["end"] == pytest.approx(duration / 2)

    def test_interrupted_transfer_releases_the_link(self):
        engine = Engine()
        link = Link(engine, PCIE3_X16, "a", "b")
        first = engine.event()

        def doomed(env):
            try:
                yield from link._run(first, 10_000_000, 1, "m")
            except Interrupted:
                pass

        victim = engine.process(doomed(engine))

        def killer(env):
            yield env.timeout(0.1)
            victim.interrupt("die")

        def retry(env):
            yield env.timeout(0.2)
            stats = yield link.transfer(1000)
            return stats

        engine.process(killer(engine))
        process = engine.process(retry(engine))
        stats = engine.run(until=process)
        # The follow-up transfer went through: the lock was not leaked.
        assert stats.nbytes == 1000
        assert link.transfers_completed == 1


# ---------------------------------------------------------------------------
# Route-cost ordering in the migration target
# ---------------------------------------------------------------------------
class TestMigrationTargetRouteOrdering:
    def _policy(self, cluster_shape=(2, 2)):
        ctx = make_context(v100_cluster, *cluster_shape, seed=3)
        return ctx, SwitchFlowPolicy(ctx)

    def _victim(self, ctx, device):
        return JobHandle(name="victim", model=get_model("MobileNetV2"),
                         batch=8, training=True, priority=PRIORITY_LOW,
                         preferred_device=device)

    def test_same_node_gpu_beats_cross_node(self):
        ctx, policy = self._policy()
        victim = self._victim(ctx, "node0/gpu0")
        target, rejected = policy._migration_target(victim, "node0/gpu0")
        assert target == "node0/gpu1"
        reasons = {r["device"]: r["why"] for r in rejected}
        assert "route cost" in reasons["node1/gpu0"]
        assert "node0/gpu1" in reasons["node1/gpu0"]
        assert "route cost" in reasons["node1/gpu1"]

    def test_remote_candidates_rank_by_route_cost(self):
        # From node1's GPU the cheap target is the node1 sibling, even
        # though node0's GPUs are identical hardware.
        ctx, policy = self._policy()
        victim = self._victim(ctx, "node1/gpu1")
        target, _rejected = policy._migration_target(victim, "node1/gpu1")
        assert target == "node1/gpu0"

    def test_single_node_keeps_pre_topology_reasons(self):
        # Equal-cost candidates fall back to the old "slower than
        # chosen" wording: no route costs surface on one node.
        ctx, policy = self._policy(cluster_shape=(1, 3))
        victim = self._victim(ctx, "node0/gpu0")
        target, rejected = policy._migration_target(victim, "node0/gpu0")
        assert target == "node0/gpu1"
        assert [r["why"] for r in rejected] == ["slower than chosen"]

    def test_held_same_node_gate_loses_to_free_remote_gpu(self):
        ctx, policy = self._policy()
        holder = JobHandle(name="holder", model=get_model("MobileNetV2"),
                           batch=8, training=True, priority=PRIORITY_HIGH,
                           preferred_device="node0/gpu1")
        policy.gates["node0/gpu1"].holder = holder
        victim = self._victim(ctx, "node0/gpu0")
        target, rejected = policy._migration_target(victim, "node0/gpu0")
        assert target == "node1/gpu0"
        reasons = {r["device"]: r["why"] for r in rejected}
        assert reasons["node0/gpu1"] == "held by higher priority"


# ---------------------------------------------------------------------------
# Gang scheduler
# ---------------------------------------------------------------------------
GIB = 1024 ** 3


def member(job, memory_gib, state_gib=0.1, critical_path_ms=10.0):
    return GangMember(job=job, memory_bytes=int(memory_gib * GIB),
                      state_bytes=int(state_gib * GIB), n_tensors=10,
                      critical_path_ms=critical_path_ms)


class TestGangScheduler:
    def _cluster(self, n_nodes=2, gpus=2):
        engine = Engine()
        return v100_cluster(engine, n_nodes, gpus)

    def test_gang_co_locates_on_one_node(self):
        scheduler = GangScheduler(self._cluster())
        placements = scheduler.place_gang(
            [member("a", 4), member("b", 4)])
        assert len({p.node for p in placements}) == 1
        assert not any(p.spilled for p in placements)
        assert {p.device for p in placements} <= \
            {f"{placements[0].node}/gpu0", f"{placements[0].node}/gpu1"}

    def test_second_gang_lands_on_the_emptier_node(self):
        scheduler = GangScheduler(self._cluster())
        first = scheduler.place_gang([member("a", 4, state_gib=8.0)])
        second = scheduler.place_gang([member("b", 4, state_gib=8.0)])
        assert first[0].node != second[0].node

    def test_spill_only_when_off_the_critical_path(self):
        # Home node full; the member's critical path is long enough to
        # hide the network copy -> spill.
        cluster = self._cluster()
        scheduler = GangScheduler(cluster)
        # a and b park 20 GiB of persistent state on each home GPU, so
        # c (20 GiB footprint) no longer fits there; c's own state is
        # tiny and its critical path long, so the network copy hides.
        gang = [member("a", 20, state_gib=20.0),
                member("b", 20, state_gib=20.0),
                member("c", 20, state_gib=0.01, critical_path_ms=1000.0)]
        placements = scheduler.place_gang(gang)
        assert [p.spilled for p in placements] == [False, False, True]
        assert placements[2].node != placements[0].node
        assert "off-path spill" in placements[2].reason

    def test_on_path_transfer_stacks_instead_of_spilling(self):
        cluster = self._cluster()
        scheduler = GangScheduler(cluster)
        # Same shape, but a tiny critical path: the network transfer
        # would be on-path, so the member time-shares the home node.
        gang = [member("a", 20, state_gib=20.0),
                member("b", 20, state_gib=20.0),
                member("c", 20, state_gib=0.01, critical_path_ms=0.01)]
        placements = scheduler.place_gang(gang)
        assert not placements[2].spilled
        assert placements[2].node == placements[0].node
        assert "stacked on home node" in placements[2].reason

    def test_placements_emit_audit_decisions(self):
        ctx = make_context(v100_cluster, 2, 2, seed=0)
        scheduler = GangScheduler(ctx.machine, runlog=ctx.runlog)
        scheduler.place([[member("a", 4), member("b", 4)]])
        placed = decisions(ctx.runlog.records, kind="gang_place")
        assert [d["job"] for d in placed] == ["a", "b"]
        assert all(d["node"] == placed[0]["node"] for d in placed)
        assert placed[1]["rejected"] == [
            {"device": placed[0]["chosen"],
             "why": "less free memory than chosen"}]

    def test_machine_degenerate_case_always_co_locates(self):
        engine = Engine()
        scheduler = GangScheduler(v100_server(engine, 2))
        placements = scheduler.place_gang(
            [member("a", 4), member("b", 4), member("c", 40)])
        assert all(p.node == "node0" for p in placements)
        assert not any(p.spilled for p in placements)

    def test_empty_gang_and_no_gpus_are_handled(self):
        engine = Engine()
        scheduler = GangScheduler(v100_server(engine, 2))
        assert scheduler.place_gang([]) == []
        cpu_only = v100_cluster(Engine(), 1, 1)
        cpu_only.nodes[0].gpus.clear()
        with pytest.raises(ValueError, match="no GPUs"):
            GangScheduler(cpu_only).place_gang([member("a", 1)])


# ---------------------------------------------------------------------------
# Cross-node sanitizer invariants
# ---------------------------------------------------------------------------
class TestRoutePlacementCheck:
    DEVICES = {"node0/cpu", "node1/cpu", "node0/gpu0", "node1/gpu0"}

    def _report(self, records):
        return sanitize_trace([], records=records,
                              known_devices=self.DEVICES)

    def test_consistent_transfer_chain_is_clean(self):
        records = [
            {"event": "state_transfer_start", "t_ms": 1.0, "job": "j",
             "src": "node0/gpu0", "dst": "node1/gpu0",
             "route": "node0/gpu0->node0/cpu->node1/cpu->node1/gpu0",
             "hops": 3},
            {"event": "state_transfer_done", "t_ms": 5.0, "job": "j",
             "src": "node0/gpu0", "dst": "node1/gpu0"},
            {"event": "state_transfer_start", "t_ms": 9.0, "job": "j",
             "src": "node1/gpu0", "dst": "node0/gpu0"},
        ]
        assert not self._report(records).by_check("route-placement")

    def test_departure_from_wrong_device_is_an_error(self):
        records = [
            {"event": "state_transfer_done", "t_ms": 5.0, "job": "j",
             "src": "node0/gpu0", "dst": "node1/gpu0"},
            {"event": "state_transfer_start", "t_ms": 9.0, "job": "j",
             "src": "node0/gpu0", "dst": "node0/cpu"},
        ]
        findings = self._report(records).by_check("route-placement")
        assert len(findings) == 1
        assert "last recorded on 'node1/gpu0'" in findings[0].message

    def test_route_must_join_the_endpoints(self):
        records = [{
            "event": "state_transfer_start", "t_ms": 1.0, "job": "j",
            "src": "node0/gpu0", "dst": "node1/gpu0",
            "route": "node0/gpu0->node0/cpu->node1/cpu", "hops": 2}]
        findings = self._report(records).by_check("route-placement")
        assert len(findings) == 1
        assert "does not join" in findings[0].message

    def test_hop_count_must_match_the_path(self):
        records = [{
            "event": "state_transfer_start", "t_ms": 1.0, "job": "j",
            "src": "node0/gpu0", "dst": "node1/gpu0",
            "route": "node0/gpu0->node0/cpu->node1/cpu->node1/gpu0",
            "hops": 2}]
        findings = self._report(records).by_check("route-placement")
        assert len(findings) == 1
        assert "claims 2" in findings[0].message

    def test_unknown_endpoint_and_waypoint_are_errors(self):
        records = [{
            "event": "state_transfer_start", "t_ms": 1.0, "job": "j",
            "src": "node0/gpu0", "dst": "node9/gpu0",
            "route": "node0/gpu0->node9/cpu->node9/gpu0", "hops": 2}]
        messages = [f.message for f in
                    self._report(records).by_check("route-placement")]
        assert any("unknown device 'node9/gpu0'" in m for m in messages)
        assert any("stages through unknown device 'node9/cpu'" in m
                   for m in messages)

    def test_check_can_be_disabled(self):
        records = [{
            "event": "state_transfer_start", "t_ms": 1.0, "job": "j",
            "src": "bogus", "dst": "also-bogus"}]
        config = SanitizerConfig(check_routes=False)
        report = sanitize_trace([], records=records, config=config,
                                known_devices=self.DEVICES)
        assert not report.by_check("route-placement")


# ---------------------------------------------------------------------------
# End-to-end: a two-node colocation run exercises all of the above
# ---------------------------------------------------------------------------
class TestClusterEndToEnd:
    def test_cross_node_migrations_cost_more_and_sanitize_clean(self):
        from repro.analysis.sanitizer import sanitize_run

        ctx = make_context(v100_cluster, 2, 2, seed=3)
        machine = ctx.machine
        trainers = [
            JobSpec(job=JobHandle(name=f"bg{i}", model=get_model("ResNet50"),
                                  batch=16, training=True,
                                  priority=PRIORITY_LOW,
                                  preferred_device=gpu.name),
                    iterations=100_000, background=True)
            for i, gpu in enumerate(machine.gpus)]
        streams = [
            JobSpec(job=JobHandle(name=f"fg{i}", model=get_model("MobileNetV2"),
                                  batch=1, training=False,
                                  priority=PRIORITY_HIGH,
                                  preferred_device=machine.gpus[i].name),
                    iterations=4, start_delay_ms=500.0 + 20.0 * i)
            for i in range(2)]
        policy_holder = {}

        def factory(context):
            policy_holder["policy"] = SwitchFlowPolicy(context)
            return policy_holder["policy"]

        result = run_colocation(ctx, factory, trainers + streams)
        assert not result.crashed_jobs()
        assert policy_holder["policy"].preemptions >= 1

        done = [r for r in ctx.runlog.records
                if r.get("event") == "state_transfer_done"]
        same = [r["transfer_ms"] for r in done
                if machine.same_node(r["src"], r["dst"])]
        cross = [r["transfer_ms"] for r in done
                 if not machine.same_node(r["src"], r["dst"])]
        assert same and cross, "expected both route classes to occur"
        assert min(cross) > max(same)

        # Multi-hop transfers carry their route, and it sanitizes clean
        # (route placement + per-node memory ceilings included).
        starts = [r for r in ctx.runlog.records
                  if r.get("event") == "state_transfer_start"
                  and "route" in r]
        assert any(r["hops"] == 3 for r in starts)
        report = sanitize_run(ctx, policy=policy_holder["policy"])
        assert not report.has_errors, [f.message for f in report.errors]
