"""Tests for the run-report CLI and the end-to-end instrumentation.

These execute small registered workloads and assert that the runtime's
hot paths actually publish into the shared metrics registry / run log —
the contract the report and the experiments rely on.
"""

import json

import pytest

from repro.obs.report import WORKLOADS, main, register_workload, run_summary


@pytest.fixture(scope="module")
def fig2_ctx():
    return WORKLOADS["fig2"](0, 4)


@pytest.fixture(scope="module")
def switchflow_ctx():
    return WORKLOADS["fig2-switchflow"](0, 4)


@pytest.fixture(scope="module")
def preemption_ctx():
    return WORKLOADS["preemption"](0, 4)


class TestInstrumentation:
    def test_gate_wait_recorded_by_switchflow(self, switchflow_ctx):
        metrics = switchflow_ctx.metrics
        family = metrics.get("sched.gate_wait_ms")
        assert family is not None and family.total() > 0
        # Two serialized jobs: someone waited a strictly positive time.
        assert family.quantile(95) > 0.0

    def test_acquire_wait_recorded_for_ungated_policy(self, fig2_ctx):
        # Multi-threaded TF has no device gates, but the driver-level
        # acquire-wait histogram must still be populated.
        assert fig2_ctx.metrics.get("sched.gate_wait_ms") is None
        assert fig2_ctx.metrics.value("sched.acquire_wait_ms") > 0

    def test_gpu_collector_gauges(self, fig2_ctx):
        metrics = fig2_ctx.metrics
        gpu = fig2_ctx.machine.gpu(0)
        busy = metrics.value("gpu.busy_fraction", device=gpu.name)
        assert 0.0 < busy <= 1.0
        assert metrics.value("gpu.kernels_total", device=gpu.name) > 0
        assert metrics.value("mem.high_water_bytes", device=gpu.name) > 0

    def test_pool_and_job_metrics(self, fig2_ctx):
        metrics = fig2_ctx.metrics
        assert metrics.value("pool.tasks_total") > 0
        assert metrics.value("job.iteration_ms", job="resnet50-0") == 4
        assert metrics.quantile("job.iteration_ms", 50) > 0

    def test_runlog_narrates_job_lifecycle(self, fig2_ctx):
        assert fig2_ctx.runlog.count("job_started") == 2
        assert fig2_ctx.runlog.count("job_finished") == 2

    def test_preemption_publishes_metrics_and_log(self, preemption_ctx):
        metrics = preemption_ctx.metrics
        assert metrics.value("sched.preemptions") >= 1
        assert metrics.value("sched.migrations") >= 1
        assert metrics.value("rm.transfers_total") >= 1
        assert len(metrics.get("rm.transfer_ms").all_samples()) >= 1
        decisions = preemption_ctx.runlog.filter("preempt")
        assert decisions and decisions[0]["victim"] == "victim"
        assert preemption_ctx.runlog.count("state_transfer_done") >= 1

    def test_no_leaked_spans_after_run(self, fig2_ctx, preemption_ctx):
        fig2_ctx.tracer.assert_all_closed()
        preemption_ctx.tracer.assert_all_closed()


class TestRunSummary:
    def test_summary_sections(self, preemption_ctx):
        text = run_summary(preemption_ctx, width=80)
        assert "preemptions:" in text
        assert "gate-wait" in text and "p95=" in text
        assert "abort-drain" in text
        assert "state transfer" in text
        assert "GPU timeline" in text
        for gpu in preemption_ctx.machine.gpus:
            assert gpu.name in text

    def test_summary_falls_back_without_gates(self, fig2_ctx):
        text = run_summary(fig2_ctx, width=80)
        assert "no device gates" in text
        assert "busy" in text

    def test_summary_only_reads_shared_surfaces(self, switchflow_ctx):
        # The report must work from (metrics, runlog, tracer, machine)
        # alone -- no experiment internals.
        text = run_summary(switchflow_ctx, width=60)
        assert "jobs" in text
        assert "resnet50-0" in text


class TestCli:
    def test_list_workloads(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig2-switchflow", "preemption", "serve"):
            assert name in out

    def test_no_workload_defaults_to_list(self, capsys):
        assert main([]) == 0
        assert "registered workloads" in capsys.readouterr().out

    def test_report_with_exports(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main(["--workload", "fig2", "--iterations", "2",
                     "--chrome-trace", str(trace_path),
                     "--jsonl", str(jsonl_path),
                     "--metrics-json", str(metrics_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "run report: fig2" in out
        assert "per-GPU" in out
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"]
        for line in jsonl_path.read_text().splitlines():
            assert "t_ms" in json.loads(line)
        snapshot = json.loads(metrics_path.read_text())
        assert "job.iteration_ms" in snapshot

    def test_register_workload(self):
        sentinel = object()
        register_workload("_test", lambda seed, iterations: sentinel)
        try:
            assert WORKLOADS["_test"](0, 1) is sentinel
        finally:
            del WORKLOADS["_test"]
