"""FaultPlan DSL: parsing, validation, scaling, and serialization."""

from pathlib import Path

import pytest

from repro.faults import (
    CLOCK_KINDS,
    KINDS,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RecoveryConfig,
    Trigger,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_minimal_plan_parses():
    plan = FaultPlan.from_dict({
        "faults": [{"kind": "kernel_stall",
                    "trigger": {"probability": 0.1}}],
    })
    assert len(plan.faults) == 1
    spec = plan.faults[0]
    assert spec.kind == "kernel_stall"
    assert spec.trigger.probability == 0.1
    assert spec.job == "*" and spec.device == "*"
    assert plan.recovery == RecoveryConfig()


def test_empty_plan_is_valid():
    plan = FaultPlan.from_dict({})
    assert plan.faults == []


def test_specs_are_reindexed_in_plan_order():
    plan = FaultPlan(faults=[
        FaultSpec(kind="job_crash", trigger=Trigger(probability=0.5),
                  index=99),
        FaultSpec(kind="transfer_fail", trigger=Trigger(every_n=3),
                  index=99),
    ])
    assert [spec.index for spec in plan.faults] == [0, 1]
    assert plan.faults[0].stream_name() == "faults:0:job_crash"
    assert plan.faults[1].stream_name() == "faults:1:transfer_fail"


@pytest.mark.parametrize("payload,fragment", [
    ({"faults": [{"kind": "nope", "trigger": {"at_ms": 1}}]},
     "unknown kind"),
    ({"faults": [{"kind": "job_crash", "trigger": {}}]},
     "exactly one"),
    ({"faults": [{"kind": "job_crash",
                  "trigger": {"at_ms": 1, "every_n": 2}}]},
     "exactly one"),
    ({"faults": [{"kind": "job_crash",
                  "trigger": {"probability": 1.5}}]},
     "probability"),
    ({"faults": [{"kind": "kernel_stall", "trigger": {"every_ms": 5}}]},
     "clock-scoped"),
    ({"faults": [{"kind": "device_oom",
                  "trigger": {"probability": 0.5}}]},
     "at_ms or every_ms"),
    ({"faults": [{"kind": "device_oom", "trigger": {"at_ms": 1},
                  "fraction": 1.5}]},
     "fraction"),
    ({"faults": [{"kind": "job_crash", "trigger": {"at_ms": 1},
                  "on": "sometimes"}]},
     "'iteration' or 'preempt'"),
    ({"faults": [{"kind": "job_crash", "trigger": {"at_ms": 1},
                  "bogus": 1}]},
     "bad fault fields"),
    ({"recovery": {"checkpoint_interval": 0}},
     "checkpoint_interval"),
    ({"recovery": {"degrade_after": 0}}, "degrade_after"),
    ({"surprise": 1}, "unknown top-level"),
    ({"faults": [{"trigger": {"at_ms": 1}}]}, "missing 'kind'"),
    ({"faults": [{"kind": "job_crash"}]}, "'trigger' object"),
])
def test_invalid_plans_are_rejected(payload, fragment):
    with pytest.raises(FaultPlanError, match=fragment):
        FaultPlan.from_dict(payload)


def test_loads_rejects_bad_json():
    with pytest.raises(FaultPlanError, match="not valid JSON"):
        FaultPlan.loads("{nope")


def test_load_missing_file():
    with pytest.raises(FaultPlanError, match="cannot read"):
        FaultPlan.load("/nonexistent/faults.json")


def test_round_trip_preserves_plan(tmp_path):
    plan = FaultPlan.load(EXAMPLES / "faults_basic.json")
    path = tmp_path / "plan.json"
    plan.save(path)
    again = FaultPlan.load(path)
    assert again.to_dict() == plan.to_dict()


@pytest.mark.parametrize("example", ["faults_basic.json",
                                     "faults_crash_on_preempt.json"])
def test_shipped_examples_are_valid(example):
    plan = FaultPlan.load(EXAMPLES / example)
    assert plan.faults
    for spec in plan.faults:
        assert spec.kind in KINDS


def test_scaled_zero_removes_all_faults():
    plan = FaultPlan.load(EXAMPLES / "faults_basic.json")
    control = plan.scaled(0.0)
    assert control.faults == []
    assert control.recovery == plan.recovery


def test_scaled_adjusts_each_trigger_shape():
    plan = FaultPlan(faults=[
        FaultSpec(kind="kernel_stall", trigger=Trigger(probability=0.4)),
        FaultSpec(kind="kernel_slowdown", trigger=Trigger(every_n=10)),
        FaultSpec(kind="spurious_preempt",
                  trigger=Trigger(every_ms=100.0)),
        FaultSpec(kind="device_oom", trigger=Trigger(at_ms=50.0)),
    ])
    doubled = plan.scaled(2.0)
    assert doubled.faults[0].trigger.probability == 0.8
    assert doubled.faults[1].trigger.every_n == 5
    assert doubled.faults[2].trigger.every_ms == 50.0
    assert doubled.faults[3].trigger.at_ms == 50.0  # one-shots unscaled
    # Probabilities cap at 1; every_n never drops below 1.
    extreme = plan.scaled(100.0)
    assert extreme.faults[0].trigger.probability == 1.0
    assert extreme.faults[1].trigger.every_n == 1


def test_scaled_negative_rate_rejected():
    with pytest.raises(FaultPlanError, match="rate"):
        FaultPlan().scaled(-1.0)


def test_clock_kinds_partition():
    assert set(KINDS) == set(CLOCK_KINDS) | {
        "kernel_stall", "kernel_slowdown", "transfer_fail", "job_crash"}
