"""Hypothesis property tests on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.graph import Graph, OpDef, OpKind, gpu_kernel_cost
from repro.hw import MemoryPool, OutOfMemoryError, TESLA_V100
from repro.metrics import percentile
from repro.sim import Engine, Span, Store, Tracer
from repro.sim.rng import derive_seed


# ---------------------------------------------------------------------------
# Percentiles
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_sample_range(samples, pct):
    value = percentile(samples, pct)
    assert min(samples) <= value <= max(samples)


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1))
def test_percentile_monotone_in_pct(samples):
    points = [percentile(samples, p) for p in (0, 25, 50, 75, 95, 100)]
    assert points == sorted(points)


# ---------------------------------------------------------------------------
# Memory allocator
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.sampled_from("abc"),
                          st.integers(min_value=0, max_value=400)),
                max_size=40))
def test_memory_pool_conservation(operations):
    pool = MemoryPool("gpu", 1000)
    live = []
    for owner, nbytes in operations:
        try:
            live.append(pool.allocate(owner, "t", nbytes))
        except OutOfMemoryError:
            if live:
                pool.free(live.pop(0))
    assert pool.used_bytes == sum(r.nbytes for r in live)
    assert 0 <= pool.used_bytes <= pool.capacity_bytes
    assert pool.high_water_mark <= pool.capacity_bytes
    for record in live:
        pool.free(record)
    assert pool.used_bytes == 0


# ---------------------------------------------------------------------------
# Store FIFO
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_order(items):
    engine = Engine()
    store = Store(engine)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            received.append((yield store.get()))  # noqa: PERF401

    engine.process(producer(engine))
    engine.process(consumer(engine))
    engine.run()
    assert received == items


# ---------------------------------------------------------------------------
# Tracer busy time
# ---------------------------------------------------------------------------
interval = st.tuples(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=100, allow_nan=False),
).map(lambda pair: (pair[0], pair[0] + pair[1]))


@given(st.lists(interval, max_size=30))
def test_busy_time_bounded_by_span_sum_and_window(intervals):
    engine = Engine()
    tracer = Tracer(engine)
    for start, end in intervals:
        tracer.record(Span("lane", "x", start, end))
    busy = tracer.busy_time("lane", 0.0, 1100.0)
    total = sum(end - start for start, end in intervals)
    assert 0.0 <= busy <= total + 1e-6
    assert busy <= 1100.0
    if intervals:
        longest = max(end - start for start, end in intervals)
        assert busy >= longest - 1e-6


# ---------------------------------------------------------------------------
# Graph invariants
# ---------------------------------------------------------------------------
@given(st.lists(st.lists(st.integers(min_value=0, max_value=19),
                         max_size=3), min_size=1, max_size=20))
def test_layered_graph_topological_order_is_consistent(edge_choices):
    """Random DAGs built by only wiring to earlier nodes stay acyclic."""
    graph = Graph("random")
    nodes = []
    for index, parents in enumerate(edge_choices):
        inputs = [nodes[p % len(nodes)] for p in parents] if nodes else []
        nodes.append(graph.add_node(
            OpDef(name=f"n{index}", kind=OpKind.ELEMENTWISE),
            inputs=inputs))
    order = graph.topological_order()
    assert len(order) == len(nodes)
    position = {node.node_id: i for i, node in enumerate(order)}
    for node in graph:
        for successor in graph.successors(node):
            assert position[node.node_id] < position[successor.node_id]


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------
@given(st.floats(min_value=0, max_value=1e13, allow_nan=False),
       st.integers(min_value=0, max_value=10 ** 9))
def test_gpu_cost_is_positive_and_monotone_in_flops(flops, nbytes):
    op_small = OpDef(name="a", kind=OpKind.MATMUL, flops=flops,
                     input_bytes=nbytes)
    op_large = OpDef(name="b", kind=OpKind.MATMUL, flops=flops * 2,
                     input_bytes=nbytes)
    cost_small = gpu_kernel_cost(op_small, TESLA_V100)
    cost_large = gpu_kernel_cost(op_large, TESLA_V100)
    assert cost_small.work_ms > 0
    assert cost_large.work_ms >= cost_small.work_ms
    assert 0 < cost_small.occupancy <= 1.0


# ---------------------------------------------------------------------------
# Seed derivation
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2 ** 32), st.text(max_size=30))
def test_derive_seed_stable_and_bounded(root, name):
    first = derive_seed(root, name)
    assert first == derive_seed(root, name)
    assert 0 <= first < 2 ** 64


# ---------------------------------------------------------------------------
# Engine: event ordering under random timeouts
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                min_size=1, max_size=30))
@settings(max_examples=50)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        engine.process(waiter(engine, delay))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert math.isclose(engine.now, max(delays))
