"""Fault injection end-to-end: every kind fires deterministically,
the runtime recovers, and the sanitizer stays clean throughout."""

from collections import Counter

import pytest

from repro.analysis.sanitizer import sanitize_run
from repro.baselines import MultiThreadedTF
from repro.core import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    JobHandle,
    make_context,
)
from repro.core.switchflow import SwitchFlowPolicy
from repro.faults import FaultPlan
from repro.hw import v100_server
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation


def run_faulted(plan_payload, policy=SwitchFlowPolicy, seed=7,
                bg_iters=6, fg_iters=3):
    """The standard two-job preempting workload, under a fault plan."""
    plan = FaultPlan.from_dict(plan_payload)
    ctx = make_context(v100_server, 2, seed=seed, fault_plan=plan)
    gpu = ctx.machine.gpu(0).name
    specs = [
        JobSpec(job=JobHandle(name="bg", model=get_model("ResNet50"),
                              batch=8, training=True,
                              priority=PRIORITY_LOW,
                              preferred_device=gpu),
                iterations=bg_iters),
        JobSpec(job=JobHandle(name="fg", model=get_model("MobileNetV2"),
                              batch=8, training=False,
                              priority=PRIORITY_HIGH,
                              preferred_device=gpu),
                iterations=fg_iters, start_delay_ms=30.0),
    ]
    result = run_colocation(ctx, policy, specs)
    return ctx, result


def events_of(ctx):
    return Counter(record.get("event") for record in ctx.runlog.records)


# ---------------------------------------------------------------------------
# Site-scoped kinds
# ---------------------------------------------------------------------------
def test_kernel_slowdown_every_n_fires_and_slows():
    plan = {"faults": [{"kind": "kernel_slowdown",
                        "trigger": {"every_n": 1}, "factor": 3.0}]}
    ctx, result = run_faulted(plan)
    baseline_ctx, baseline = run_faulted({})
    injected = ctx.metrics.value("faults.injected_total")
    kernels = ctx.metrics.value("gpu.kernels_total")
    # every_n=1 matches every GPU kernel launch site.
    assert injected > 0
    assert injected >= kernels * 0.5  # retries/aborts may skew counts
    # 3x kernels must push the simulated finish time out.
    assert ctx.engine.now > baseline_ctx.engine.now
    assert not result.crashed_jobs()


def test_kernel_stall_adds_latency_and_degrades_device():
    plan = {"faults": [{"kind": "kernel_stall",
                        "trigger": {"every_n": 1}, "stall_ms": 2.0}],
            "recovery": {"degrade_after": 3}}
    ctx, _result = run_faulted(plan)
    assert ctx.metrics.value("faults.injected_total") >= 3
    # Stalls are a degrading kind: the hammered GPU must trip the
    # threshold and be marked degraded.
    assert ctx.faults.degradation.degraded_devices()
    assert ctx.metrics.value("faults.degraded_total") >= 1


def test_transfer_fail_once_recovers_via_retry():
    plan = {"faults": [{"kind": "transfer_fail",
                        "trigger": {"at_ms": 0.0}}]}
    ctx, result = run_faulted(plan)
    counts = events_of(ctx)
    assert counts["fault_injected"] == 1
    assert counts["fault_recovered"] == 1
    assert counts["state_transfer_done"] >= 1
    assert ctx.metrics.value("faults.recovered_total") == 1
    assert not result.crashed_jobs()


def test_transfer_fail_exhaustion_readmits_victim():
    plan = {"faults": [{"kind": "transfer_fail",
                        "trigger": {"every_n": 1}}],
            "recovery": {"transfer_retries": 2, "degrade_after": 100}}
    ctx, result = run_faulted(plan)
    counts = events_of(ctx)
    assert counts["migration_failed"] >= 1
    assert counts["victim_readmitted"] >= 1
    assert ctx.metrics.value("sched.readmissions") >= 1
    # Re-admission is a recovery: the victim keeps running at home.
    assert ctx.metrics.value("faults.recovered_total") >= 1
    assert not result.crashed_jobs()
    assert result.stats["bg"].iterations >= 6


def test_job_crash_on_iteration_restarts_from_checkpoint():
    plan = {"faults": [{"kind": "job_crash",
                        "trigger": {"at_ms": 100.0}, "job": "bg"}]}
    ctx, result = run_faulted(plan)
    counts = events_of(ctx)
    assert counts["fault_injected"] == 1
    assert counts["job_restarting"] == 1
    assert counts["checkpoint"] >= 1
    assert ctx.metrics.value("faults.recovered_total") == 1
    assert not result.crashed_jobs()
    # Restart-from-checkpoint redoes the uncheckpointed tail, so the
    # job records at least its requested iterations.
    assert result.stats["bg"].iterations >= 6


def test_job_crash_pattern_only_hits_matching_job():
    plan = {"faults": [{"kind": "job_crash",
                        "trigger": {"at_ms": 100.0}, "job": "fg"}]}
    ctx, result = run_faulted(plan)
    crashes = [record for record in ctx.runlog.records
               if record.get("event") == "fault_injected"]
    assert all(record.get("job") == "fg" for record in crashes)
    assert not result.crashed_jobs()


# ---------------------------------------------------------------------------
# Clock-scoped kinds
# ---------------------------------------------------------------------------
def test_device_oom_ballast_is_injected_and_freed():
    plan = {"faults": [{"kind": "device_oom",
                        "trigger": {"at_ms": 50.0},
                        "fraction": 0.95, "duration_ms": 80.0}]}
    ctx, result = run_faulted(plan)
    counts = events_of(ctx)
    assert counts["fault_injected"] >= 1
    assert counts["fault_ballast_freed"] == 1
    # The ballast window forces a genuine OOM; the driver restarts.
    assert counts["job_restarting"] >= 1
    assert ctx.metrics.value("faults.recovered_total") >= 1
    assert not result.crashed_jobs()
    # Ballast must be fully returned: both jobs finish.
    assert result.stats["bg"].iterations >= 6
    assert result.stats["fg"].iterations >= 3


def test_spurious_preemption_fires_and_sanitizer_stays_clean():
    plan = {"faults": [{"kind": "spurious_preempt",
                        "trigger": {"every_ms": 60.0}}]}
    ctx, result = run_faulted(plan)
    assert ctx.metrics.value("faults.injected_total") > 0
    assert events_of(ctx)["preempt"] > 1  # beyond the priority one
    assert not result.crashed_jobs()
    # The whole point: injected preemptions still honour the paper's
    # invariants (mutual exclusion, preemption safety, memory ceiling).
    report = sanitize_run(ctx)
    assert not report.has_errors, report.render()


def test_spurious_preemption_is_noop_for_baseline_policies():
    plan = {"faults": [{"kind": "spurious_preempt",
                        "trigger": {"every_ms": 60.0}}]}
    ctx, _result = run_faulted(plan, policy=MultiThreadedTF)
    # MT-TF cannot express preemption; the spec must be a silent no-op.
    assert ctx.metrics.value("faults.injected_total") == 0


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
FULL_PLAN = {
    "faults": [
        {"kind": "kernel_slowdown", "trigger": {"every_n": 7},
         "factor": 1.5},
        {"kind": "kernel_stall", "trigger": {"probability": 0.05},
         "stall_ms": 1.0},
        {"kind": "transfer_fail", "trigger": {"probability": 0.5}},
        {"kind": "device_oom", "trigger": {"at_ms": 120.0},
         "fraction": 0.9, "duration_ms": 40.0},
        {"kind": "spurious_preempt", "trigger": {"every_ms": 90.0}},
        {"kind": "job_crash", "trigger": {"probability": 0.05}},
    ],
}


def test_identical_plan_and_seed_reproduce_identical_run():
    first_ctx, _ = run_faulted(FULL_PLAN, seed=13)
    second_ctx, _ = run_faulted(FULL_PLAN, seed=13)
    assert first_ctx.runlog.records == second_ctx.runlog.records
    assert first_ctx.tracer.to_rows() == second_ctx.tracer.to_rows()
    assert first_ctx.engine.now == second_ctx.engine.now


def test_different_seeds_draw_different_fault_schedules():
    schedules = set()
    for seed in (1, 2, 3):
        ctx, _ = run_faulted(FULL_PLAN, seed=seed)
        schedules.add(tuple(
            (round(record.get("t_ms", 0.0), 6), record.get("kind"))
            for record in ctx.runlog.records
            if record.get("event") == "fault_injected"))
    assert len(schedules) > 1


def test_adding_a_spec_does_not_perturb_other_streams():
    # Named per-slot RNG streams: the probabilistic stall draws must be
    # identical whether or not an *unrelated deterministic* spec rides
    # along in the plan.
    base = {"faults": [{"kind": "kernel_stall",
                        "trigger": {"probability": 0.1},
                        "stall_ms": 1.0}]}
    ctx_base, _ = run_faulted(base, seed=21)
    stalls_base = [round(record.get("t_ms", 0.0), 6)
                   for record in ctx_base.runlog.records
                   if record.get("event") == "fault_injected"
                   and record.get("kind") == "kernel_stall"]
    assert stalls_base  # the test is vacuous if nothing fired
    extended = {"faults": base["faults"] + [
        {"kind": "kernel_slowdown", "trigger": {"every_n": 1000},
         "factor": 1.0}]}
    ctx_ext, _ = run_faulted(extended, seed=21)
    stalls_ext = [round(record.get("t_ms", 0.0), 6)
                  for record in ctx_ext.runlog.records
                  if record.get("event") == "fault_injected"
                  and record.get("kind") == "kernel_stall"]
    assert stalls_ext == stalls_base


@pytest.mark.parametrize("seed", [5, 19])
def test_full_plan_run_is_sanitizer_clean(seed):
    ctx, _result = run_faulted(FULL_PLAN, seed=seed)
    report = sanitize_run(ctx)
    assert not report.has_errors, report.render()
