"""Tests for the windowed time-series sampler (repro.obs.timeseries)."""

import pytest

from repro.core import make_context
from repro.hw import v100_server
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TIMESERIES_ENV,
    TimeSeriesSampler,
    maybe_attach_timeseries_from_env,
)
from repro.sim import Engine


@pytest.fixture
def rig(engine):
    metrics = MetricsRegistry(clock=lambda: engine.now)
    return engine, metrics


class TestSampling:
    def test_counter_windows_carry_deltas_and_rates(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        requests = metrics.counter("requests", "test")
        requests.inc(3)
        first = sampler.sample()
        requests.inc(5)
        second = sampler.sample()
        assert first["counters"]["requests"]["delta"] == 3.0
        assert second["counters"]["requests"]["total"] == 8.0
        assert second["counters"]["requests"]["delta"] == 5.0
        assert second["counters"]["requests"]["rate_per_ms"] == 0.5

    def test_quiet_window_has_zero_delta(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        metrics.counter("requests", "test").inc(4)
        sampler.sample()
        quiet = sampler.sample()
        assert quiet["counters"]["requests"]["delta"] == 0.0
        assert quiet["counters"]["requests"]["total"] == 4.0

    def test_histogram_quantiles_use_window_fresh_samples_only(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        latency = metrics.histogram("lat_ms", "test")
        for value in (100.0, 100.0, 100.0):
            latency.observe(value)
        sampler.sample()
        latency.observe(1.0)
        window = sampler.sample()
        entry = window["histograms"]["lat_ms"]
        # The old 100s must not leak into this window's quantiles.
        assert entry["count"] == 1
        assert entry["p50"] == entry["p99"] == 1.0

    def test_empty_histogram_window_reports_count_only(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        metrics.histogram("lat_ms", "test")
        window = sampler.sample()
        assert window["histograms"]["lat_ms"] == {"count": 0}

    def test_gauge_snapshot_is_the_level(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        depth = metrics.gauge("depth", "test")
        depth.set(7.0)
        assert sampler.sample()["gauges"]["depth"] == 7.0

    def test_labelled_series_get_distinct_tags(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        metrics.counter("tasks", "test", pool="a").inc(1)
        metrics.counter("tasks", "test", pool="b").inc(2)
        window = sampler.sample()
        assert window["counters"]["tasks{pool=a}"]["delta"] == 1.0
        assert window["counters"]["tasks{pool=b}"]["delta"] == 2.0

    def test_sampling_leaves_instruments_untouched(self, rig):
        # Zero-cost contract: the sampler keeps its marks on its own
        # side; instruments carry no sampler state.
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        counter = metrics.counter("requests", "test")
        counter.inc(2)
        before = vars(counter).copy()
        sampler.sample()
        assert vars(counter) == before


class TestRingBuffer:
    def test_capacity_bounds_retained_windows(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0,
                                    capacity=3)
        counter = metrics.counter("requests", "test")
        for _ in range(5):
            counter.inc(1)
            sampler.sample()
        assert len(sampler.windows) == 3
        # Oldest windows dropped, but totals stay cumulative.
        totals = [w["counters"]["requests"]["total"]
                  for w in sampler.recent_rows()]
        assert totals == [3.0, 4.0, 5.0]

    def test_invalid_construction_rejected(self, rig):
        engine, metrics = rig
        with pytest.raises(ValueError):
            TimeSeriesSampler(engine, metrics, interval_ms=0.0)
        with pytest.raises(ValueError):
            TimeSeriesSampler(engine, metrics, interval_ms=10.0, capacity=0)


class TestLifecycle:
    def test_start_samples_on_the_engine_clock(self, rig):
        engine, metrics = rig
        metrics.counter("requests", "test").inc(1)
        sampler = TimeSeriesSampler(engine, metrics,
                                    interval_ms=10.0).start()
        engine.run(until=35.0)
        assert [w["t_ms"] for w in sampler.windows] == [10.0, 20.0, 30.0]

    def test_stop_cancels_the_periodic(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics,
                                    interval_ms=10.0).start()
        engine.run(until=25.0)
        sampler.stop()
        engine.run(until=100.0)
        assert len(sampler.windows) == 2

    def test_start_is_idempotent(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        sampler.start()
        sampler.start()
        engine.run(until=15.0)
        assert len(sampler.windows) == 1


class TestQueries:
    def test_series_and_tags(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        counter = metrics.counter("requests", "test")
        depth = metrics.gauge("depth", "test")
        counter.inc(2)
        depth.set(1.0)
        sampler.sample()
        counter.inc(3)
        depth.set(4.0)
        engine.run(until=10.0)
        sampler.sample()
        assert sampler.tags() == ["depth", "requests"]
        assert sampler.series("requests", field="delta") == [
            (0.0, 2.0), (10.0, 3.0)]
        assert sampler.series("depth") == [(0.0, 1.0), (10.0, 4.0)]

    def test_chrome_counters_tracks(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        metrics.counter("requests", "test", job="a").inc(5)
        metrics.gauge("depth", "test").set(2.0)
        latency = metrics.histogram("lat_ms", "test")
        latency.observe(3.0)
        sampler.sample()
        tracks = sampler.chrome_counters()
        assert tracks["requests (per ms)"] == [(0.0, {"job=a": 0.5})]
        assert tracks["depth"] == [(0.0, {"all": 2.0})]
        assert tracks["lat_ms (p95)"] == [(0.0, {"all": 3.0})]

    def test_render_legend_names_the_columns(self, rig):
        engine, metrics = rig
        sampler = TimeSeriesSampler(engine, metrics, interval_ms=10.0)
        metrics.counter("requests", "test", job="a").inc(5)
        sampler.sample()
        text = sampler.render()
        assert "c1 = requests{job=a} (delta per window)" in text
        assert "(no windows sampled)" in TimeSeriesSampler(
            engine, metrics, interval_ms=10.0).render()


class TestAttach:
    def test_context_attach_arms_a_sampler(self):
        ctx = make_context(v100_server, 1, seed=7, timeseries_interval_ms=5.0)
        assert ctx.timeseries is not None
        ctx.metrics.counter("requests", "test").inc(1)
        ctx.engine.run(until=12.0)
        assert len(ctx.timeseries.windows) == 2

    def test_double_attach_rejected(self):
        ctx = make_context(v100_server, 1, seed=7)
        ctx.attach_timeseries(interval_ms=5.0)
        with pytest.raises(RuntimeError):
            ctx.attach_timeseries(interval_ms=5.0)

    def test_env_attach(self, monkeypatch):
        monkeypatch.setenv(TIMESERIES_ENV, "25:64")
        ctx = make_context(v100_server, 1, seed=7)
        sampler = maybe_attach_timeseries_from_env(ctx)
        assert sampler is ctx.timeseries
        assert sampler.interval_ms == 25.0
        assert sampler.capacity == 64

    def test_env_attach_noop_without_variable(self, monkeypatch):
        monkeypatch.delenv(TIMESERIES_ENV, raising=False)
        ctx = make_context(v100_server, 1, seed=7)
        assert maybe_attach_timeseries_from_env(ctx) is None
        assert ctx.timeseries is None

    def test_env_attach_defers_to_explicit_sampler(self, monkeypatch):
        monkeypatch.setenv(TIMESERIES_ENV, "25")
        ctx = make_context(v100_server, 1, seed=7)
        explicit = ctx.attach_timeseries(interval_ms=5.0)
        assert maybe_attach_timeseries_from_env(ctx) is explicit
        assert ctx.timeseries.interval_ms == 5.0

    def test_env_attach_rejects_malformed_spec(self, monkeypatch):
        monkeypatch.setenv(TIMESERIES_ENV, "fast")
        ctx = make_context(v100_server, 1, seed=7)
        with pytest.raises(ValueError):
            maybe_attach_timeseries_from_env(ctx)
