"""Tests for the model zoo: published totals, graph emission, memory."""

import pytest

from repro.graph import OpKind, count_kinds
from repro.models import FIGURE3_MODELS, ModelSpec, get_model, model_names

MiB = 1024 ** 2

# Published Keras parameter counts the zoo must match (DESIGN.md §2).
PUBLISHED_PARAMS = {
    "ResNet50": 25_636_712,
    "VGG16": 138_357_544,
    "VGG19": 143_667_240,
    "DenseNet121": 8_062_504,
    "DenseNet169": 14_307_880,
    "InceptionV3": 23_851_784,
    "InceptionResNetV2": 55_873_736,
    "MobileNet": 4_253_864,
    "MobileNetV2": 3_538_984,
    "NASNetLarge": 88_949_818,
    "NASNetMobile": 5_326_716,
}

# Paper Table 1 stateful sizes in MiB.
PAPER_STATE_MIB = {
    "ResNet50": 198.53,
    "VGG16": 1055.58,
    "VGG19": 1096.09,
    "DenseNet121": 64.83,
    "DenseNet169": 108.61,
    "InceptionResNetV2": 426.18,
    "InceptionV3": 182.00,
    "MobileNetV2": 27.25,
}


@pytest.mark.parametrize("name,expected", sorted(PUBLISHED_PARAMS.items()))
def test_parameter_counts_match_published(name, expected):
    model = get_model(name)
    assert model.param_count == pytest.approx(expected, rel=0.002)


@pytest.mark.parametrize("name,paper_mib", sorted(PAPER_STATE_MIB.items()))
def test_stateful_sizes_match_paper_table1(name, paper_mib):
    model = get_model(name)
    assert model.stateful_bytes / MiB == pytest.approx(paper_mib, rel=0.06)


def test_registry_contents():
    names = model_names()
    assert len(names) == 12
    assert "NMT" in names
    for name in FIGURE3_MODELS:
        assert name in names


def test_registry_rejects_unknown():
    with pytest.raises(KeyError):
        get_model("AlexNet")


def test_registry_caches_instances():
    assert get_model("ResNet50") is get_model("ResNet50")


@pytest.mark.parametrize("name", sorted(PUBLISHED_PARAMS))
def test_flops_ordering_sanity(name):
    model = get_model(name)
    assert model.flops_per_item > 0
    # VGG19 is the heaviest classical CNN; MobileNetV2 the lightest.
    assert get_model("MobileNetV2").flops_per_item <= model.flops_per_item \
        or name == "MobileNetV2"


class TestGraphEmission:
    def test_inference_graph_structure(self):
        graph = get_model("ResNet50").build_graph(8, training=False)
        kinds = count_kinds(graph)
        assert kinds[OpKind.ITERATOR_GET_NEXT] == 1
        assert OpKind.CONV2D in kinds
        assert OpKind.SOFTMAX in kinds
        assert OpKind.GRADIENT not in kinds
        graph.validate()

    def test_training_graph_has_backward_and_updates(self):
        model = get_model("MobileNetV2")
        graph = model.build_graph(8, training=True)
        kinds = count_kinds(graph)
        parameterised = sum(1 for layer in model.layers if layer.params)
        assert kinds[OpKind.APPLY_GRADIENT] == parameterised
        assert kinds[OpKind.GRADIENT] == len(model.layers)
        assert kinds[OpKind.LOSS] == 1
        graph.validate()

    def test_training_flops_about_three_times_inference(self):
        model = get_model("ResNet50")
        infer = model.build_graph(1, training=False,
                                  include_pipeline=False).total_flops()
        train = model.build_graph(1, training=True,
                                  include_pipeline=False).total_flops()
        assert 2.5 < train / infer < 3.5

    def test_batch_scales_flops_linearly(self):
        model = get_model("InceptionV3")
        one = model.build_graph(1, training=False,
                                include_pipeline=False).total_flops()
        eight = model.build_graph(8, training=False,
                                  include_pipeline=False).total_flops()
        assert eight == pytest.approx(8 * one, rel=1e-6)

    def test_pipeline_chunks_cover_the_batch(self):
        graph = get_model("ResNet50").build_graph(
            64, training=False, data_workers=8)
        chunks = [n for n in graph if n.kind is OpKind.DECODE_JPEG]
        # Per-item fan-out (concurrency is capped by the data pool).
        assert len(chunks) == 64
        assert sum(n.op.attrs["images"] for n in chunks) == \
            pytest.approx(64)

    def test_no_pipeline_mode(self):
        graph = get_model("ResNet50").build_graph(
            8, training=False, include_pipeline=False)
        kinds = count_kinds(graph)
        assert OpKind.ITERATOR_GET_NEXT not in kinds
        assert OpKind.DECODE_JPEG not in kinds

    def test_nmt_uses_tokenize_pipeline_and_recurrent_steps(self):
        model = get_model("NMT")
        graph = model.build_graph(1, training=False)
        kinds = count_kinds(graph)
        assert OpKind.TOKENIZE in kinds
        assert OpKind.LSTM_CELL in kinds
        recurrent = [n for n in graph if n.op.attrs.get("recurrent")]
        assert len(recurrent) > 50

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            get_model("ResNet50").build_graph(0, training=False)


class TestMemoryModel:
    def test_training_dominated_by_activations(self):
        model = get_model("ResNet50")
        assert model.training_memory_bytes(32) > 5 * model.stateful_bytes

    def test_inference_much_smaller_than_training(self):
        model = get_model("ResNet50")
        assert model.inference_memory_bytes(32) < \
            0.5 * model.training_memory_bytes(32)

    def test_figure7_oom_boundary(self):
        """The calibrated co-location outcomes of Figure 7 (11 GB GPU)."""
        eleven_gb = 11 * 1024 ** 3
        resnet = get_model("ResNet50").training_memory_bytes(32)
        vgg = get_model("VGG16").training_memory_bytes(32)
        assert 2 * resnet < eleven_gb          # ResNet50 pair fits
        assert resnet + vgg > eleven_gb        # ResNet50+VGG16 crashes
        assert 2 * vgg > eleven_gb             # VGG16 pair crashes

    def test_weights_under_ten_percent_of_11gb(self):
        """Paper §5.2.3: retained state <=10% of device memory."""
        for name in PAPER_STATE_MIB:
            assert get_model(name).stateful_bytes <= 0.1 * 11 * 1024 ** 3
