"""The CI regression gate: benchmarks/check_regression.py."""

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_regression",
    REPO_ROOT / "benchmarks" / "check_regression.py")
check_regression = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_regression", check_regression)
spec.loader.exec_module(check_regression)

PAYLOAD = {
    "schema": 1,
    "benchmarks": {
        "engine.dispatch": {"optimized_events_per_sec": 2_000_000,
                            "baseline_events_per_sec": 700_000},
        "engine.timeout": {"optimized_events_per_sec": 230_000},
        "engine.process": {"optimized_events_per_sec": 750_000},
        "executor.dispatch": {"nodes_per_sec": 11_000},
        "cost_model.lookup": {"cached_lookups_per_sec": 800_000},
    },
}


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def slowed(payload, factor):
    slow = copy.deepcopy(payload)
    for bench in slow["benchmarks"].values():
        for key in bench:
            if key.endswith("_per_sec"):
                bench[key] = bench[key] / factor
    return slow


def test_equal_candidate_passes(tmp_path, capsys):
    baseline = write(tmp_path, "baseline.json", PAYLOAD)
    candidate = write(tmp_path, "candidate.json", PAYLOAD)
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate)])
    assert status == 0
    assert "PASS" in capsys.readouterr().out


def test_two_x_slower_candidate_fails(tmp_path, capsys):
    baseline = write(tmp_path, "baseline.json", PAYLOAD)
    candidate = write(tmp_path, "candidate.json", slowed(PAYLOAD, 2.0))
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate)])
    assert status == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    # Every gated rate halved: all five must be reported regressed.
    assert "5 rate(s) regressed" in captured.err


def test_drop_within_threshold_passes(tmp_path):
    baseline = write(tmp_path, "baseline.json", PAYLOAD)
    candidate = write(tmp_path, "candidate.json", slowed(PAYLOAD, 1.2))
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate)])
    assert status == 0  # ~17% drop < 25% threshold


def test_threshold_is_configurable(tmp_path):
    baseline = write(tmp_path, "baseline.json", PAYLOAD)
    candidate = write(tmp_path, "candidate.json", slowed(PAYLOAD, 1.2))
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate),
         "--threshold", "0.1"])
    assert status == 1  # ~17% drop > 10% threshold


def test_faster_candidate_passes(tmp_path):
    baseline = write(tmp_path, "baseline.json", slowed(PAYLOAD, 2.0))
    candidate = write(tmp_path, "candidate.json", PAYLOAD)
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate)])
    assert status == 0


def test_new_benchmark_keys_are_not_gated(tmp_path, capsys):
    pruned = copy.deepcopy(PAYLOAD)
    del pruned["benchmarks"]["cost_model.lookup"]
    baseline = write(tmp_path, "baseline.json", pruned)
    candidate = write(tmp_path, "candidate.json", PAYLOAD)
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate)])
    assert status == 0
    assert "not gated" in capsys.readouterr().out


def test_malformed_inputs_exit_two(tmp_path, capsys):
    baseline = write(tmp_path, "baseline.json", PAYLOAD)
    bad = tmp_path / "bad.json"
    bad.write_text("{nope", encoding="utf-8")
    assert check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(bad)]) == 2
    assert check_regression.main(
        ["--baseline", str(tmp_path / "missing.json"),
         "--candidate", str(baseline)]) == 2
    no_rates = write(tmp_path, "norates.json", {"benchmarks": {}})
    assert check_regression.main(
        ["--baseline", str(no_rates),
         "--candidate", str(baseline)]) == 2
    capsys.readouterr()


@pytest.mark.parametrize("threshold", ["-0.1", "1.0", "2"])
def test_out_of_range_threshold_exits_two(tmp_path, threshold, capsys):
    baseline = write(tmp_path, "baseline.json", PAYLOAD)
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(baseline),
         "--threshold", threshold])
    assert status == 2
    capsys.readouterr()


def test_committed_baseline_has_all_gated_rates():
    # The CI bench job gates against the committed BENCH_core.json —
    # it must keep exposing every rate the gate reads.
    rates = check_regression.load_rates(REPO_ROOT / "BENCH_core.json")
    expected = {f"{bench}.{field}"
                for bench, field in check_regression.RATE_KEYS}
    assert set(rates) == expected


def test_markdown_written_when_baseline_lacks_gated_rates(tmp_path,
                                                          capsys):
    # A baseline with no recognizable rates still returns 2, but the
    # delta table must exist anyway so the CI summary shows the
    # candidate's rates as "new (not gated)" instead of vanishing.
    baseline = write(tmp_path, "baseline.json",
                     {"schema": 1, "benchmarks": {}})
    candidate = write(tmp_path, "candidate.json", PAYLOAD)
    delta = tmp_path / "out" / "DELTA.md"
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate),
         "--markdown", str(delta)])
    assert status == 2
    table = delta.read_text(encoding="utf-8")
    assert "engine.dispatch.optimized_events_per_sec" in table
    assert table.count("new (not gated)") == len(PAYLOAD["benchmarks"])
    capsys.readouterr()


def test_markdown_flags_partially_missing_baseline_rates(tmp_path):
    # Rates missing from just the baseline show as new; the rest gate
    # normally and the run passes.
    pruned = copy.deepcopy(PAYLOAD)
    del pruned["benchmarks"]["engine.dispatch"]
    baseline = write(tmp_path, "baseline.json", pruned)
    candidate = write(tmp_path, "candidate.json", PAYLOAD)
    delta = tmp_path / "DELTA.md"
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate),
         "--markdown", str(delta)])
    assert status == 0
    table = delta.read_text(encoding="utf-8")
    assert "new (not gated)" in table
    assert "| ok |" in table


def test_non_dict_benchmark_entry_is_skipped(tmp_path, capsys):
    # A hand-edited or older-schema file can hold a scalar where the
    # gate expects an object; that key is just absent, not a crash.
    mangled = copy.deepcopy(PAYLOAD)
    mangled["benchmarks"]["engine.dispatch"] = "broken"
    baseline = write(tmp_path, "baseline.json", PAYLOAD)
    candidate = write(tmp_path, "candidate.json", mangled)
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate)])
    assert status == 0
    assert "gone   engine.dispatch" in capsys.readouterr().out


def test_serving_rate_is_gated(tmp_path, capsys):
    # The serving front-end throughput joined the gate: halving it
    # alone must fail the check.
    augmented = copy.deepcopy(PAYLOAD)
    augmented["benchmarks"]["serving.request_throughput"] = {
        "requests_per_sec": 2_000}
    slow = copy.deepcopy(augmented)
    slow["benchmarks"]["serving.request_throughput"][
        "requests_per_sec"] = 900
    baseline = write(tmp_path, "baseline.json", augmented)
    candidate = write(tmp_path, "candidate.json", slow)
    status = check_regression.main(
        ["--baseline", str(baseline), "--candidate", str(candidate)])
    assert status == 1
    assert "serving.request_throughput" in capsys.readouterr().err
