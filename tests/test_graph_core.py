"""Tests for the graph IR: ops, graph structure, passes."""

import pytest

from repro.graph import (
    Graph,
    GraphError,
    OpDef,
    OpKind,
    ancestors_of,
    count_kinds,
    fuse_elementwise,
    gpu_efficiency,
    prune_dead_nodes,
)


def op(name, kind=OpKind.ELEMENTWISE, **kwargs):
    return OpDef(name=name, kind=kind, **kwargs)


class TestOpDef:
    def test_validation(self):
        with pytest.raises(ValueError):
            OpDef(name="x", kind=OpKind.CONV2D, flops=-1)
        with pytest.raises(ValueError):
            OpDef(name="x", kind=OpKind.CONV2D, input_bytes=-1)
        with pytest.raises(ValueError):
            OpDef(name="x", kind=OpKind.CONV2D, preferred_device="tpu")

    def test_register_bound_kinds(self):
        assert OpDef(name="c", kind=OpKind.CONV2D).is_register_bound
        assert not OpDef(name="r", kind=OpKind.ELEMENTWISE).is_register_bound

    def test_scaled_preserves_kind_and_scales_costs(self):
        base = OpDef(name="c", kind=OpKind.CONV2D, flops=100,
                     input_bytes=10, output_bytes=20)
        double = base.scaled(2.0)
        assert double.flops == 200
        assert double.input_bytes == 20
        assert double.kind is OpKind.CONV2D
        assert base.flops == 100  # immutable original

    def test_gradient_op_doubles_math(self):
        forward = OpDef(name="c", kind=OpKind.CONV2D, flops=100,
                        params_bytes=40, attrs={"k": 3})
        grad = forward.gradient_op()
        assert grad.kind is OpKind.GRADIENT
        assert grad.flops == 200
        assert grad.attrs["forward_kind"] == "conv2d"
        assert grad.params_bytes == 40

    def test_winograd_boosts_3x3_conv_efficiency(self):
        conv3 = OpDef(name="a", kind=OpKind.CONV2D, attrs={"k": 3})
        conv1 = OpDef(name="b", kind=OpKind.CONV2D, attrs={"k": 1})
        assert gpu_efficiency(conv3) > gpu_efficiency(conv1)

    def test_winograd_applies_to_conv_gradients(self):
        grad3 = OpDef(name="a", kind=OpKind.CONV2D,
                      attrs={"k": 3}).gradient_op()
        grad1 = OpDef(name="b", kind=OpKind.CONV2D,
                      attrs={"k": 1}).gradient_op()
        assert gpu_efficiency(grad3) > gpu_efficiency(grad1)


class TestGraph:
    def test_add_nodes_and_edges(self):
        graph = Graph("g")
        a = graph.add_node(op("a"))
        b = graph.add_node(op("b"), inputs=[a])
        assert graph.successors(a) == [b]
        assert graph.predecessors(b) == [a]
        assert graph.sources() == [a]
        assert graph.sinks() == [b]

    def test_duplicate_edges_collapse(self):
        graph = Graph("g")
        a = graph.add_node(op("a"))
        b = graph.add_node(op("b"), inputs=[a])
        graph.add_edge(a, b)
        assert graph.successors(a) == [b]

    def test_topological_order_respects_edges(self):
        graph = Graph("g")
        a = graph.add_node(op("a"))
        b = graph.add_node(op("b"), inputs=[a])
        c = graph.add_node(op("c"), inputs=[a])
        d = graph.add_node(op("d"), inputs=[b, c])
        order = graph.topological_order()
        position = {n: i for i, n in enumerate(order)}
        assert position[a] < position[b] < position[d]
        assert position[a] < position[c] < position[d]

    def test_cycle_detected(self):
        graph = Graph("g")
        a = graph.add_node(op("a"))
        b = graph.add_node(op("b"), inputs=[a])
        graph.add_edge(b, a)
        with pytest.raises(GraphError):
            graph.topological_order()

    def test_remove_node_detaches_edges(self):
        graph = Graph("g")
        a = graph.add_node(op("a"))
        b = graph.add_node(op("b"), inputs=[a])
        c = graph.add_node(op("c"), inputs=[b])
        graph.remove_node(b)
        assert graph.successors(a) == []
        assert graph.predecessors(c) == []
        assert len(graph) == 2

    def test_find_by_name(self):
        graph = Graph("g")
        graph.add_node(op("target"))
        assert graph.find("target").name == "target"
        with pytest.raises(KeyError):
            graph.find("missing")

    def test_total_params_counts_shared_ops_once(self):
        graph = Graph("g")
        shared = op("w", OpKind.CONV2D, params_bytes=100)
        graph.add_node(shared)
        graph.add_node(shared)
        assert graph.total_params_bytes() == 100

    def test_subgraph_shares_nodes_but_not_edges(self):
        graph = Graph("g")
        a = graph.add_node(op("a"))
        b = graph.add_node(op("b"), inputs=[a])
        c = graph.add_node(op("c"), inputs=[b])
        sub = graph.subgraph([a, b])
        assert len(sub) == 2
        assert sub.successors(a) == [b]
        assert sub.successors(b) == []       # edge to c not in subgraph
        assert graph.successors(b) == [c]    # parent untouched


class TestPasses:
    def _diamond(self):
        graph = Graph("g")
        a = graph.add_node(op("a", OpKind.CONV2D))
        b = graph.add_node(op("b", OpKind.CONV2D), inputs=[a])
        dead = graph.add_node(op("dead", OpKind.CONV2D), inputs=[a])
        return graph, a, b, dead

    def test_ancestors_of(self):
        graph, a, b, dead = self._diamond()
        keep = ancestors_of(graph, [b])
        assert keep == {a, b}

    def test_prune_dead_nodes(self):
        graph, a, b, dead = self._diamond()
        removed = prune_dead_nodes(graph, [b])
        assert removed == 1
        assert dead not in graph

    def test_fuse_elementwise_chain(self):
        graph = Graph("g")
        conv = graph.add_node(op("conv", OpKind.CONV2D, flops=100,
                                 output_bytes=10))
        bias = graph.add_node(op("bias", OpKind.ELEMENTWISE, flops=5,
                                 output_bytes=10), inputs=[conv])
        relu = graph.add_node(op("relu", OpKind.ELEMENTWISE, flops=5,
                                 output_bytes=10), inputs=[bias])
        tail = graph.add_node(op("next", OpKind.CONV2D), inputs=[relu])
        fused = fuse_elementwise(graph)
        assert fused == 2
        assert len(graph) == 2
        assert graph.find("conv").op.flops == 110
        assert graph.successors(graph.find("conv")) == [tail]

    def test_fuse_skips_multi_consumer_producer(self):
        graph = Graph("g")
        conv = graph.add_node(op("conv", OpKind.CONV2D))
        graph.add_node(op("relu", OpKind.ELEMENTWISE), inputs=[conv])
        graph.add_node(op("other", OpKind.CONV2D), inputs=[conv])
        assert fuse_elementwise(graph) == 0

    def test_count_kinds(self):
        graph, *_ = self._diamond()
        assert count_kinds(graph) == {OpKind.CONV2D: 3}
