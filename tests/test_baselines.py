"""Tests for the three baseline policies."""

import pytest

from repro.baselines import MPSPolicy, MultiThreadedTF, SessionTimeSlicing
from repro.core import JobHandle, PRIORITY_HIGH, PRIORITY_LOW, make_context
from repro.hw import GTX_1080_TI, single_gpu_server, v100_server
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation


def _job(ctx, name, model="MobileNetV2", batch=8, training=True,
         priority=PRIORITY_LOW):
    return JobHandle(name=name, model=get_model(model), batch=batch,
                     training=training, priority=priority,
                     preferred_device=ctx.machine.gpu(0).name)


class TestMultiThreadedTF:
    def test_jobs_share_gpu_with_mutual_slowdown(self):
        # GPU-bound workload (ResNet50 training) so device contention,
        # not the input pipeline, is the binding constraint.
        solo_ctx = make_context(v100_server, 1, seed=1)
        solo = _job(solo_ctx, "solo", model="ResNet50", batch=32)
        run_colocation(solo_ctx, MultiThreadedTF,
                       [JobSpec(job=solo, iterations=6)])
        solo_rate = solo.stats.throughput_items_per_s(warmup=1)

        pair_ctx = make_context(v100_server, 1, seed=1)
        jobs = [_job(pair_ctx, f"job{i}", model="ResNet50", batch=32)
                for i in range(2)]
        run_colocation(pair_ctx, MultiThreadedTF, [
            JobSpec(job=job, iterations=6) for job in jobs])
        for job in jobs:
            rate = job.stats.throughput_items_per_s(warmup=1)
            assert rate < 0.8 * solo_rate

    def test_kernels_interleave_on_device(self):
        ctx = make_context(v100_server, 1, seed=1)
        gpu = ctx.machine.gpu(0)
        jobs = [_job(ctx, f"job{i}") for i in range(2)]
        run_colocation(ctx, MultiThreadedTF, [
            JobSpec(job=job, iterations=4) for job in jobs])
        contexts = {s.meta.get("context")
                    for s in ctx.tracer.spans if s.lane == gpu.lane}
        assert contexts == {"job0", "job1"}

    def test_oom_crash_on_overcommit(self):
        ctx = make_context(single_gpu_server, GTX_1080_TI, seed=1)
        heavy = [
            JobHandle(name=f"vgg{i}", model=get_model("VGG16"), batch=32,
                      training=True,
                      preferred_device=ctx.machine.gpu(0).name)
            for i in range(2)
        ]
        results = run_colocation(ctx, MultiThreadedTF, [
            JobSpec(job=job, iterations=4) for job in heavy])
        assert results.crashed_jobs()
        # The surviving job keeps training.
        survivor = [j for j in heavy if not j.stats.crashed][0]
        assert survivor.stats.iterations == 4


class TestSessionTimeSlicing:
    def test_sessions_alternate_strictly(self):
        ctx = make_context(v100_server, 1, seed=1)
        gpu = ctx.machine.gpu(0)
        jobs = [_job(ctx, f"job{i}") for i in range(2)]
        run_colocation(ctx, SessionTimeSlicing, [
            JobSpec(job=job, iterations=4) for job in jobs])
        # Exclusive slices: kernels never overlap across jobs.
        spans = [s for s in ctx.tracer.spans if s.lane == gpu.lane]
        for i, first in enumerate(spans):
            for second in spans[i + 1:]:
                if first.overlaps(second):
                    assert first.meta["context"] == second.meta["context"]

    def test_priority_jumps_queue_but_no_preemption(self):
        ctx = make_context(v100_server, 1, seed=1)
        background = _job(ctx, "train", model="VGG16", batch=32)
        inference = _job(ctx, "infer", model="MobileNetV2", batch=1,
                         training=False, priority=PRIORITY_HIGH)
        results = run_colocation(ctx, SessionTimeSlicing, [
            JobSpec(job=background, iterations=100_000, background=True),
            JobSpec(job=inference, iterations=10, start_delay_ms=300.0),
        ])
        summary = results.latency_summary("infer", warmup=2)
        # Bounded below by waiting out a full training session: the
        # VGG16 iteration is hundreds of ms.
        assert summary.p95 > 100.0

    def test_no_oom_because_sessions_never_overlap(self):
        ctx = make_context(single_gpu_server, GTX_1080_TI, seed=1)
        heavy = [
            JobHandle(name=f"vgg{i}", model=get_model("VGG16"), batch=32,
                      training=True,
                      preferred_device=ctx.machine.gpu(0).name)
            for i in range(2)
        ]
        results = run_colocation(ctx, SessionTimeSlicing, [
            JobSpec(job=job, iterations=3) for job in heavy])
        assert not results.crashed_jobs()


class TestMPS:
    def test_growth_mode_completes_on_v100(self):
        ctx = make_context(v100_server, 1, seed=1)
        jobs = [
            JobHandle(name=f"job{i}", model=get_model("ResNet50"),
                      batch=32, training=True,
                      preferred_device=ctx.machine.gpu(0).name)
            for i in range(2)
        ]
        results = run_colocation(
            ctx, lambda c: MPSPolicy(c, reserve="growth"),
            [JobSpec(job=job, iterations=4) for job in jobs])
        assert not results.crashed_jobs()
        assert all(job.stats.iterations == 4 for job in jobs)

    def test_growth_mode_crashes_on_11gb_for_heavy_pair(self):
        ctx = make_context(single_gpu_server, GTX_1080_TI, seed=1)
        jobs = [
            JobHandle(name=f"job{i}", model=get_model("VGG16"), batch=32,
                      training=True,
                      preferred_device=ctx.machine.gpu(0).name)
            for i in range(2)
        ]
        results = run_colocation(
            ctx, lambda c: MPSPolicy(c, reserve="growth"),
            [JobSpec(job=job, iterations=3) for job in jobs])
        assert results.crashed_jobs()

    def test_default_mode_second_process_dies_immediately(self):
        ctx = make_context(single_gpu_server, GTX_1080_TI, seed=1)
        jobs = [
            JobHandle(name=f"job{i}", model=get_model("MobileNetV2"),
                      batch=8, training=True,
                      preferred_device=ctx.machine.gpu(0).name)
            for i in range(2)
        ]
        results = run_colocation(
            ctx, lambda c: MPSPolicy(c, reserve="default"),
            [JobSpec(job=jobs[0], iterations=3),
             JobSpec(job=jobs[1], iterations=3, start_delay_ms=10.0)])
        # TF's greedy default maps ~the whole GPU per process: even a
        # tiny second model cannot start (paper: all crash on 11 GB).
        assert "job1" in results.crashed_jobs()

    def test_invalid_reserve_mode_rejected(self):
        ctx = make_context(v100_server, 1, seed=1)
        with pytest.raises(ValueError):
            MPSPolicy(ctx, reserve="bogus")

    def test_reservation_freed_on_unregister(self):
        ctx = make_context(v100_server, 1, seed=1)
        policy = MPSPolicy(ctx, reserve="growth")
        job = _job(ctx, "job")
        policy.register_job(job)
        gpu = ctx.machine.gpu(0)
        assert gpu.memory.used_by("job") > 0
        policy.unregister_job(job)
        assert gpu.memory.used_by("job") == 0
