"""Tests for the Listing 1 environment-variable configuration API."""

import pytest

from repro.core.config import (
    ConfigError,
    ENV_EXCLUSIVE_GPU,
    ENV_MASTER_PREFIX,
    ENV_PRIORITY_PREFIX,
    ENV_REUSE_FLAG,
    ENV_SUB_PREFIX,
    SwitchFlowConfig,
)


def listing1_env():
    """The exact configuration of the paper's Listing 1."""
    return {
        "TF_SET_REUSE_INPUTS": "True",
        "TF_REUSE_INPUT_OP_NAME_MASTER_X": "X00",
        "TF_REUSE_INPUT_OP_NAME_MASTER_y": "y00",
        "TF_REUSE_INPUT_OPS_NAME_SUB_X": "X01",
        "TF_REUSE_INPUT_OPS_NAME_SUB_y": "y01",
    }


def test_listing1_parses_verbatim():
    config = SwitchFlowConfig.from_env(listing1_env())
    assert config.reuse_inputs
    assert config.input_links == {"X01": "X00", "y01": "y00"}


def test_defaults_without_env():
    config = SwitchFlowConfig.from_env({})
    assert not config.reuse_inputs
    assert config.input_links == {}
    assert config.exclusive_gpu_executor


def test_truthy_variants():
    for value in ("true", "True", "1", "yes", "ON"):
        assert SwitchFlowConfig.from_env(
            {ENV_REUSE_FLAG: value}).reuse_inputs
    for value in ("false", "0", "", "off"):
        assert not SwitchFlowConfig.from_env(
            {ENV_REUSE_FLAG: value}).reuse_inputs


def test_orphan_secondary_rejected():
    env = {ENV_REUSE_FLAG: "True", f"{ENV_SUB_PREFIX}X": "X01"}
    with pytest.raises(ConfigError):
        SwitchFlowConfig.from_env(env)


def test_links_without_flag_rejected():
    env = {
        f"{ENV_MASTER_PREFIX}X": "X00",
        f"{ENV_SUB_PREFIX}X": "X01",
    }
    with pytest.raises(ConfigError):
        SwitchFlowConfig.from_env(env)


def test_priorities_parsed():
    env = {f"{ENV_PRIORITY_PREFIX}serve": "0",
           f"{ENV_PRIORITY_PREFIX}train": "10"}
    config = SwitchFlowConfig.from_env(env)
    assert config.priority_of("serve") == 0
    assert config.priority_of("train") == 10
    assert config.priority_of("other", default=5) == 5


def test_bad_priority_rejected():
    with pytest.raises(ConfigError):
        SwitchFlowConfig.from_env({f"{ENV_PRIORITY_PREFIX}x": "high"})


def test_exclusive_flag():
    config = SwitchFlowConfig.from_env({ENV_EXCLUSIVE_GPU: "false"})
    assert not config.exclusive_gpu_executor


def test_round_trip_through_env():
    original = SwitchFlowConfig.from_env(listing1_env())
    original.priorities = {"serve": 0}
    restored = SwitchFlowConfig.from_env(original.to_env())
    assert restored.reuse_inputs == original.reuse_inputs
    assert restored.input_links == original.input_links
    assert restored.priorities == original.priorities
