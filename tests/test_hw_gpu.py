"""Tests for the GPU engine: streams, admission, contention, cancel."""

import pytest

from repro.hw import KernelLaunch, v100_server
from repro.sim import Engine, EventCancelled, Tracer


@pytest.fixture
def gpu_setup():
    engine = Engine()
    tracer = Tracer(engine)
    machine = v100_server(engine, 1, tracer=tracer)
    return engine, machine.gpu(0), tracer


def _launch_all(engine, gpu, kernels):
    events = [gpu.launch(k) for k in kernels]
    done = engine.all_of(events)

    def waiter(env):
        yield done

    process = engine.process(waiter(engine))
    engine.run(until=process)


class TestExecution:
    def test_single_kernel_takes_its_work_time(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        _launch_all(engine, gpu, [KernelLaunch(
            name="k", context="a", work_ms=7.0, occupancy=1.0)])
        assert engine.now == pytest.approx(7.0)
        assert gpu.kernels_completed == 1

    def test_same_stream_kernels_are_fifo(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        kernels = [KernelLaunch(name=f"k{i}", context="a", work_ms=5.0,
                                occupancy=0.2, stream=0)
                   for i in range(3)]
        _launch_all(engine, gpu, kernels)
        # Despite tiny occupancy, one stream => strict serialization.
        assert engine.now == pytest.approx(15.0)
        starts = [k.started_at for k in kernels]
        assert starts == sorted(starts)

    def test_heavy_kernels_from_two_contexts_serialize(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        kernels = [
            KernelLaunch(name="a", context="a", work_ms=10.0, occupancy=1.0),
            KernelLaunch(name="b", context="b", work_ms=10.0, occupancy=1.0),
        ]
        _launch_all(engine, gpu, kernels)
        # Serial execution plus one cross-context switch penalty.
        assert engine.now == pytest.approx(
            20.0 + gpu.spec.context_switch_overhead_ms)
        assert gpu.context_switches == 1

    def test_light_kernels_corun_with_slowdown(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        kernels = [
            KernelLaunch(name="a", context="a", work_ms=10.0, occupancy=0.3),
            KernelLaunch(name="b", context="b", work_ms=10.0, occupancy=0.3),
        ]
        _launch_all(engine, gpu, kernels)
        # Concurrent but slower than solo, faster than serial.
        assert 10.0 < engine.now < 20.0

    def test_admission_is_launch_order_with_bypass(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        heavy_first = KernelLaunch(name="h1", context="a", work_ms=10.0,
                                   occupancy=1.0)
        heavy_second = KernelLaunch(name="h2", context="b", work_ms=10.0,
                                    occupancy=1.0)
        done = [gpu.launch(heavy_first), gpu.launch(heavy_second)]

        def waiter(env):
            yield env.all_of(done)

        process = engine.process(waiter(engine))
        engine.run(until=process)
        assert heavy_first.finished_at < heavy_second.finished_at

    def test_completion_event_carries_the_kernel(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        kernel = KernelLaunch(name="k", context="a", work_ms=1.0,
                              occupancy=0.5)
        event = gpu.launch(kernel)

        def waiter(env):
            return (yield event)

        process = engine.process(waiter(engine))
        assert engine.run(until=process) is kernel


class TestPreemptionHooks:
    def test_cancel_queued_drops_unadmitted_only(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        kernels = [KernelLaunch(name=f"k{i}", context="victim",
                                work_ms=10.0, occupancy=1.0)
                   for i in range(4)]
        events = [gpu.launch(k) for k in kernels]

        def preemptor(env):
            yield env.timeout(5.0)
            cancelled = gpu.cancel_queued("victim")
            assert len(cancelled) == 3      # the running one drains
            yield gpu.drain("victim")
            return env.now

        process = engine.process(preemptor(engine))
        assert engine.run(until=process) == pytest.approx(10.0)
        assert events[0].ok
        for event in events[1:]:
            assert event.triggered and not event.ok
            assert isinstance(event.value, EventCancelled)

    def test_cancel_queued_ignores_other_contexts(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        gpu.launch(KernelLaunch(name="v", context="victim", work_ms=5.0,
                                occupancy=1.0))
        other = gpu.launch(KernelLaunch(name="o", context="other",
                                        work_ms=5.0, occupancy=1.0))
        assert gpu.cancel_queued("victim") == []
        engine.run()
        assert other.ok

    def test_drain_with_nothing_resident_fires_immediately(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        event = gpu.drain("ghost")
        assert event.triggered

    def test_outstanding_counts(self, gpu_setup):
        engine, gpu, _ = gpu_setup
        for i in range(3):
            gpu.launch(KernelLaunch(name=f"k{i}", context="a",
                                    work_ms=10.0, occupancy=1.0))
        assert gpu.outstanding() == 3
        assert gpu.outstanding("a") == 3
        assert gpu.outstanding("b") == 0


class TestTracing:
    def test_spans_carry_context(self, gpu_setup):
        engine, gpu, tracer = gpu_setup
        _launch_all(engine, gpu, [KernelLaunch(
            name="k", context="jobX", work_ms=3.0, occupancy=1.0)])
        spans = [s for s in tracer.spans if s.lane == gpu.lane]
        assert len(spans) == 1
        assert spans[0].meta["context"] == "jobX"
        assert spans[0].duration == pytest.approx(3.0)


class TestValidation:
    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="k", context="a", work_ms=-1.0, occupancy=0.5)

    def test_occupancy_bounds(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="k", context="a", work_ms=1.0, occupancy=0.0)
        with pytest.raises(ValueError):
            KernelLaunch(name="k", context="a", work_ms=1.0, occupancy=1.5)
