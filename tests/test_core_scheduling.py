"""Tests for gates, the SwitchFlow policy, and preemption mechanics."""

import pytest

from repro.core import (
    DeviceGate,
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SwitchFlowPolicy,
    make_context,
)
from repro.hw import two_gpu_server, v100_server
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation


def _job(name, model="MobileNetV2", priority=PRIORITY_LOW, **kwargs):
    return JobHandle(name=name, model=get_model(model), batch=8,
                     training=True, priority=priority, **kwargs)


class TestDeviceGate:
    def test_immediate_grant_when_free(self, engine):
        gate = DeviceGate(engine, "gpu0")
        job = _job("a")
        request = gate.request(job)
        assert request.triggered
        assert gate.holder is job

    def test_fifo_within_priority(self, engine):
        gate = DeviceGate(engine, "gpu0")
        first, second, third = _job("a"), _job("b"), _job("c")
        gate.request(first)
        request_b = gate.request(second)
        request_c = gate.request(third)
        gate.release(first)
        engine.run()
        assert gate.holder is second
        assert request_b.triggered and not request_c.triggered

    def test_priority_jumps_queue(self, engine):
        gate = DeviceGate(engine, "gpu0")
        low_holder = _job("holder")
        low_waiter = _job("low")
        high_waiter = _job("high", priority=PRIORITY_HIGH)
        gate.request(low_holder)
        gate.request(low_waiter)
        request_high = gate.request(high_waiter)
        gate.release(low_holder)
        engine.run()
        assert gate.holder is high_waiter
        assert request_high.triggered

    def test_release_by_non_holder_raises(self, engine):
        gate = DeviceGate(engine, "gpu0")
        holder, other = _job("a"), _job("b")
        gate.request(holder)
        with pytest.raises(RuntimeError):
            gate.release(other)

    def test_withdraw_removes_waiter(self, engine):
        gate = DeviceGate(engine, "gpu0")
        holder, waiter = _job("a"), _job("b")
        gate.request(holder)
        request = gate.request(waiter)
        gate.withdraw(waiter)
        gate.release(holder)
        engine.run()
        assert not request.triggered
        assert gate.holder is None

    def test_abandoned_triggered_request_skipped(self, engine):
        gate = DeviceGate(engine, "gpu0")
        holder, waiter, after = _job("a"), _job("b"), _job("c")
        gate.request(holder)
        request = gate.request(waiter)
        request.cancel()
        gate.request(after)
        gate.release(holder)
        engine.run()
        assert gate.holder is after


class TestSwitchFlowPreemption:
    def _scenario(self, ctx, victim_model="ResNet50"):
        fast = max(ctx.machine.gpus,
                   key=lambda gpu: gpu.spec.peak_fp32_tflops)
        victim = JobHandle(
            name="victim", model=get_model(victim_model), batch=32,
            training=True, priority=PRIORITY_LOW,
            preferred_device=fast.name)
        preemptor = JobHandle(
            name="preemptor", model=get_model("MobileNetV2"), batch=32,
            training=True, priority=PRIORITY_HIGH,
            preferred_device=fast.name)
        policy_holder = {}

        def factory(context):
            policy_holder["policy"] = SwitchFlowPolicy(context)
            return policy_holder["policy"]

        results = run_colocation(ctx, factory, [
            JobSpec(job=victim, iterations=100_000, background=True),
            JobSpec(job=preemptor, iterations=5, start_delay_ms=400.0),
        ])
        return victim, preemptor, policy_holder["policy"], results, fast

    def test_preemption_migrates_victim_to_other_gpu(self):
        ctx = make_context(two_gpu_server, seed=3)
        victim, preemptor, policy, results, fast = self._scenario(ctx)
        assert policy.preemptions >= 1
        assert victim.stats.preemptions >= 1
        slow = [g for g in ctx.machine.gpus if g.name != fast.name][0]
        assert victim.assigned_device == slow.name
        assert not results.crashed_jobs()
        # Both jobs made progress after the preemption.
        assert preemptor.stats.iterations == 5
        assert victim.stats.throughput_after(400.0) > 0

    def test_single_gpu_victim_falls_back_to_cpu(self):
        ctx = make_context(v100_server, 1, seed=3)
        victim, _preemptor, policy, _results, _fast = self._scenario(ctx)
        assert policy.preemptions >= 1
        assert victim.assigned_device == ctx.machine.cpu.name
        # CPU-resident jobs stay in the temporary pool (MKL isolation).
        assert victim.in_temporary_pool

    def test_migrated_victim_returns_to_global_pool(self):
        ctx = make_context(two_gpu_server, seed=3)
        victim, *_ = self._scenario(ctx)
        # After completing a run on its new GPU the job leaves the
        # temporary pool (Section 3.3).
        assert not victim.in_temporary_pool

    def test_equal_priority_jobs_do_not_preempt(self):
        ctx = make_context(v100_server, 1, seed=3)
        gpu = ctx.machine.gpu(0).name
        jobs = [
            JobHandle(name=f"job{i}", model=get_model("MobileNetV2"),
                      batch=8, training=True, priority=PRIORITY_LOW,
                      preferred_device=gpu)
            for i in range(2)
        ]
        policy_holder = {}

        def factory(context):
            policy_holder["policy"] = SwitchFlowPolicy(context)
            return policy_holder["policy"]

        run_colocation(ctx, factory, [
            JobSpec(job=job, iterations=5) for job in jobs])
        assert policy_holder["policy"].preemptions == 0
        assert all(job.stats.iterations == 5 for job in jobs)

    def test_gpu_exclusivity_invariant(self):
        """No two jobs' kernels may ever co-reside on one GPU."""
        ctx = make_context(v100_server, 1, seed=3)
        gpu = ctx.machine.gpu(0)
        jobs = [
            JobHandle(name=f"job{i}", model=get_model("MobileNetV2"),
                      batch=8, training=True, priority=PRIORITY_LOW,
                      preferred_device=gpu.name)
            for i in range(3)
        ]
        run_colocation(ctx, SwitchFlowPolicy, [
            JobSpec(job=job, iterations=4) for job in jobs])
        spans = [s for s in ctx.tracer.spans if s.lane == gpu.lane]
        for i, first in enumerate(spans):
            for second in spans[i + 1:]:
                if first.overlaps(second):
                    assert first.meta["context"] == second.meta["context"]

    def test_state_transfer_happens_on_migration(self):
        ctx = make_context(two_gpu_server, seed=3)
        self._scenario(ctx)
        assert ctx.resources.transfers_started >= 1
