"""Synthetic dataset substrates.

The paper evaluates on raw ImageNet JPEGs and the WMT'16 DE-EN corpus;
neither is available offline. These generators produce item streams with
the same *cost-relevant* statistics — JPEG byte size and decode
difficulty for images, token-length distributions for sentences — which
is all the scheduling experiments consume (the pixels themselves never
matter to a scheduler).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class ImageRecord:
    """One synthetic ImageNet sample."""

    index: int
    jpeg_bytes: int
    width: int
    height: int
    label: int

    @property
    def decode_cost_scale(self) -> float:
        """Decode cost relative to the average image (pixel-count ratio)."""
        return (self.width * self.height) / (500 * 375)


@dataclass(frozen=True)
class SentenceRecord:
    """One synthetic WMT'16 DE-EN pair."""

    index: int
    source_tokens: int
    target_tokens: int

    @property
    def preprocess_cost_scale(self) -> float:
        return self.source_tokens / 30.0


class SyntheticImageNet:
    """ImageNet-like stream: lognormal JPEG sizes, varied resolutions.

    Statistics follow the well-known ImageNet profile: mean JPEG size
    ~110 KB, typical resolution around 500x375 with wide spread.
    """

    MEAN_JPEG_BYTES = 110_000
    CLASSES = 1000

    def __init__(self, rng: RngRegistry, name: str = "imagenet") -> None:
        self._stream = rng.stream(f"data:{name}")

    def sample(self, index: int) -> ImageRecord:
        stream = self._stream
        jpeg_bytes = int(min(
            2_000_000,
            max(5_000, stream.lognormvariate(math.log(100_000), 0.55))))
        width = max(64, int(stream.gauss(500, 120)))
        height = max(64, int(stream.gauss(375, 90)))
        return ImageRecord(
            index=index, jpeg_bytes=jpeg_bytes, width=width, height=height,
            label=stream.randrange(self.CLASSES))

    def batches(self, batch_size: int, n_batches: int
                ) -> Iterator[List[ImageRecord]]:
        if batch_size <= 0 or n_batches <= 0:
            raise ValueError("batch_size and n_batches must be positive")
        counter = 0
        for _ in range(n_batches):
            batch = [self.sample(counter + offset)
                     for offset in range(batch_size)]
            counter += batch_size
            yield batch


class SyntheticWMT16:
    """WMT'16-like sentence pairs: ~30-token mean, long-tailed lengths."""

    MEAN_TOKENS = 30

    def __init__(self, rng: RngRegistry, name: str = "wmt16") -> None:
        self._stream = rng.stream(f"data:{name}")

    def sample(self, index: int) -> SentenceRecord:
        stream = self._stream
        source = max(3, min(100, int(stream.lognormvariate(
            math.log(self.MEAN_TOKENS), 0.45))))
        ratio = stream.gauss(1.05, 0.15)
        target = max(3, min(120, int(source * max(0.5, ratio))))
        return SentenceRecord(index=index, source_tokens=source,
                              target_tokens=target)

    def batches(self, batch_size: int, n_batches: int
                ) -> Iterator[List[SentenceRecord]]:
        if batch_size <= 0 or n_batches <= 0:
            raise ValueError("batch_size and n_batches must be positive")
        counter = 0
        for _ in range(n_batches):
            batch = [self.sample(counter + offset)
                     for offset in range(batch_size)]
            counter += batch_size
            yield batch


def mean_decode_scale(records: List[ImageRecord]) -> float:
    """Average decode-cost scale of a batch (pipeline calibration)."""
    if not records:
        raise ValueError("empty batch")
    return sum(r.decode_cost_scale for r in records) / len(records)
