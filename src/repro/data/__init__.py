"""Synthetic dataset substrates (ImageNet / WMT'16 stand-ins)."""

from repro.data.datasets import (
    ImageRecord,
    SentenceRecord,
    SyntheticImageNet,
    SyntheticWMT16,
    mean_decode_scale,
)

__all__ = [
    "ImageRecord",
    "SentenceRecord",
    "SyntheticImageNet",
    "SyntheticWMT16",
    "mean_decode_scale",
]
