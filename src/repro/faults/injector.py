"""The fault injector: evaluates a :class:`FaultPlan` against a run.

One :class:`FaultInjector` is attached to a
:class:`~repro.core.context.RunContext` (and mirrored on its machine so
layers that only hold a ``Machine`` reach it too). The runtime calls
small hooks at its fault *sites*:

* :meth:`kernel_fault` — the executor, before every GPU kernel launch.
* :meth:`transfer_should_fail` — the resource manager, per transfer
  attempt of a state migration.
* :meth:`crash_requested` — the job drivers, at every iteration start
  (the only *safe point*: no gate held, no run in flight, so injected
  crashes never corrupt the invariants the sanitizer checks).
* :meth:`on_preemption` — the policy, when it decides a preemption;
  arms ``on="preempt"`` crashes that fire at the victim's next safe
  point.

Clock-scoped faults (device OOM ballast, spurious preemptions) are
simulation processes the injector schedules itself via :meth:`arm`.

Every decision is deterministic: per-site triggers count matching
sites or draw from the spec's named RNG stream, and site call order is
part of the engine transcript — identical plan + seed reproduces the
identical fault schedule on both engine paths.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.recovery import DegradationTracker

#: Kinds that count toward a device's degradation threshold. Slowdowns
#: are excluded: a slow-but-correct device is not a failing one.
#: Spurious preemptions ARE included — a gate that keeps evicting its
#: holder for no reason can preempt faster than an iteration completes,
#: and degradation (no further preemptions; plain time slicing) is what
#: restores forward progress.
_DEGRADING_KINDS = ("kernel_stall", "transfer_fail", "device_oom",
                    "spurious_preempt")


class FaultInjector:
    """Evaluates the plan's triggers and records every injection."""

    def __init__(self, ctx, plan: FaultPlan) -> None:
        self.ctx = ctx
        self.plan = plan
        self.recovery = plan.recovery
        self.degradation = DegradationTracker(
            ctx, plan.recovery.degrade_after)
        self._policy = None
        # Per-spec site counters (every_n) and one-shot latches (at_ms).
        self._site_counts: Dict[int, int] = {}
        self._fired_once: Set[int] = set()
        # Crashes armed by on_preemption, realized at the next safe point.
        self._pending_crashes: Dict[str, str] = {}
        self._by_kind: Dict[str, List[FaultSpec]] = {}
        for spec in plan.faults:
            self._by_kind.setdefault(spec.kind, []).append(spec)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule the clock-scoped faults.

        One-shot (``at_ms``) specs ride :meth:`Engine.at`; periodic
        (``every_ms``) specs run as simulation processes.
        """
        engine = self.ctx.engine
        for kind, body in (("device_oom", self._oom_once),
                           ("spurious_preempt", self._spurious_once)):
            for spec in self._by_kind.get(kind, ()):
                name = f"faults/{kind}[{spec.index}]"
                if spec.trigger.at_ms is not None:
                    engine.at(
                        max(engine.now, spec.trigger.at_ms),
                        lambda eng, spec=spec, body=body, name=name:
                            eng.process(body(spec), name=name))
                else:
                    engine.process(self._periodic(spec, body),
                                   name=name)

    def bind_policy(self, policy) -> None:
        """Give clock faults that need the policy (spurious preemption)
        something to act through. Safe to call with any policy; specs
        the policy cannot express become no-ops."""
        self._policy = policy

    # ------------------------------------------------------------------
    # Site hooks (called by the runtime)
    # ------------------------------------------------------------------
    def kernel_fault(self, job: str,
                     device: str) -> Optional[Tuple[float, float]]:
        """(extra_stall_ms, work_factor) for this launch, or None."""
        stall = 0.0
        factor = 1.0
        for spec in self._by_kind.get("kernel_stall", ()):
            if self._site_matches(spec, job, device) \
                    and self._site_fires(spec):
                stall += spec.stall_ms
                self._inject(spec, job=job, device=device,
                             stall_ms=spec.stall_ms)
        for spec in self._by_kind.get("kernel_slowdown", ()):
            if self._site_matches(spec, job, device) \
                    and self._site_fires(spec):
                factor *= spec.factor
                self._inject(spec, job=job, device=device,
                             factor=spec.factor)
        if stall == 0.0 and factor == 1.0:
            return None
        return stall, factor

    def transfer_should_fail(self, job: str, src: str, dst: str) -> bool:
        """Whether this state-transfer attempt is injected to fail."""
        failed = False
        for spec in self._by_kind.get("transfer_fail", ()):
            if self._site_matches(spec, job, dst) \
                    and self._site_fires(spec):
                self._inject(spec, job=job, src=src, device=dst)
                failed = True
        return failed

    def crash_requested(self, job: str) -> Optional[str]:
        """A crash reason if this job must die at its safe point."""
        pending = self._pending_crashes.pop(job, None)
        if pending is not None:
            return pending
        for spec in self._by_kind.get("job_crash", ()):
            if spec.on != "iteration":
                continue
            if self._site_matches(spec, job, "*") \
                    and self._site_fires(spec):
                self._inject(spec, job=job, on="iteration")
                return f"fault plan [{spec.index}]: injected crash"
        return None

    def on_preemption(self, victim: str, device: str) -> None:
        """Evaluate ``on="preempt"`` crash specs for this preemption."""
        for spec in self._by_kind.get("job_crash", ()):
            if spec.on != "preempt":
                continue
            if self._site_matches(spec, victim, device) \
                    and self._site_fires(spec):
                self._inject(spec, job=victim, device=device,
                             on="preempt")
                self._pending_crashes[victim] = (
                    f"fault plan [{spec.index}]: crash on preemption "
                    f"from {device}")

    # ------------------------------------------------------------------
    # Recovery accounting (called by the runtime after it fought back)
    # ------------------------------------------------------------------
    def record_recovery(self, kind: str, latency_ms: float,
                        **detail) -> None:
        metrics = self.ctx.metrics
        metrics.counter("faults.recovered_total",
                        "faults the runtime recovered from",
                        kind=kind).inc()
        metrics.histogram("faults.recovery_ms",
                          "latency from fault to recovery",
                          kind=kind).observe(latency_ms)
        self.ctx.runlog.emit("fault_recovered", kind=kind,
                             recovery_ms=latency_ms, **detail)
        self.ctx.tracer.instant("faults", f"recovered:{kind}",
                                recovery_ms=latency_ms, **detail)

    def injected_total(self) -> float:
        return self.ctx.metrics.value("faults.injected_total")

    def recovered_total(self) -> float:
        return self.ctx.metrics.value("faults.recovered_total")

    # ------------------------------------------------------------------
    # Trigger evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def _site_matches(spec: FaultSpec, job: str, device: str) -> bool:
        return (fnmatchcase(job, spec.job)
                and fnmatchcase(device, spec.device))

    def _site_fires(self, spec: FaultSpec) -> bool:
        trigger = spec.trigger
        if trigger.at_ms is not None:
            if spec.index in self._fired_once:
                return False
            if self.ctx.engine.now >= trigger.at_ms:
                self._fired_once.add(spec.index)
                return True
            return False
        if trigger.every_n is not None:
            count = self._site_counts.get(spec.index, 0) + 1
            self._site_counts[spec.index] = count
            return count % trigger.every_n == 0
        # probability — an independent named stream per plan slot, so
        # adding a spec never perturbs the draws of the others.
        stream = self.ctx.rng.stream(spec.stream_name())
        return stream.random() < trigger.probability

    # ------------------------------------------------------------------
    # Clock-scoped fault processes
    # ------------------------------------------------------------------
    def _periodic(self, spec: FaultSpec, body):
        engine = self.ctx.engine
        while True:  # every_ms — runs until the simulation stops
            yield engine.timeout(spec.trigger.every_ms)
            yield from body(spec)

    def _oom_once(self, spec: FaultSpec):
        """Seize a fraction of each matching GPU's free memory."""
        engine = self.ctx.engine
        ballast = []
        for gpu in self.ctx.machine.gpus:
            if not fnmatchcase(gpu.name, spec.device):
                continue
            nbytes = int(spec.fraction * gpu.memory.free_bytes)
            if nbytes <= 0:
                continue
            record = gpu.memory.allocate("faults", "ballast", nbytes)
            ballast.append((gpu, record))
            self._inject(spec, device=gpu.name, nbytes=nbytes,
                         duration_ms=spec.duration_ms)
        if not ballast:
            return
        yield engine.timeout(spec.duration_ms)
        for gpu, record in ballast:
            gpu.memory.free(record)
        self.ctx.runlog.emit("fault_ballast_freed", kind=spec.kind,
                             devices=[gpu.name for gpu, _r in ballast])

    def _spurious_once(self, spec: FaultSpec):
        """Preempt the holder of every matching gate, for no reason."""
        policy = self._policy
        launch = getattr(policy, "spurious_preempt", None)
        if launch is None:
            return
        launched = launch(spec.device)
        for device in launched:
            self._inject(spec, device=device)
        return
        yield  # pragma: no cover - makes this a generator for _clocked

    # ------------------------------------------------------------------
    def _inject(self, spec: FaultSpec, **detail) -> None:
        self.ctx.metrics.counter(
            "faults.injected_total", "faults injected by the plan",
            kind=spec.kind).inc()
        self.ctx.runlog.emit("fault_injected", kind=spec.kind,
                             spec=spec.index, **detail)
        self.ctx.tracer.instant("faults", spec.kind,
                                spec=spec.index, **detail)
        if spec.kind in _DEGRADING_KINDS:
            self.degradation.record_fault(detail.get("device"))
