"""Deterministic fault injection and recovery (`repro.faults`).

Turns the sanitizer from a passive checker into an adversarial proof:
a :class:`FaultPlan` injects crashes, stalls, OOM, transfer failures
and spurious preemptions into a run, the runtime recovers (retry with
backoff, restart-from-checkpoint, victim re-admission, degradation to
time slicing), and `repro.analysis` then verifies the paper's
invariants still held throughout.
"""

from __future__ import annotations

import os

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CLOCK_KINDS,
    KINDS,
    SITE_KINDS,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RecoveryConfig,
    Trigger,
)
from repro.faults.recovery import (
    DegradationTracker,
    InjectedJobCrash,
    MigrationFailedError,
    backoff_ms,
)

#: Environment variable naming a fault-plan JSON file. The experiment
#: runner's ``--faults`` flag sets it; harnesses read it via
#: :func:`maybe_attach_from_env` so fault plans survive the fork into
#: ``fanout_map`` workers, like ``REPRO_SANITIZE`` does.
FAULTS_ENV = "REPRO_FAULTS"


def plan_from_env() -> "FaultPlan | None":
    """The plan named by ``$REPRO_FAULTS``, or None when unset."""
    path = os.environ.get(FAULTS_ENV, "").strip()
    if not path:
        return None
    return FaultPlan.load(path)


def maybe_attach_from_env(ctx) -> "FaultInjector | None":
    """Attach the env-configured plan to ``ctx`` (idempotent no-op
    when ``$REPRO_FAULTS`` is unset or faults are already attached)."""
    if ctx.faults is not None:
        return ctx.faults
    plan = plan_from_env()
    if plan is None:
        return None
    return ctx.attach_faults(plan)


__all__ = [
    "CLOCK_KINDS",
    "FAULTS_ENV",
    "KINDS",
    "SITE_KINDS",
    "DegradationTracker",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedJobCrash",
    "MigrationFailedError",
    "RecoveryConfig",
    "Trigger",
    "backoff_ms",
    "maybe_attach_from_env",
    "plan_from_env",
]
