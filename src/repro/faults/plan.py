"""The fault-plan DSL: what to break, when, and how hard.

A :class:`FaultPlan` is a declarative, JSON-serializable list of
:class:`FaultSpec` entries plus one :class:`RecoveryConfig`. Each spec
names a fault *kind*, a *trigger*, and kind-specific parameters:

``kernel_stall`` / ``kernel_slowdown``
    Site-scoped: evaluated at every GPU kernel launch of a matching
    (job, device). A stall adds ``stall_ms`` to the kernel; a slowdown
    multiplies its work by ``factor``.
``transfer_fail``
    Site-scoped: evaluated at every state-migration transfer attempt.
    The attempt fails and the resource manager retries with capped
    exponential backoff.
``job_crash``
    Site-scoped: evaluated at every iteration boundary of a matching
    job (``on="iteration"``), or armed by each preemption of the job
    (``on="preempt"``) and realized at its next safe point. The driver
    restarts the job from its last checkpointed iteration.
``device_oom``
    Clock-scoped: at the trigger time a ballast allocation seizes
    ``fraction`` of the matching device's free memory for
    ``duration_ms`` — jobs that allocate inside the window hit the
    genuine :class:`~repro.hw.memory.OutOfMemoryError` path.
``spurious_preempt``
    Clock-scoped: at the trigger time the bound policy preempts the
    current holder of every matching device gate with no requester
    behind it.

Triggers come in four shapes — exactly one per spec:

* ``{"at_ms": T}`` — once. Clock-scoped kinds fire at simulated time
  ``T``; site-scoped kinds fire at the first matching site at or after
  ``T``.
* ``{"every_ms": P}`` — periodically, clock-scoped kinds only.
* ``{"every_n": N}`` — every Nth matching site, site-scoped kinds only.
* ``{"probability": p}`` — per matching site, drawn from a named
  stream of the run's :class:`~repro.sim.rng.RngRegistry`; identical
  plan + seed therefore reproduces the identical fault schedule.

Everything is deterministic: no wall clock, no global RNG.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Kinds evaluated at hook call sites inside the runtime.
SITE_KINDS = ("kernel_stall", "kernel_slowdown", "transfer_fail",
              "job_crash")
#: Kinds scheduled on the engine clock by the injector.
CLOCK_KINDS = ("device_oom", "spurious_preempt")
KINDS = SITE_KINDS + CLOCK_KINDS

PathLike = Union[str, Path]


class FaultPlanError(ValueError):
    """A fault plan failed validation."""


@dataclass(frozen=True)
class Trigger:
    """When a fault fires. Exactly one field may be set."""

    at_ms: Optional[float] = None
    every_ms: Optional[float] = None
    every_n: Optional[int] = None
    probability: Optional[float] = None

    def validate(self, kind: str, index: int) -> None:
        set_fields = [name for name in
                      ("at_ms", "every_ms", "every_n", "probability")
                      if getattr(self, name) is not None]
        where = f"faults[{index}] ({kind})"
        if len(set_fields) != 1:
            raise FaultPlanError(
                f"{where}: trigger needs exactly one of at_ms/every_ms/"
                f"every_n/probability, got {set_fields or 'none'}")
        if self.at_ms is not None and self.at_ms < 0:
            raise FaultPlanError(f"{where}: at_ms cannot be negative")
        if self.every_ms is not None and self.every_ms <= 0:
            raise FaultPlanError(f"{where}: every_ms must be positive")
        if self.every_n is not None and self.every_n < 1:
            raise FaultPlanError(f"{where}: every_n must be >= 1")
        if self.probability is not None \
                and not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"{where}: probability must be in [0, 1]")
        if self.every_ms is not None and kind not in CLOCK_KINDS:
            raise FaultPlanError(
                f"{where}: every_ms only applies to clock-scoped kinds "
                f"{CLOCK_KINDS}")
        if kind in CLOCK_KINDS and (self.every_n is not None
                                    or self.probability is not None):
            raise FaultPlanError(
                f"{where}: clock-scoped kinds take at_ms or every_ms "
                f"triggers, not per-site ones")

    def to_dict(self) -> Dict[str, Any]:
        return {key: value for key, value in asdict(self).items()
                if value is not None}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: kind + trigger + scope + parameters."""

    kind: str
    trigger: Trigger
    #: fnmatch patterns selecting the job / device the fault applies to.
    job: str = "*"
    device: str = "*"
    #: kernel_slowdown: work-time multiplier.
    factor: float = 2.0
    #: kernel_stall: extra milliseconds added to the kernel.
    stall_ms: float = 5.0
    #: device_oom: fraction of the device's *free* bytes to seize.
    fraction: float = 0.9
    #: device_oom: how long the ballast stays resident.
    duration_ms: float = 100.0
    #: job_crash: "iteration" (check at iteration starts) or "preempt"
    #: (armed by each preemption of the job).
    on: str = "iteration"
    #: Position in the plan; names the spec's RNG stream.
    index: int = 0

    def validate(self) -> None:
        where = f"faults[{self.index}]"
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"{where}: unknown kind {self.kind!r}; expected one of "
                f"{KINDS}")
        self.trigger.validate(self.kind, self.index)
        if self.kind == "kernel_slowdown" and self.factor <= 0:
            raise FaultPlanError(f"{where}: factor must be positive")
        if self.kind == "kernel_stall" and self.stall_ms < 0:
            raise FaultPlanError(f"{where}: stall_ms cannot be negative")
        if self.kind == "device_oom":
            if not 0.0 < self.fraction <= 1.0:
                raise FaultPlanError(
                    f"{where}: fraction must be in (0, 1]")
            if self.duration_ms <= 0:
                raise FaultPlanError(
                    f"{where}: duration_ms must be positive")
        if self.kind == "job_crash" and self.on not in ("iteration",
                                                        "preempt"):
            raise FaultPlanError(
                f"{where}: on must be 'iteration' or 'preempt', "
                f"got {self.on!r}")

    @property
    def clocked(self) -> bool:
        return self.kind in CLOCK_KINDS

    def stream_name(self) -> str:
        """RNG stream for probabilistic draws — stable per plan slot."""
        return f"faults:{self.index}:{self.kind}"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind,
                               "trigger": self.trigger.to_dict()}
        defaults = FaultSpec(kind=self.kind, trigger=self.trigger)
        for name in ("job", "device", "factor", "stall_ms", "fraction",
                     "duration_ms", "on"):
            value = getattr(self, name)
            if value != getattr(defaults, name):
                out[name] = value
        return out


@dataclass(frozen=True)
class RecoveryConfig:
    """How hard the runtime fights back."""

    #: Failed state transfers are retried this many times before the
    #: migration is declared failed and the victim re-admitted.
    transfer_retries: int = 4
    #: Exponential backoff between retries: min(cap, base * 2**attempt).
    backoff_base_ms: float = 4.0
    backoff_cap_ms: float = 64.0
    #: Drivers checkpoint every N completed iterations; a crashed job
    #: restarts from its last checkpoint.
    checkpoint_interval: int = 2
    #: Restarts allowed per job before a crash becomes permanent.
    max_restarts: int = 5
    #: Wait before a restarted job re-enters its loop.
    restart_delay_ms: float = 20.0
    #: Device-scoped faults before a device is marked degraded (the
    #: policy then stops preempting onto it — time-slicing fallback —
    #: and stops migrating victims there).
    degrade_after: int = 3

    def validate(self) -> None:
        if self.transfer_retries < 0:
            raise FaultPlanError("recovery.transfer_retries cannot be "
                                 "negative")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise FaultPlanError("recovery backoff times cannot be "
                                 "negative")
        if self.checkpoint_interval < 1:
            raise FaultPlanError(
                "recovery.checkpoint_interval must be >= 1")
        if self.max_restarts < 0:
            raise FaultPlanError("recovery.max_restarts cannot be "
                                 "negative")
        if self.restart_delay_ms < 0:
            raise FaultPlanError(
                "recovery.restart_delay_ms cannot be negative")
        if self.degrade_after < 1:
            raise FaultPlanError("recovery.degrade_after must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class FaultPlan:
    """A validated set of faults plus the recovery configuration."""

    faults: List[FaultSpec] = field(default_factory=list)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)

    def __post_init__(self) -> None:
        self.faults = [replace(spec, index=index)
                       for index, spec in enumerate(self.faults)]
        self.validate()

    def validate(self) -> None:
        for spec in self.faults:
            spec.validate()
        self.recovery.validate()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got "
                f"{type(payload).__name__}")
        unknown = set(payload) - {"faults", "recovery"}
        if unknown:
            raise FaultPlanError(
                f"unknown top-level plan keys: {sorted(unknown)}")
        specs = []
        for index, entry in enumerate(payload.get("faults", ())):
            if not isinstance(entry, dict):
                raise FaultPlanError(
                    f"faults[{index}] must be an object")
            entry = dict(entry)
            kind = entry.pop("kind", None)
            if kind is None:
                raise FaultPlanError(f"faults[{index}] is missing 'kind'")
            trigger_payload = entry.pop("trigger", None)
            if not isinstance(trigger_payload, dict):
                raise FaultPlanError(
                    f"faults[{index}] needs a 'trigger' object")
            try:
                trigger = Trigger(**trigger_payload)
            except TypeError as exc:
                raise FaultPlanError(
                    f"faults[{index}]: bad trigger: {exc}") from exc
            try:
                spec = FaultSpec(kind=kind, trigger=trigger,
                                 index=index, **entry)
            except TypeError as exc:
                raise FaultPlanError(
                    f"faults[{index}]: bad fault fields: {exc}") from exc
            specs.append(spec)
        recovery_payload = payload.get("recovery", {})
        if not isinstance(recovery_payload, dict):
            raise FaultPlanError("'recovery' must be an object")
        try:
            recovery = RecoveryConfig(**recovery_payload)
        except TypeError as exc:
            raise FaultPlanError(f"bad recovery config: {exc}") from exc
        return cls(faults=specs, recovery=recovery)

    def to_dict(self) -> Dict[str, Any]:
        return {"faults": [spec.to_dict() for spec in self.faults],
                "recovery": self.recovery.to_dict()}

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") \
                from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultPlanError(
                f"cannot read fault plan {path}: {exc}") from exc
        return cls.loads(text)

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def save(self, path: PathLike) -> None:
        Path(path).write_text(self.dumps(), encoding="utf-8")

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------
    def scaled(self, rate: float) -> "FaultPlan":
        """A copy with every trigger's intensity multiplied by ``rate``.

        ``rate=1`` is the plan as written; ``rate=0`` removes every
        fault (the control point of a sweep); ``rate=2`` doubles
        probabilities (capped at 1), halves ``every_n`` / ``every_ms``
        periods, and keeps one-shot ``at_ms`` faults as they are.
        """
        if rate < 0:
            raise FaultPlanError("rate cannot be negative")
        if rate == 0:
            return FaultPlan(faults=[], recovery=self.recovery)
        scaled: List[FaultSpec] = []
        for spec in self.faults:
            trigger = spec.trigger
            if trigger.probability is not None:
                trigger = Trigger(
                    probability=min(1.0, trigger.probability * rate))
            elif trigger.every_n is not None:
                trigger = Trigger(
                    every_n=max(1, round(trigger.every_n / rate)))
            elif trigger.every_ms is not None:
                trigger = Trigger(every_ms=trigger.every_ms / rate)
            scaled.append(replace(spec, trigger=trigger))
        return FaultPlan(faults=scaled, recovery=self.recovery)
