"""Recovery primitives shared by the runtime's fault-handling paths.

The injection side (:mod:`repro.faults.injector`) decides *when* things
break; this module holds what the runtime does about it: the backoff
schedule for transfer retries, the error that surfaces a migration
whose retries are exhausted, and the per-device degradation tracker
that lets the policy stop fighting a device that keeps faulting.
"""

from __future__ import annotations

from typing import Dict, Optional


class MigrationFailedError(RuntimeError):
    """A state migration failed after exhausting its transfer retries.

    Raised through the migration's completion event so the policy that
    requested the preemption can re-admit the victim instead of leaving
    it stranded between devices.
    """

    def __init__(self, job: str, device: str, attempts: int,
                 elapsed_ms: float = 0.0) -> None:
        super().__init__(
            f"migration of {job} to {device} failed after "
            f"{attempts} transfer attempt(s)")
        self.job = job
        self.device = device
        self.attempts = attempts
        self.elapsed_ms = elapsed_ms


class InjectedJobCrash(RuntimeError):
    """An injected crash, raised inside a job driver at a safe point."""

    def __init__(self, job: str, reason: str) -> None:
        super().__init__(f"injected crash of {job}: {reason}")
        self.job = job
        self.reason = reason


def backoff_ms(attempt: int, base_ms: float, cap_ms: float) -> float:
    """Capped exponential backoff: ``min(cap, base * 2**attempt)``.

    ``attempt`` is zero-based: the wait before the first retry is
    ``base_ms``.
    """
    if attempt < 0:
        raise ValueError("attempt cannot be negative")
    return min(cap_ms, base_ms * (2.0 ** attempt))


class DegradationTracker:
    """Counts device-scoped faults and flips devices to *degraded*.

    A degraded device stays usable — jobs already time-slice through
    its gate — but the policy stops preempting onto it and stops
    picking it as a migration target, which is the graceful-degradation
    fallback of the recovery design.
    """

    def __init__(self, ctx, threshold: int) -> None:
        self._ctx = ctx
        self._threshold = threshold
        self._counts: Dict[str, int] = {}
        self._degraded: Dict[str, bool] = {}

    @property
    def threshold(self) -> int:
        return self._threshold

    def fault_count(self, device: str) -> int:
        return self._counts.get(device, 0)

    def record_fault(self, device: Optional[str]) -> bool:
        """Note one fault on ``device``; True if it just degraded."""
        if not device:
            return False
        count = self._counts.get(device, 0) + 1
        self._counts[device] = count
        if count < self._threshold or self._degraded.get(device):
            return False
        self._degraded[device] = True
        ctx = self._ctx
        if ctx is not None:
            ctx.metrics.counter(
                "faults.degraded_total",
                "devices marked degraded after repeated faults",
                device=device).inc()
            ctx.runlog.emit("device_degraded", device=device,
                            faults=count, threshold=self._threshold)
            ctx.tracer.instant("faults", "device_degraded",
                               device=device, faults=count)
        return True

    def is_degraded(self, device: Optional[str]) -> bool:
        return bool(device) and self._degraded.get(device, False)

    def degraded_devices(self) -> list:
        return sorted(name for name, flag in self._degraded.items()
                      if flag)
