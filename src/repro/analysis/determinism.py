"""Determinism lint: AST checks for replay-breaking constructs.

The simulator's contract — established by the fast-path engine work and
relied on by the byte-identical parallel runner — is that a run is a
pure function of its seed. Three bug classes silently break that:

* **wallclock** — ``time.time()`` / ``datetime.now()`` (and friends)
  leaking wall-clock values into simulated state. Only the
  observability layer (``obs/``) may read wall time.
* **unseeded-rng** — the process-global ``random`` module, an
  argument-less ``random.Random()``, or ``numpy.random`` module state:
  draws that depend on interpreter history rather than the run's seed.
* **set-iteration** — iterating a set (or ``set()`` result) in the
  deterministic core (``sim/``, ``core/``, ``runtime/``): string-hash
  randomization makes the visit order differ between processes, which
  is fatal wherever iteration order feeds the event agenda.

False positives are suppressed inline with ``# noqa: repro-analysis``
on the offending line — explicit and visible at the call site, never a
blanket path exclude.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.findings import Finding, Report, Severity

PRAGMA = "# noqa: repro-analysis"

#: Fully-qualified callables that read the wall clock.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``random``-module functions that mutate/read the global RNG.
GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: Directories whose files are additionally held to the set-iteration
#: rule (the deterministic core feeding the event agenda). ``faults``
#: joined post-PR 4: injected fault timing feeds the agenda the same
#: way scheduler decisions do.
ORDER_SENSITIVE_DIRS = ("sim", "core", "runtime", "faults", "serving")

#: Module stems held to the set-iteration rule even though their
#: package is not (``hw`` is mostly passive specs, but topology's
#: route/placement enumeration orders gang-scheduling decisions).
ORDER_SENSITIVE_MODULES = ("topology",)

#: Directory allowed to read wall time (it reports wall-clock stats).
WALLCLOCK_EXEMPT_DIRS = ("obs",)

_SET_BUILTINS = ("set", "frozenset")
_ITERATING_BUILTINS = ("list", "tuple", "iter", "enumerate", "max", "min",
                       "next", "zip", "map", "filter")


class _DeterminismVisitor(ast.NodeVisitor):
    """Single-file AST walk collecting determinism findings."""

    def __init__(self, path: str, order_sensitive: bool,
                 wallclock_exempt: bool) -> None:
        self.path = path
        self.order_sensitive = order_sensitive
        self.wallclock_exempt = wallclock_exempt
        self.findings: List[Finding] = []
        # local name -> fully qualified import path
        self.aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Import tracking
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _qualified(self, node: ast.AST) -> Optional[str]:
        """Dotted path of an expression, resolved through imports."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------
    def _flag(self, node: ast.AST, check: str, message: str) -> None:
        self.findings.append(Finding(
            check=check, severity=Severity.ERROR, message=message,
            where=f"{self.path}:{node.lineno}",
            meta={"line": node.lineno}))

    def visit_Call(self, node: ast.Call) -> None:
        name = self._qualified(node.func)
        if name is not None:
            # `import numpy as np` resolves through the alias map, so
            # names arrive fully qualified already.
            self._check_wallclock(node, name)
            self._check_rng(node, name)
        if self.order_sensitive:
            self._check_call_iterates_set(node)
        self.generic_visit(node)

    def _check_wallclock(self, node: ast.Call, name: str) -> None:
        if self.wallclock_exempt:
            return
        if name in WALLCLOCK_CALLS:
            self._flag(
                node, "wallclock",
                f"call to {name}() reads the wall clock; simulated "
                f"components must use engine time (or pragma the line "
                f"for wall-profiling output)")

    def _check_rng(self, node: ast.Call, name: str) -> None:
        if name.startswith("random.") \
                and name.split(".", 1)[1] in GLOBAL_RANDOM_FNS:
            self._flag(
                node, "unseeded-rng",
                f"call to {name}() uses the process-global RNG; draw "
                f"from a seeded repro.sim.rng stream instead")
        elif name == "random.Random" and not node.args \
                and not node.keywords:
            self._flag(
                node, "unseeded-rng",
                "random.Random() without a seed is seeded from the OS; "
                "pass an explicit derive_seed(...) value")
        elif name.startswith("numpy.random."):
            tail = name.split(".", 2)[2]
            if tail == "default_rng" and (node.args or node.keywords):
                pass  # explicitly seeded generator
            else:
                self._flag(
                    node, "unseeded-rng",
                    f"call to {name}() touches numpy's global (or "
                    f"OS-seeded) RNG state; use a seeded Generator")

    # ------------------------------------------------------------------
    # Set-iteration hazards
    # ------------------------------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _SET_BUILTINS \
                and node.func.id not in self.aliases
        return False

    def _flag_set_iteration(self, node: ast.AST, how: str) -> None:
        self.findings.append(Finding(
            check="set-iteration", severity=Severity.ERROR,
            message=f"{how} iterates a set: visit order depends on "
                    f"string-hash randomization; sort it (or pragma the "
                    f"line if order provably cannot matter)",
            where=f"{self.path}:{node.lineno}",
            meta={"line": node.lineno}))

    def visit_For(self, node: ast.For) -> None:
        if self.order_sensitive and self._is_set_expr(node.iter):
            self._flag_set_iteration(node, "for-loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if self.order_sensitive:
            for generator in node.generators:
                if self._is_set_expr(generator.iter):
                    self._flag_set_iteration(node, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_call_iterates_set(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) \
                and node.func.id in _ITERATING_BUILTINS \
                and node.func.id not in self.aliases \
                and node.args and self._is_set_expr(node.args[0]):
            self._flag_set_iteration(node, f"{node.func.id}(...)")


def _path_flags(path: Union[str, Path]) -> tuple:
    path = Path(path)
    parts = path.parts
    order_sensitive = (any(part in ORDER_SENSITIVE_DIRS for part in parts)
                       or path.stem in ORDER_SENSITIVE_MODULES)
    wallclock_exempt = any(part in WALLCLOCK_EXEMPT_DIRS for part in parts)
    return order_sensitive, wallclock_exempt


def lint_source(source: str, path: str = "<string>",
                order_sensitive: Optional[bool] = None,
                wallclock_exempt: Optional[bool] = None) -> List[Finding]:
    """Lint one module's source; returns unsuppressed findings."""
    auto_order, auto_exempt = _path_flags(path)
    visitor = _DeterminismVisitor(
        path,
        order_sensitive=auto_order if order_sensitive is None
        else order_sensitive,
        wallclock_exempt=auto_exempt if wallclock_exempt is None
        else wallclock_exempt)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            check="syntax", severity=Severity.ERROR,
            message=f"cannot parse: {exc.msg}",
            where=f"{path}:{exc.lineno or 0}")]
    visitor.visit(tree)
    lines = source.splitlines()
    kept: List[Finding] = []
    for finding in visitor.findings:
        line_no = finding.meta.get("line", 0)
        line = lines[line_no - 1] if 0 < line_no <= len(lines) else ""
        if PRAGMA in line:
            continue  # explicitly waived at the call site
        kept.append(finding)
    return kept


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: Iterable[Union[str, Path]],
               title: str = "determinism lint") -> Report:
    """Lint every ``.py`` file under ``paths`` into one report."""
    report = Report(title)
    files = iter_python_files(list(paths))
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        report.findings.extend(lint_source(source, str(file_path)))
    report.info("determinism", f"scanned {len(files)} file(s)")
    return report
