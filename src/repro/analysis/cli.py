"""``python -m repro.analysis`` — lint, graph-check and sanitize.

Subcommands::

    python -m repro.analysis lint src/repro          # determinism lint
    python -m repro.analysis graphs [MODEL ...]      # build + lint graphs
    python -m repro.analysis sanitize table1 fig3 --quick
    python -m repro.analysis concurrency             # concurrency lint
    python -m repro.analysis concurrency --runlog run.jsonl  # replay

``lint`` exits 1 on any ERROR finding; ``graphs`` builds each model's
placed graph and partition and lints both; ``sanitize`` re-runs the
named experiments with :data:`~repro.analysis.integration.SANITIZE_ENV`
set, so every run's trace is checked and ERROR findings fail the
invocation — the same machinery as ``switchflow-experiments
--sanitize``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.concurrency import (
    deadlock_from_runlog,
    lint_concurrency_paths,
)
from repro.analysis.determinism import lint_paths
from repro.analysis.findings import Report, Severity, merge
from repro.analysis.graph_lint import lint_graph, lint_partition
from repro.analysis.integration import SANITIZE_ENV


def _finish(report: Report, quiet: bool = False) -> int:
    min_severity = Severity.WARNING if quiet else Severity.INFO
    print(report.render(min_severity=min_severity))
    return 1 if report.has_errors else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    report = lint_paths(args.paths)
    return _finish(report, quiet=args.quiet)


def _cmd_graphs(args: argparse.Namespace) -> int:
    from repro.graph.partition import partition_graph
    from repro.graph.placement import place_graph
    from repro.models import FIGURE3_MODELS, get_model
    from repro.runtime.session import ACCELERATOR_TAG

    names = args.models or FIGURE3_MODELS
    report = Report("graph lint")
    for name in names:
        model = get_model(name)
        for training in (False, True):
            graph = model.build_graph(
                args.batch, training, include_pipeline=True,
                name=f"{name}/{'train' if training else 'infer'}")
            place_graph(graph, "host-cpu", ACCELERATOR_TAG)
            lint_graph(graph, require_placement=True, report=report)
            lint_partition(partition_graph(graph), report=report)
    report.info("graphs", f"linted {2 * len(names)} graph(s) "
                          f"from {len(names)} model(s)")
    return _finish(report, quiet=args.quiet)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.experiments import runner

    argv = list(args.experiments)
    if args.quick:
        argv.append("--quick")
    if args.jobs != 1:
        argv.extend(["--jobs", str(args.jobs)])
    previous = os.environ.get(SANITIZE_ENV)
    os.environ[SANITIZE_ENV] = "1"
    try:
        return runner.main(argv)
    finally:
        if previous is None:
            os.environ.pop(SANITIZE_ENV, None)
        else:
            os.environ[SANITIZE_ENV] = previous


def _cmd_concurrency(args: argparse.Namespace) -> int:
    import json

    reports = [lint_concurrency_paths(args.paths)]
    if args.runlog:
        with open(args.runlog, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle
                       if line.strip()]
        reports.append(deadlock_from_runlog(
            records, title=f"concurrency: {args.runlog}"))
    report = merge("concurrency analysis", reports)
    return _finish(report, quiet=args.quiet)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis and sanitizers for the SwitchFlow "
                    "reproduction.")
    parser.add_argument("--quiet", action="store_true",
                        help="report WARNING and above only")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser(
        "lint", help="determinism lint over python sources")
    lint.add_argument("paths", nargs="+",
                      help="files or directories to lint")
    lint.set_defaults(fn=_cmd_lint)

    graphs = sub.add_parser(
        "graphs", help="build and lint model graphs/partitions")
    graphs.add_argument("models", nargs="*",
                        help="model names (default: the Figure 3 set)")
    graphs.add_argument("--batch", type=int, default=32)
    graphs.set_defaults(fn=_cmd_graphs)

    sanitize = sub.add_parser(
        "sanitize", help="run experiments with the trace sanitizer "
                         "enforced")
    sanitize.add_argument("experiments", nargs="+",
                          help="experiment names (as in the runner)")
    sanitize.add_argument("--quick", action="store_true")
    sanitize.add_argument("--jobs", type=int, default=1)
    sanitize.set_defaults(fn=_cmd_sanitize)

    concurrency = sub.add_parser(
        "concurrency", help="concurrency lint (lock/rendezvous usage) "
                            "and post-hoc deadlock replay from a runlog")
    concurrency.add_argument("paths", nargs="*", default=["src/repro"],
                             help="files or directories to lint "
                                  "(default: src/repro)")
    concurrency.add_argument("--runlog", metavar="FILE",
                             help="JSONL run log to replay through the "
                                  "wait-for-graph deadlock detector")
    concurrency.set_defaults(fn=_cmd_concurrency)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
