"""Dynamic concurrency analysis: races, locksets, and deadlocks.

SwitchFlow's correctness argument rests on concurrency invariants —
exclusive device ownership during preemption — and the runtime already
shipped one real concurrency bug (the PR 4 executor deadlock: an
aborted run consumed a rendezvous token without completing its RECV).
This module turns those invariants into checkable properties:

* **Happens-before tracking** (:class:`ConcurrencyTracker`, ``hb``
  mode). Every synchronization source is an edge: ``DeviceGate``
  grant/release, ``Semaphore`` acquire/release, rendezvous SEND/RECV,
  ``ThreadPool`` task hand-off, GPU-kernel completion callbacks, and
  process forks. Actors (simulated processes, plus the serialized
  event loop itself) carry vector clocks; instrumented accesses to
  shared runtime state (device memory accounting, executor run state,
  policy job tables) that are unordered by happens-before are flagged
  as ``concurrency.race`` ERRORs.

* **Eraser-style lockset pass** (``lockset`` mode, also computed in
  ``hb`` mode) over the same access stream: each shared location's
  candidate lockset is the intersection of the guards held at every
  access once a second actor touches it; a written location whose
  candidate set goes empty gets a ``concurrency.lockset`` WARNING.
  Cheaper than vector clocks — no per-actor clock maintenance — and
  catches *discipline* violations even when this execution happened to
  order the accesses.

* **Wait-for-graph deadlock detection**, live and post-hoc. Blocking
  waits add an actor→resource edge; grants record resource→holder
  edges; a cycle at block time is a ``concurrency.deadlock`` ERROR
  (and dumps the flight recorder). Waits still pending when the run
  ends — the lost-token shape of the PR 4 bug, which is *not* a cycle
  — are reported at :meth:`ConcurrencyTracker.report` time. The same
  graph replays from runlog ``cc_*`` records
  (:func:`deadlock_from_runlog`) so a saved run can be analyzed after
  the fact.

* **AST lint rules** (:func:`lint_concurrency_source`) in the
  determinism lint's framework: ``concurrency.acquire-no-release``
  (an acquire paired with a release that is not exception-safe),
  ``concurrency.hold-wait`` (blocking on another resource while
  holding a device gate, with no timeout bounding the wait), and
  ``concurrency.token-drop`` (a rendezvous token received and
  discarded — exactly how the PR 4 deadlock started). Suppress with
  the shared ``# noqa: repro-analysis`` pragma.

Everything flows through the :class:`~repro.analysis.findings.Report`
model, so ``runner --sanitize`` enforcement, the
``analysis.findings_total{check="concurrency.*"}`` metrics and the CLI
all work unchanged. Tracking is attached per run context
(``ctx.attach_concurrency()``) or via ``$REPRO_CONCURRENCY`` / the
runner's ``--concurrency`` flag; disabled tracking costs one global
load and a ``None`` test per hook site.
"""

from __future__ import annotations

import ast
import os
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.determinism import PRAGMA, iter_python_files
from repro.analysis.findings import Finding, Report, Severity
from repro.sim import instrument

#: Set non-empty/non-"0" to attach a tracker to every colocation run
#: ("lockset" selects the cheaper lockset-only mode; anything else is
#: full happens-before). Environment, not a parameter, so forked pool
#: workers inherit it — same pattern as $REPRO_SANITIZE.
CONCURRENCY_ENV = "REPRO_CONCURRENCY"

#: Path to append each run's rendered concurrency report to (the CI
#: artifact hook). Unset means no file is written.
CONCURRENCY_REPORT_ENV = "REPRO_CONCURRENCY_REPORT"

#: Actor id of the serialized event loop (engine callbacks run here).
_ENGINE_AID = 0


def _join(dst: Dict[int, int], src: Dict[int, int]) -> None:
    """Pointwise-max merge of vector clock ``src`` into ``dst``."""
    for aid, clock in src.items():
        if dst.get(aid, 0) < clock:
            dst[aid] = clock


class _Actor:
    """One thread of execution: a simulated process or the event loop."""

    __slots__ = ("aid", "name", "vc", "held", "proc")

    def __init__(self, aid: int, name: str, proc: Any = None) -> None:
        self.aid = aid
        self.name = name
        self.vc: Dict[int, int] = {aid: 1}
        self.held: Set[str] = set()   # mutex-semantics resources held
        self.proc = proc

    def __repr__(self) -> str:
        return f"<_Actor {self.name!r}>"


class _VarState:
    """Per-location race-detection state (FastTrack-style epochs +
    Eraser lockset machine)."""

    __slots__ = ("write", "reads", "owner", "shared", "written",
                 "lockset", "reported")

    def __init__(self) -> None:
        self.write: Optional[Tuple[int, int, Optional[str]]] = None
        self.reads: Dict[int, Tuple[int, Optional[str]]] = {}
        self.owner: Optional[int] = None      # Eraser: first actor
        self.shared = False
        self.written = False                  # written while shared
        self.lockset: Optional[Set[str]] = None
        self.reported = False


class _Wait:
    """One outstanding blocking wait (actor parked on a resource)."""

    __slots__ = ("actor", "resource")

    def __init__(self, actor: _Actor, resource: str) -> None:
        self.actor = actor
        self.resource = resource


class WaitForGraph:
    """Actor→resource wait edges plus resource→holder edges.

    Generic over the actor token (the live tracker uses int actor ids,
    the runlog replay uses actor names) so one cycle finder serves
    both paths.
    """

    def __init__(self) -> None:
        self.waiting: Dict[Any, str] = {}
        self.holders: Dict[str, List[Any]] = {}

    def block(self, actor: Any, resource: str) -> Optional[List[Tuple]]:
        """Record a blocking wait; returns the cycle it closes, if any."""
        self.waiting[actor] = resource
        return self.find_cycle(actor)

    def grant(self, actor: Any, resource: str,
              exclusive: bool = False) -> None:
        self.waiting.pop(actor, None)
        held = self.holders.setdefault(resource, [])
        if exclusive:
            held.clear()
        held.append(actor)

    def release(self, actor: Any, resource: str) -> None:
        held = self.holders.get(resource)
        if held:
            try:
                held.remove(actor)
            except ValueError:
                # Hand-off release (releaser never granted here): drop
                # the oldest holder so the graph does not go stale.
                held.pop(0)

    def unblock(self, actor: Any) -> None:
        self.waiting.pop(actor, None)

    def find_cycle(self, start: Any) -> Optional[List[Tuple]]:
        """DFS from ``start``: [(actor, resource, holder), ...] closing
        back at ``start``, or None."""

        def walk(actor: Any, visiting: Set[Any]) -> Optional[List[Tuple]]:
            resource = self.waiting.get(actor)
            if resource is None:
                return None
            for holder in self.holders.get(resource, ()):
                if holder == start:
                    return [(actor, resource, holder)]
                if holder in visiting:
                    continue
                tail = walk(holder, visiting | {holder})
                if tail is not None:
                    return [(actor, resource, holder)] + tail
            return None

        return walk(start, {start})


class ConcurrencyTracker:
    """Vector-clock / lockset / wait-for tracker for one engine.

    ``mode="hb"`` maintains vector clocks and reports happens-before
    races; ``mode="lockset"`` skips all clock work (the cheap always-on
    mode) and reports lockset-discipline violations and deadlocks only.
    Hook methods are called by the instrumented runtime sources (see
    :mod:`repro.sim.instrument`); events from other engines are
    ignored, so stale installs cannot corrupt a newer context's run.
    """

    def __init__(self, engine, mode: str = "hb", runlog=None,
                 ctx=None) -> None:
        if mode not in ("hb", "lockset"):
            raise ValueError(f"unknown concurrency mode {mode!r}")
        self.engine = engine
        self.mode = mode
        self.runlog = runlog
        self.ctx = ctx
        self.finalized = False
        self._engine_actor = _Actor(_ENGINE_AID, "<engine>")
        self._actors: Dict[int, _Actor] = {}     # id(process) -> actor
        self._names: Dict[int, str] = {_ENGINE_AID: "<engine>"}
        self._next_aid = 1
        self._sync_vc: Dict[str, Dict[int, int]] = {}
        self._vars: Dict[str, _VarState] = {}
        self._graph = WaitForGraph()
        self._waits: Dict[int, _Wait] = {}       # aid -> wait
        self._wait_by_event: Dict[int, int] = {}  # id(event) -> aid
        self._handoffs: Dict[Any, Dict[int, int]] = {}
        self._sem_keys: Dict[int, str] = {}
        self._keepalive: List[Any] = []          # pin id()-keyed objects
        self._findings: List[Finding] = []
        self._race_seen: Set[Tuple] = set()
        self._deadlocked: Set[int] = set()
        self.accesses = 0
        self.sync_ops = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "ConcurrencyTracker":
        instrument.set_tracker(self)
        return self

    def uninstall(self) -> None:
        instrument.clear_tracker(self)

    # ------------------------------------------------------------------
    # Actors
    # ------------------------------------------------------------------
    def _current(self) -> _Actor:
        proc = self.engine.active_process
        if proc is None:
            # Engine-loop callbacks are serialized by the event loop —
            # modelling them as one actor is a true ordering of this run.
            return self._engine_actor
        actor = self._actors.get(id(proc))
        if actor is None:
            actor = self._new_actor(proc)
        return actor

    def _new_actor(self, proc) -> _Actor:
        aid = self._next_aid
        self._next_aid += 1
        name = f"{getattr(proc, 'name', None) or 'process'}#{aid}"
        actor = _Actor(aid, name, proc)
        self._actors[id(proc)] = actor
        self._names[aid] = name
        return actor

    def process_created(self, process) -> None:
        """Fork edge: the new process starts after its creator's now."""
        if process.engine is not self.engine:
            return
        creator = self._current()
        child = self._new_actor(process)
        if self.mode == "hb":
            child.vc = dict(creator.vc)
            child.vc[child.aid] = 1
            creator.vc[creator.aid] = creator.vc.get(creator.aid, 0) + 1

    # ------------------------------------------------------------------
    # Vector-clock edges
    # ------------------------------------------------------------------
    def _acquire_edge(self, actor: _Actor, key: str) -> None:
        if self.mode != "hb":
            return
        sync = self._sync_vc.get(key)
        if sync:
            _join(actor.vc, sync)

    def _release_edge(self, actor: _Actor, key: str) -> None:
        if self.mode != "hb":
            return
        sync = self._sync_vc.setdefault(key, {})
        _join(sync, actor.vc)
        actor.vc[actor.aid] = actor.vc.get(actor.aid, 0) + 1

    # ------------------------------------------------------------------
    # Lock-shaped resources (device gates, semaphores)
    # ------------------------------------------------------------------
    def on_gate_request(self, gate, request) -> None:
        if gate.engine is not self.engine:
            return
        self._on_lock_request(f"gate:{gate.device_name}", request,
                              exclusive=True, log=True)

    def on_gate_release(self, gate) -> None:
        if gate.engine is not self.engine:
            return
        self._on_lock_release(f"gate:{gate.device_name}", log=True)

    def on_gate_withdraw(self, gate, request) -> None:
        """A queued request was removed without ever being granted."""
        if gate.engine is not self.engine:
            return
        aid = self._wait_by_event.pop(id(request), None)
        if aid is not None:
            self._waits.pop(aid, None)
            self._graph.unblock(aid)

    def on_sem_acquire(self, sem, request, exclusive: bool) -> None:
        if sem.engine is not self.engine:
            return
        # Semaphore traffic (per-op core checkout) is far too hot for
        # the runlog; gates and channels carry the deadlock story.
        self._on_lock_request(self._sem_key(sem), request,
                              exclusive=exclusive, log=False)

    def on_sem_try(self, sem, exclusive: bool) -> None:
        """A successful ``try_acquire`` (no event, immediate grant)."""
        if sem.engine is not self.engine:
            return
        self.sync_ops += 1
        self._grant(self._current(), self._sem_key(sem), exclusive,
                    log=False)

    def on_sem_release(self, sem) -> None:
        if sem.engine is not self.engine:
            return
        self._on_lock_release(self._sem_key(sem), log=False)

    def _sem_key(self, sem) -> str:
        name = getattr(sem, "name", None)
        if name:
            return f"sem:{name}"
        key = self._sem_keys.get(id(sem))
        if key is None:
            key = f"sem:anon{len(self._sem_keys) + 1}"
            self._sem_keys[id(sem)] = key
            self._keepalive.append(sem)
        return key

    def _on_lock_request(self, key: str, request, exclusive: bool,
                         log: bool) -> None:
        if request.engine is not self.engine:
            return
        self.sync_ops += 1
        actor = self._current()
        if request.triggered:
            if request._ok:
                self._grant(actor, key, exclusive, log)
            return
        self._block(actor, key, request, log)
        request.callbacks.append(
            lambda event, a=actor, k=key, x=exclusive, lg=log:
            self._wait_fired(event, a, k, x, lg))

    def _on_lock_release(self, key: str, log: bool) -> None:
        self.sync_ops += 1
        actor = self._current()
        actor.held.discard(key)
        self._graph.release(actor.aid, key)
        self._release_edge(actor, key)
        if log:
            self._emit("cc_release", actor, key)

    def _grant(self, actor: _Actor, key: str, exclusive: bool,
               log: bool) -> None:
        self._acquire_edge(actor, key)
        self._graph.grant(actor.aid, key, exclusive=exclusive)
        if exclusive:
            actor.held.add(key)
        if log:
            self._emit("cc_grant", actor, key)

    def _block(self, actor: _Actor, key: str, event, log: bool) -> None:
        self._waits[actor.aid] = _Wait(actor, key)
        self._wait_by_event[id(event)] = actor.aid
        if log:
            self._emit("cc_block", actor, key)
        cycle = self._graph.block(actor.aid, key)
        if cycle is not None:
            self._deadlock(cycle)

    def _wait_fired(self, event, actor: _Actor, key: str,
                    exclusive: bool, log: bool) -> None:
        self._waits.pop(actor.aid, None)
        self._wait_by_event.pop(id(event), None)
        self._graph.unblock(actor.aid)
        if event._ok:
            self._grant(actor, key, exclusive, log)

    # ------------------------------------------------------------------
    # Rendezvous channels (message edges; no holder)
    # ------------------------------------------------------------------
    def on_channel_send(self, rendezvous, scope: str, key: str) -> None:
        if rendezvous.engine is not self.engine:
            return
        self.sync_ops += 1
        self._release_edge(self._current(), f"chan:{scope}/{key}")

    def on_channel_recv(self, rendezvous, scope: str, key: str,
                        event) -> None:
        if rendezvous.engine is not self.engine:
            return
        self.sync_ops += 1
        ckey = f"chan:{scope}/{key}"
        actor = self._current()
        if event.triggered:
            if event._ok:
                self._acquire_edge(actor, ckey)
            return
        self._block(actor, ckey, event, log=True)
        event.callbacks.append(
            lambda ev, a=actor, k=ckey: self._chan_fired(ev, a, k))

    def _chan_fired(self, event, actor: _Actor, key: str) -> None:
        self._waits.pop(actor.aid, None)
        self._wait_by_event.pop(id(event), None)
        self._graph.unblock(actor.aid)
        if event._ok:
            self._acquire_edge(actor, key)
            self._emit("cc_grant", actor, key)

    # ------------------------------------------------------------------
    # One-shot hand-offs (pool tasks, kernel completion callbacks)
    # ------------------------------------------------------------------
    def handoff_send(self, token: Any) -> None:
        """Publish the current actor's clock under ``token``."""
        if self.mode != "hb":
            return
        actor = self._current()
        self._handoffs[token] = dict(actor.vc)
        actor.vc[actor.aid] = actor.vc.get(actor.aid, 0) + 1

    def handoff_recv(self, token: Any) -> None:
        """Join the clock published under ``token``, if any."""
        if self.mode != "hb":
            return
        vc = self._handoffs.pop(token, None)
        if vc is not None:
            _join(self._current().vc, vc)

    def on_task_queued(self, pool, task) -> None:
        if pool.engine is not self.engine:
            return
        self.sync_ops += 1
        self.handoff_send(("task", task.task_id))

    def on_task_start(self, pool, task) -> None:
        if pool.engine is not self.engine:
            return
        self.handoff_recv(("task", task.task_id))

    # ------------------------------------------------------------------
    # Shared-state accesses
    # ------------------------------------------------------------------
    def access(self, key: str, kind: str = "write",
               where: Optional[str] = None,
               guard: Optional[str] = None) -> None:
        """One instrumented access to shared runtime state.

        ``guard`` names the implicit lock the call site's discipline
        requires (e.g. the per-pool allocation lock a real allocator
        would take): the access joins/advances the guard's clock — so
        consistently guarded accesses are ordered — and carries the
        guard in its lockset. An unguarded access to the same key from
        an unordered actor is exactly what the checkers flag.
        """
        self.accesses += 1
        actor = self._current()
        if guard is not None:
            self._acquire_edge(actor, guard)
        state = self._vars.get(key)
        if state is None:
            state = _VarState()
            self._vars[key] = state
        if self.mode == "hb":
            self._check_hb(state, key, kind, actor, where)
        self._check_lockset(state, key, kind, actor, where, guard)
        if guard is not None:
            self._release_edge(actor, guard)

    def _check_hb(self, state: _VarState, key: str, kind: str,
                  actor: _Actor, where: Optional[str]) -> None:
        own = actor.vc.get(actor.aid, 1)
        prev = state.write
        if prev is not None:
            waid, wclock, wwhere = prev
            if waid != actor.aid and wclock > actor.vc.get(waid, 0):
                self._race(key, kind, actor, where, waid, wwhere, "write")
        if kind == "write":
            for raid, (rclock, rwhere) in state.reads.items():
                if raid != actor.aid and rclock > actor.vc.get(raid, 0):
                    self._race(key, kind, actor, where, raid, rwhere,
                               "read")
            state.write = (actor.aid, own, where)
            state.reads = {}
        else:
            state.reads[actor.aid] = (own, where)

    def _check_lockset(self, state: _VarState, key: str, kind: str,
                       actor: _Actor, where: Optional[str],
                       guard: Optional[str]) -> None:
        if state.owner is None:
            state.owner = actor.aid          # Eraser: virgin → exclusive
        elif actor.aid != state.owner:
            state.shared = True
        if not state.shared:
            return
        held = actor.held if guard is None else (actor.held | {guard})
        if state.lockset is None:
            state.lockset = set(held)
        else:
            state.lockset &= held
        if kind == "write":
            state.written = True
        if state.written and not state.lockset and not state.reported:
            state.reported = True
            self._findings.append(Finding(
                check="concurrency.lockset", severity=Severity.WARNING,
                message=f"shared state {key!r} is written with an empty "
                        f"candidate lockset: accesses are not "
                        f"consistently guarded (latest: "
                        f"{self._names[actor.aid]} at "
                        f"{where or 'unknown site'})",
                where=where or key, t_start=self.engine.now,
                meta={"key": key}))

    def _race(self, key: str, kind: str, actor: _Actor,
              where: Optional[str], other_aid: int,
              other_where: Optional[str], other_kind: str) -> None:
        token = (key, min(actor.aid, other_aid), max(actor.aid, other_aid))
        if token in self._race_seen:
            return
        self._race_seen.add(token)
        finding = Finding(
            check="concurrency.race", severity=Severity.ERROR,
            message=f"{kind} of {key!r} by {self._names[actor.aid]} "
                    f"({where or 'unknown site'}) races with {other_kind} "
                    f"by {self._names[other_aid]} "
                    f"({other_where or 'unknown site'}): no happens-before "
                    f"ordering between them",
            where=where or key, t_start=self.engine.now,
            meta={"key": key, "actors": [self._names[actor.aid],
                                         self._names[other_aid]]})
        self._findings.append(finding)
        self._emit("cc_race", actor, key)

    # ------------------------------------------------------------------
    # Deadlocks
    # ------------------------------------------------------------------
    def _deadlock(self, cycle: List[Tuple]) -> None:
        for aid, _resource, _holder in cycle:
            self._deadlocked.add(aid)
        chain = " -> ".join(
            f"{self._names.get(aid, aid)} waits on {resource} "
            f"held by {self._names.get(holder, holder)}"
            for aid, resource, holder in cycle)
        self._findings.append(Finding(
            check="concurrency.deadlock", severity=Severity.ERROR,
            message=f"wait-for cycle detected: {chain}",
            where=cycle[0][1], t_start=self.engine.now,
            meta={"cycle": [list(edge) for edge in cycle]}))
        actor = self._waits[cycle[0][0]].actor \
            if cycle[0][0] in self._waits else self._engine_actor
        self._emit("cc_deadlock", actor, cycle[0][1])
        if self.ctx is not None:
            # Cold path by definition; keep obs out of the hot imports.
            from repro.obs.audit import dump_flight_record
            dump_flight_record(self.ctx, "deadlock-detected")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def waiting_rows(self) -> List[Dict[str, str]]:
        """Outstanding blocking waits (flight-recorder snapshot)."""
        return [{"actor": wait.actor.name, "resource": wait.resource}
                for wait in self._waits.values()]

    def report(self, label: Optional[str] = None) -> Report:
        """Findings so far plus end-of-run stuck-waiter detection.

        Idempotent: builds a fresh report each call from the recorded
        findings and the *current* wait set, so harness and CLI can
        both render it.
        """
        title = f"concurrency: {label}" if label else "concurrency"
        report = Report(title)
        report.findings.extend(self._findings)
        for aid, wait in self._waits.items():
            if aid in self._deadlocked:
                continue  # already reported as a cycle
            proc = wait.actor.proc
            if proc is not None and not proc.is_alive:
                continue  # interrupted/killed; nobody is stuck
            report.error(
                "concurrency.deadlock",
                f"{wait.actor.name} is still blocked on {wait.resource} "
                f"at end of run (lost wake-up / consumed token — the "
                f"PR 4 rendezvous bug class)",
                where=wait.resource, t_start=self.engine.now)
        report.info(
            "concurrency",
            f"checked {self.accesses} shared-state accesses across "
            f"{self.sync_ops} sync operations and "
            f"{len(self._actors) + 1} actors ({self.mode} mode)")
        return report

    def _emit(self, kind: str, actor: _Actor, resource: str) -> None:
        runlog = self.runlog
        if runlog is not None and runlog.enabled:
            runlog.emit(kind, actor=actor.name, resource=resource)


# ---------------------------------------------------------------------------
# Post-hoc deadlock detection from runlog records
# ---------------------------------------------------------------------------
def deadlock_from_runlog(records: Iterable[Dict[str, Any]],
                         title: str = "concurrency: runlog replay"
                         ) -> Report:
    """Replay ``cc_block``/``cc_grant``/``cc_release`` records through
    the wait-for graph; report cycles and never-granted waits."""
    report = Report(title)
    graph = WaitForGraph()
    blocked: Dict[str, str] = {}
    flagged: Set[str] = set()
    replayed = 0
    for record in records:
        kind = record.get("event")
        if kind not in ("cc_block", "cc_grant", "cc_release"):
            continue
        replayed += 1
        actor = record.get("actor", "?")
        resource = record.get("resource", "?")
        if kind == "cc_block":
            blocked[actor] = resource
            cycle = graph.block(actor, resource)
            if cycle is not None:
                chain = " -> ".join(
                    f"{a} waits on {r} held by {h}" for a, r, h in cycle)
                flagged.update(a for a, _r, _h in cycle)
                report.error(
                    "concurrency.deadlock",
                    f"wait-for cycle (runlog replay): {chain}",
                    where=resource, t_start=record.get("t_ms"))
        elif kind == "cc_grant":
            blocked.pop(actor, None)
            graph.grant(actor, resource,
                        exclusive=resource.startswith("gate:"))
        else:
            graph.release(actor, resource)
    for actor, resource in blocked.items():
        if actor in flagged:
            continue
        report.error(
            "concurrency.deadlock",
            f"{actor} blocked on {resource} with no grant before the "
            f"log ends (lost wake-up / consumed token)",
            where=resource)
    report.info("concurrency", f"replayed {replayed} cc_* record(s)")
    return report


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------
def concurrency_enabled() -> bool:
    return os.environ.get(CONCURRENCY_ENV, "") not in ("", "0")


def mode_from_env() -> str:
    value = os.environ.get(CONCURRENCY_ENV, "").strip().lower()
    return "lockset" if value == "lockset" else "hb"


def maybe_attach_concurrency_from_env(ctx):
    """Attach a tracker when $REPRO_CONCURRENCY asks for one.

    No-op when the variable is unset/"0" or the context already has a
    tracker (an explicit ``attach_concurrency`` wins). Returns the
    tracker or None.
    """
    if not concurrency_enabled():
        return None
    if getattr(ctx, "concurrency", None) is not None:
        return None
    return ctx.attach_concurrency(mode=mode_from_env())


def finalize_concurrency(ctx, label: str = "run") -> Optional[Report]:
    """End-of-run bookkeeping for an attached tracker.

    Uninstalls the hooks, appends the rendered report to
    ``$REPRO_CONCURRENCY_REPORT`` (when set), and — unless the
    sanitizer owns metrics export for this run — publishes the
    ``analysis.*`` counts. Safe to call more than once.
    """
    tracker = getattr(ctx, "concurrency", None)
    if tracker is None or tracker.finalized:
        return None
    tracker.finalized = True
    tracker.uninstall()
    report = tracker.report(label=label)
    from repro.analysis.integration import sanitize_enabled
    if not sanitize_enabled():
        # With --sanitize, analyze_context folds this report in and
        # exports the merged counts; don't double-count findings.
        report.export_metrics(ctx.metrics)
    path = os.environ.get(CONCURRENCY_REPORT_ENV)
    if path:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(report.render() + "\n\n")
    return report


# ---------------------------------------------------------------------------
# AST lint rules
# ---------------------------------------------------------------------------
_ACQUIRE_ATTRS = ("request", "acquire")
_RELEASE_ATTRS = ("release", "withdraw")
_BLOCKING_ATTRS = ("recv", "get", "acquire", "request")
_TIMEOUT_HINTS = ("timeout", "any_of")


def _function_nodes(func: ast.AST):
    """Preorder nodes of one function body, nested defs pruned."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))[::-1]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(list(ast.iter_child_nodes(node))[::-1])


def _call_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _has_timeout(node: ast.AST) -> bool:
    """True when the yield expression races the wait against a clock."""
    for child in ast.walk(node):
        attr = _call_attr(child)
        if attr in _TIMEOUT_HINTS:
            return True
    return False


class _ConcurrencyVisitor(ast.NodeVisitor):
    """Per-function lint for lock/rendezvous usage hazards."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, check: str, severity: Severity,
              message: str) -> None:
        self.findings.append(Finding(
            check=check, severity=severity, message=message,
            where=f"{self.path}:{node.lineno}",
            meta={"line": node.lineno}))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_function(self, func: ast.AST) -> None:
        acquires: List[ast.Call] = []       # .request()/.acquire() calls
        gate_acquires: List[ast.Call] = []  # .request() specifically
        releases: List[ast.Call] = []
        finally_releases: List[ast.Call] = []
        blocking_yields: List[ast.expr] = []
        finally_bodies: List[ast.AST] = []
        for node in _function_nodes(func):
            if isinstance(node, ast.Try) and node.finalbody:
                for stmt in node.finalbody:
                    finally_bodies.extend(ast.walk(stmt))
        in_finally = {id(node) for node in finally_bodies}
        for node in _function_nodes(func):
            attr = _call_attr(node)
            if attr in _ACQUIRE_ATTRS:
                acquires.append(node)
                if attr == "request":
                    gate_acquires.append(node)
            elif attr in _RELEASE_ATTRS:
                releases.append(node)
                if id(node) in in_finally:
                    finally_releases.append(node)
            if isinstance(node, ast.Yield) and node.value is not None \
                    and _call_attr(node.value) in _BLOCKING_ATTRS \
                    and not _has_timeout(node):
                blocking_yields.append(node)
            if isinstance(node, ast.Expr) \
                    and isinstance(node.value, ast.Yield) \
                    and node.value.value is not None \
                    and _call_attr(node.value.value) == "recv":
                self._flag(
                    node, "concurrency.token-drop", Severity.ERROR,
                    "rendezvous token received and discarded: a consumed "
                    "token that never completes its RECV path hangs the "
                    "resumed run (the PR 4 deadlock); bind the value and "
                    "re-send it on every abort path")
        # acquire-no-release: the function pairs an acquire with a
        # release, but no release is exception-safe (inside a finally).
        # Cross-function protocols (acquire here, release elsewhere)
        # are out of scope — we cannot see the pairing.
        if acquires and releases and not finally_releases:
            self._flag(
                acquires[0], "concurrency.acquire-no-release",
                Severity.ERROR,
                "acquire and release are paired in this function but no "
                "release sits in a try/finally: an exception between "
                "them leaks the lock/permit forever")
        # hold-wait: blocking on something else while holding a device
        # gate, with no timeout bounding the wait.
        if gate_acquires:
            first = min(call.lineno for call in gate_acquires)
            later_releases = [call.lineno for call in releases
                              if call.lineno > first]
            bound = min(later_releases) if later_releases \
                else float("inf")
            acquire_ids = {id(call) for call in gate_acquires}
            for node in blocking_yields:
                if id(node.value) in acquire_ids:
                    continue  # the gate acquisition itself
                if first < node.lineno < bound:
                    self._flag(
                        node, "concurrency.hold-wait", Severity.WARNING,
                        "blocking wait while holding a device gate with "
                        "no timeout: a stalled producer wedges the whole "
                        "device; race the wait against engine.timeout() "
                        "or release first")


def lint_concurrency_source(source: str,
                            path: str = "<string>") -> List[Finding]:
    """Concurrency-lint one module's source; pragma lines are waived."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            check="syntax", severity=Severity.ERROR,
            message=f"cannot parse: {exc.msg}",
            where=f"{path}:{exc.lineno or 0}")]
    visitor = _ConcurrencyVisitor(path)
    visitor.visit(tree)
    lines = source.splitlines()
    kept: List[Finding] = []
    for finding in visitor.findings:
        line_no = finding.meta.get("line", 0)
        line = lines[line_no - 1] if 0 < line_no <= len(lines) else ""
        if PRAGMA in line:
            continue
        kept.append(finding)
    return kept


def lint_concurrency_paths(paths: Sequence[Union[str, os.PathLike]],
                           title: str = "concurrency lint") -> Report:
    """Concurrency-lint every ``.py`` file under ``paths``."""
    report = Report(title)
    files = iter_python_files(list(paths))
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        report.findings.extend(
            lint_concurrency_source(source, str(file_path)))
    report.info("concurrency", f"scanned {len(files)} file(s)")
    return report
