"""Static graph linter: structural checks before a graph executes.

Validates the properties the executor and partitioner silently rely on
(PAPER.md §2.1, §3.2): acyclicity, symmetric edge bookkeeping, complete
placement, transfer ops on every cross-device edge, send/recv channel
pairing, and — for SwitchFlow's multi-version executors — that every
replica of a subgraph agrees in topology with the primary. A divergent
replica would make a migrated run resume against a different dependency
structure than the one its completed-node set was recorded under.

All checks report through the shared :class:`~repro.analysis.findings`
model instead of raising, so a single pass surfaces *every* problem.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.analysis.findings import Report
from repro.graph.graph import Graph
from repro.graph.ops import OpKind
from repro.graph.partition import Partition

#: Ops that legitimately terminate a cross-device edge.
_TRANSFER_KINDS = (OpKind.SEND, OpKind.RECV)


def lint_graph(graph: Graph, require_placement: bool = False,
               executable: bool = False,
               report: Optional[Report] = None) -> Report:
    """Structural lint of one graph.

    ``require_placement`` demands a device on every node (a graph headed
    for partitioning); ``executable`` additionally demands that any
    cross-device edge is carried by a send/recv pair — true for the
    per-device subgraphs handed to executors, but *not* for a freshly
    placed full graph, where partitioning inserts the transfer ops.
    """
    report = report if report is not None else Report(
        f"graph lint: {graph.name}")
    _check_edge_bookkeeping(report, graph)
    _check_cycles(report, graph)
    if require_placement or executable:
        _check_placement(report, graph)
    if executable:
        _check_cross_device_edges(report, graph)
    return report


def lint_partition(partition: Partition,
                   report: Optional[Report] = None) -> Report:
    """Lint every per-device subgraph plus the channel wiring."""
    report = report if report is not None else Report(
        f"partition lint: {partition.name}")
    for device, subgraph in partition.subgraphs.items():
        lint_graph(subgraph, executable=True, report=report)
        for node in subgraph:
            if node.device is not None and node.device != device:
                report.error(
                    "misplaced-node",
                    f"{node!r} sits in the {device!r} subgraph but is "
                    f"placed on {node.device!r}",
                    where=subgraph.name)
    _check_channels(report, partition)
    return report


def lint_replicas(primary: Graph, replica: Graph,
                  report: Optional[Report] = None) -> Report:
    """A replica executor's subgraph must match the primary's topology.

    SwitchFlow keeps one executor version per device over *the same*
    subgraph (paper §3.2); a replica with different nodes or edges would
    desynchronize the completed-node bookkeeping a resumed run carries
    across devices.
    """
    report = report if report is not None else Report(
        f"replica lint: {replica.name}")
    primary_nodes = {node.node_id for node in primary}
    replica_nodes = {node.node_id for node in replica}
    missing = primary_nodes - replica_nodes
    extra = replica_nodes - primary_nodes
    if missing:
        report.error(
            "divergent-replica",
            f"replica {replica.name!r} is missing {len(missing)} node(s) "
            f"of primary {primary.name!r}: {sorted(missing)[:10]}",
            where=replica.name)
    if extra:
        report.error(
            "divergent-replica",
            f"replica {replica.name!r} has {len(extra)} node(s) absent "
            f"from primary {primary.name!r}: {sorted(extra)[:10]}",
            where=replica.name)
    primary_edges = _edge_set(primary)
    replica_edges = _edge_set(replica)
    shared = primary_nodes & replica_nodes
    for src, dst in sorted(primary_edges - replica_edges):
        if src in shared and dst in shared:
            report.error(
                "divergent-replica",
                f"replica {replica.name!r} lacks edge "
                f"#{src}->#{dst} of primary {primary.name!r}",
                where=replica.name)
    for src, dst in sorted(replica_edges - primary_edges):
        if src in shared and dst in shared:
            report.error(
                "divergent-replica",
                f"replica {replica.name!r} adds edge #{src}->#{dst} "
                f"not present in primary {primary.name!r}",
                where=replica.name)
    return report


def lint_session(session, report: Optional[Report] = None) -> Report:
    """Lint a built session: partition wiring plus replica agreement."""
    report = report if report is not None else Report(
        f"session lint: {session.job}")
    lint_partition(session.partition, report=report)
    primary = session.compute_subgraph
    for executor in session.versions.values():
        if executor.subgraph is primary:
            continue  # shared object: trivially identical
        lint_replicas(primary, executor.subgraph, report=report)
    return report


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------
def _edge_set(graph: Graph) -> Set[Tuple[int, int]]:
    return {(src, dst)
            for src, successors in graph._successors.items()
            for dst in successors}


def _check_edge_bookkeeping(report: Report, graph: Graph) -> None:
    """Adjacency must be closed over the node set and symmetric."""
    nodes = set(graph._nodes)
    for src, successors in graph._successors.items():
        for dst in successors:
            if dst not in nodes:
                report.error(
                    "dangling-edge",
                    f"edge #{src}->#{dst} points at a node not in the "
                    f"graph", where=graph.name)
            elif src not in graph._predecessors.get(dst, ()):
                report.error(
                    "dangling-edge",
                    f"edge #{src}->#{dst} has no reverse predecessor "
                    f"entry (asymmetric bookkeeping)", where=graph.name)
    for dst, predecessors in graph._predecessors.items():
        for src in predecessors:
            if src not in nodes:
                report.error(
                    "dangling-edge",
                    f"predecessor entry #{src}->#{dst} points at a node "
                    f"not in the graph", where=graph.name)


def _check_cycles(report: Report, graph: Graph) -> None:
    """Kahn's algorithm; whatever cannot be ordered sits on a cycle."""
    in_degree = {nid: 0 for nid in graph._nodes}
    for _src, successors in graph._successors.items():
        for dst in successors:
            if dst in in_degree:
                in_degree[dst] += 1
    ready = [nid for nid, degree in in_degree.items() if degree == 0]
    ordered = 0
    while ready:
        nid = ready.pop()
        ordered += 1
        for successor in graph._successors.get(nid, ()):
            if successor not in in_degree:
                continue
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if ordered != len(graph._nodes):
        cyclic = sorted(nid for nid, degree in in_degree.items()
                        if degree > 0)
        names = [repr(graph._nodes[nid].name) for nid in cyclic[:8]]
        report.error(
            "cycle",
            f"{len(cyclic)} node(s) sit on at least one cycle: "
            f"{', '.join(names)}", where=graph.name,
            node_ids=cyclic[:32])


def _check_placement(report: Report, graph: Graph) -> None:
    for node in graph:
        if node.device is None:
            report.error(
                "unplaced-node",
                f"{node!r} has no device assignment", where=graph.name)


def _check_cross_device_edges(report: Report, graph: Graph) -> None:
    """In an executable graph every device hop is a send/recv pair."""
    for node in graph:
        if node.device is None:
            continue
        for successor in graph.successors(node):
            if successor.device is None or successor.device == node.device:
                continue
            if node.kind in _TRANSFER_KINDS \
                    or successor.kind in _TRANSFER_KINDS:
                continue
            report.error(
                "cross-device-edge",
                f"edge {node.name!r} ({node.device}) -> "
                f"{successor.name!r} ({successor.device}) crosses "
                f"devices without a send/recv pair", where=graph.name)


def _check_channels(report: Report, partition: Partition) -> None:
    """Every channel needs exactly one SEND and at least one RECV."""
    sends: dict = {}
    recvs: dict = {}
    for subgraph in partition.subgraphs.values():
        for node in subgraph:
            key = node.op.attrs.get("channel")
            if key is None:
                continue
            if node.kind is OpKind.SEND:
                sends[key] = sends.get(key, 0) + 1
            elif node.kind is OpKind.RECV:
                recvs[key] = recvs.get(key, 0) + 1
    declared = {channel.key for channel in partition.channels}
    for key in sorted(declared | set(sends) | set(recvs)):
        n_send = sends.get(key, 0)
        n_recv = recvs.get(key, 0)
        if n_send != 1 or n_recv < 1:
            report.error(
                "unpaired-channel",
                f"channel {key!r} has {n_send} send(s) and {n_recv} "
                f"recv(s); expected exactly one send and >=1 recv",
                where=partition.name)
        elif key not in declared:
            report.warning(
                "unpaired-channel",
                f"channel {key!r} is wired but not declared in the "
                f"partition's channel list", where=partition.name)


def lint_graphs(graphs: Iterable[Graph]) -> Report:
    """Convenience: lint several graphs into one report."""
    report = Report("graph lint")
    for graph in graphs:
        lint_graph(graph, report=report)
    return report
