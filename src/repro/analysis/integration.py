"""Wiring of the analysis passes into the experiment pipeline.

``switchflow-experiments --sanitize`` (and the ``repro.analysis
sanitize`` subcommand) set :data:`SANITIZE_ENV`; the experiment
harnesses then call :func:`enforce` on every finished
:class:`~repro.core.context.RunContext`. The environment variable —
rather than a parameter — is deliberate: the parallel runner fans
experiments across ``fork``-ed worker processes, and the flag must
survive that boundary without threading a new argument through every
experiment signature.

``enforce`` runs the schedule sanitizer and (when sessions are known)
the graph linter, exports finding counts through the run's ``obs``
metrics registry (``analysis.*``), and raises :class:`SanitizationError`
on any ERROR finding — which is what turns ``runner --sanitize`` into a
non-zero exit.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro.analysis.findings import Report, Severity
from repro.analysis.graph_lint import lint_session
from repro.analysis.sanitizer import SanitizerConfig, sanitize_run

#: Set to a non-empty, non-"0" value to sanitize every run.
SANITIZE_ENV = "REPRO_SANITIZE"


class SanitizationError(RuntimeError):
    """A sanitized run produced at least one ERROR finding."""

    def __init__(self, report: Report) -> None:
        super().__init__(report.render(min_severity=Severity.WARNING))
        self.report = report


def sanitize_enabled() -> bool:
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


def analyze_context(ctx, policy=None, sessions: Iterable = (),
                    label: str = "run",
                    config: Optional[SanitizerConfig] = None) -> Report:
    """Run sanitizer + graph lint over a finished context.

    Always exports ``analysis.*`` counts into the context's metrics
    registry; never raises. Callers that want enforcement use
    :func:`enforce`.
    """
    report = sanitize_run(ctx, policy=policy, config=config)
    report.title = f"analysis: {label}"
    for session in sessions:
        if session is not None:
            lint_session(session, report=report)
    tracker = getattr(ctx, "concurrency", None)
    if tracker is not None:
        # An attached concurrency tracker's findings ride the same
        # report, so races/deadlocks gate --sanitize like any other
        # ERROR and export under analysis.findings_total.
        report.extend(tracker.report(label=label))
    report.export_metrics(ctx.metrics)
    return report


def enforce(ctx, policy=None, sessions: Iterable = (),
            label: str = "run") -> Optional[Report]:
    """Sanitize ``ctx`` if :data:`SANITIZE_ENV` is set; raise on ERROR.

    Returns the report when sanitization ran (None when disabled) so
    harnesses can surface warning counts without re-running the passes.
    """
    if not sanitize_enabled():
        return None
    report = analyze_context(ctx, policy=policy, sessions=sessions,
                             label=label)
    if report.has_errors:
        raise SanitizationError(report)
    return report
