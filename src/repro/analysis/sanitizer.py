"""Schedule sanitizer: verify the paper's runtime invariants on a trace.

Consumes the :class:`~repro.sim.trace.Tracer` spans and
:class:`~repro.obs.runlog.RunLog` records of a finished run and checks
the invariants SwitchFlow's correctness argument rests on (PAPER.md
sections cited per check):

* **mutual-exclusion** (§3.2) — no two jobs' compute spans overlap on
  one GPU while an exclusive-GPU policy is in force.
* **preemption-safety** (§3.3) — after a victim's abort completes, the
  victim executes nothing further on the contested device until a later
  scheduling decision reassigns it there.
* **migration-critical-path** (§3.3, Table 1) — the victim's weight
  migration overlaps the preemptor's compute instead of serializing
  ahead of it.
* **memory-ceiling** (§2.2) — no device's memory high-water mark exceeds
  the capacity declared in :mod:`repro.hw.specs`; on a cluster the
  aggregate per-node high water must also respect the node's aggregate
  capacity.
* **route-placement** (ROADMAP item 2) — every state transfer departs
  from where the job's state was last recorded, over a route whose
  endpoints (and waypoints, when multi-hop) are devices the machine
  actually has.
* **span-wellformed / span-leak / clock-monotonic** — trace hygiene:
  every span closes, closes after it opens, and the run log's clock
  never goes backwards.

Every check degrades to pure data (span list + record list), so tests
can feed crafted bad traces without running a simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Report, Severity
from repro.sim.trace import Span

GPU_LANE_PREFIX = "gpu:"


@dataclass(frozen=True)
class SanitizerConfig:
    """Which invariants to enforce, and how loudly."""

    #: Enforce per-GPU cross-job mutual exclusion. Policies that share
    #: the device on purpose (multi-threaded TF, MPS) advertise
    #: ``exclusive_gpu = False`` and skip this check.
    exclusive_gpu: bool = True
    check_preemption: bool = True
    check_migration: bool = True
    check_memory: bool = True
    check_clock: bool = True
    check_spans: bool = True
    #: Cross-node invariants: transfers depart from the recorded
    #: placement, over routes whose endpoints exist.
    check_routes: bool = True
    #: Serving request-span accounting: every arrived request gets
    #: exactly one terminal event (completed xor shed), never both,
    #: never a terminal without an arrival.
    check_serving: bool = True
    #: Findings per check before the remainder is summarized.
    max_reports_per_check: int = 20


def open_span_findings(tracer) -> List[Finding]:
    """Span-leak findings for every still-open span of a tracer.

    This is the Finding-model face of
    :meth:`repro.sim.trace.Tracer.assert_all_closed`: a leaked span
    under-counts a lane's busy time, silently skewing every busy/idle
    figure derived from the trace.
    """
    return [
        Finding(
            check="span-leak", severity=Severity.ERROR,
            message=f"span {open_span.name!r} opened at "
                    f"{open_span.start:.3f}ms was never closed",
            where=open_span.lane, t_start=open_span.start)
        for open_span in tracer.open_spans
    ]


def sanitize_run(ctx, policy=None,
                 config: Optional[SanitizerConfig] = None) -> Report:
    """Run every trace invariant against a finished :class:`RunContext`.

    ``policy`` (when given) decides whether the mutual-exclusion check
    applies: policies sharing GPUs by design set ``exclusive_gpu=False``.
    """
    config = config or SanitizerConfig()
    exclusive = config.exclusive_gpu
    if policy is not None:
        exclusive = bool(getattr(policy, "exclusive_gpu", False))
    machine = ctx.machine
    memory_peaks = {
        gpu.name: (gpu.memory.high_water_mark, gpu.spec.memory_bytes)
        for gpu in machine.gpus}
    # On a multi-node machine, also enforce the aggregate per-node
    # ceiling: the sum of a node's GPU high waters must respect the
    # sum of their capacities. (Keys are node names — "node1" — which
    # never collide with device names like "node1/gpu0".)
    node_peaks: Dict[str, List[int]] = {}
    for gpu in machine.gpus:
        totals = node_peaks.setdefault(
            machine.node_name_of(gpu.name), [0, 0])
        totals[0] += gpu.memory.high_water_mark
        totals[1] += gpu.spec.memory_bytes
    if len(node_peaks) > 1:
        for node, (high, capacity) in node_peaks.items():
            memory_peaks[node] = (high, capacity)
    report = sanitize_trace(
        ctx.tracer.spans, records=ctx.runlog.records,
        memory_peaks=memory_peaks,
        known_devices={device.name for device in machine.devices},
        config=SanitizerConfig(
            exclusive_gpu=exclusive,
            check_preemption=config.check_preemption,
            check_migration=config.check_migration,
            check_memory=config.check_memory,
            check_clock=config.check_clock,
            check_spans=config.check_spans,
            check_routes=config.check_routes,
            check_serving=config.check_serving,
            max_reports_per_check=config.max_reports_per_check))
    if config.check_spans:
        # Spans still open when the engine stopped are in-flight work
        # truncated by the measurement window (e.g. pipeline chunks of
        # the next batch), not leaks — the harness halts the instant
        # the measured processes finish, stranding whatever was
        # mid-flight. Narrate them; strict closure enforcement after an
        # *orderly* shutdown is :meth:`Tracer.assert_all_closed`.
        open_spans = ctx.tracer.open_spans
        if open_spans:
            names = ", ".join(
                f"{s.lane}/{s.name}" for s in open_spans[:4])
            if len(open_spans) > 4:
                names += ", ..."
            report.info(
                "span-inflight",
                f"{len(open_spans)} span(s) still in flight when the "
                f"run stopped at {ctx.engine.now:.3f}ms: {names}")
    return report


def sanitize_trace(spans: Sequence[Span],
                   records: Sequence[Dict[str, Any]] = (),
                   memory_peaks: Optional[Dict[str, Tuple[int, int]]] = None,
                   config: Optional[SanitizerConfig] = None,
                   known_devices: Optional[set] = None,
                   title: str = "schedule sanitizer") -> Report:
    """Pure-data sanitizer: spans + run-log records in, findings out."""
    config = config or SanitizerConfig()
    report = Report(title)
    if config.check_spans:
        _check_wellformed(report, spans, config)
    if config.check_clock:
        _check_clock(report, records, config)
    if config.exclusive_gpu:
        _check_mutual_exclusion(report, spans, config)
    if config.check_preemption:
        _check_preemption_safety(report, spans, records, config)
    if config.check_migration:
        _check_migration_off_critical_path(report, spans, records)
    if config.check_routes:
        _check_route_placement(report, records, config, known_devices)
    if config.check_serving:
        _check_request_spans(report, records, config)
    if config.check_memory and memory_peaks:
        _check_memory_ceiling(report, memory_peaks)
    return report


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------
class _Budget:
    """Caps findings per check; summarizes the overflow."""

    def __init__(self, report: Report, check: str, limit: int) -> None:
        self.report = report
        self.check = check
        self.limit = limit
        self.emitted = 0
        self.dropped = 0

    def error(self, message: str, **kwargs: Any) -> None:
        if self.emitted < self.limit:
            self.report.error(self.check, message, **kwargs)
            self.emitted += 1
        else:
            self.dropped += 1

    def flush(self) -> None:
        if self.dropped:
            self.report.info(
                self.check,
                f"{self.dropped} further {self.check} finding(s) suppressed")


def _check_wellformed(report: Report, spans: Sequence[Span],
                      config: SanitizerConfig) -> None:
    budget = _Budget(report, "span-wellformed", config.max_reports_per_check)
    for span in spans:
        if span.end < span.start or span.start != span.start:  # NaN-safe
            budget.error(
                f"span {span.name!r} closes before it opens "
                f"({span.start:.3f} -> {span.end:.3f})",
                where=span.lane, t_start=span.start, t_end=span.end)
    budget.flush()


def _check_clock(report: Report, records: Sequence[Dict[str, Any]],
                 config: SanitizerConfig) -> None:
    budget = _Budget(report, "clock-monotonic", config.max_reports_per_check)
    previous = None
    for index, record in enumerate(records):
        t_ms = record.get("t_ms")
        if t_ms is None:
            continue
        if previous is not None and t_ms < previous:
            budget.error(
                f"run-log record #{index} ({record.get('event')!r}) is "
                f"stamped {t_ms:.3f}ms, before the preceding record's "
                f"{previous:.3f}ms",
                where="runlog", t_start=t_ms, t_end=previous)
        previous = t_ms if previous is None else max(previous, t_ms)
    budget.flush()


def _gpu_spans_by_lane(spans: Iterable[Span]) -> Dict[str, List[Span]]:
    lanes: Dict[str, List[Span]] = {}
    for span in spans:
        if span.lane.startswith(GPU_LANE_PREFIX):
            lanes.setdefault(span.lane, []).append(span)
    for lane_spans in lanes.values():
        lane_spans.sort(key=lambda s: (s.start, s.end))
    return lanes


def _check_mutual_exclusion(report: Report, spans: Sequence[Span],
                            config: SanitizerConfig) -> None:
    """No two jobs' kernels co-resident on one GPU (paper §3.2).

    Sweep each GPU lane in start order with an active-span heap: any
    still-active span from a *different* job when a new span begins is a
    violation of the DeviceGate invariant.
    """
    budget = _Budget(report, "mutual-exclusion",
                     config.max_reports_per_check)
    for lane, lane_spans in _gpu_spans_by_lane(spans).items():
        active: List[Tuple[float, int, Span]] = []   # (end, tiebreak, span)
        for index, span in enumerate(lane_spans):
            context = span.meta.get("context")
            if context is None or span.duration <= 0:
                continue
            while active and active[0][0] <= span.start:
                heapq.heappop(active)
            for _end, _tie, other in active:
                other_context = other.meta.get("context")
                if other_context != context:
                    budget.error(
                        f"jobs {other_context!r} ({other.name}) and "
                        f"{context!r} ({span.name}) overlap on the same "
                        f"GPU",
                        where=lane,
                        t_start=span.start,
                        t_end=min(span.end, other.end),
                        jobs=sorted((str(other_context), str(context))))
            heapq.heappush(active, (span.end, index, span))
    budget.flush()


def _preemption_timeline(records: Sequence[Dict[str, Any]]):
    """Pair each ``preempt`` record with its ``abort_complete``.

    Returns ``(windows, reassignments)`` where each window is
    ``(victim, device, t_preempt, t_abort)`` and ``reassignments`` maps
    ``(victim, device)`` to the times the victim was later sent *back*
    to that device (making post-abort spans there legitimate again).
    """
    windows: List[Tuple[str, str, float, Optional[float]]] = []
    pending: Dict[str, int] = {}
    reassignments: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        event = record.get("event")
        if event == "preempt":
            victim = record.get("victim")
            device = record.get("from_device")
            target = record.get("to_device")
            t_ms = record.get("t_ms", 0.0)
            pending[victim] = len(windows)
            windows.append((victim, device, t_ms, None))
            reassignments.setdefault((victim, target), []).append(t_ms)
        elif event == "abort_complete":
            victim = record.get("victim")
            index = pending.pop(victim, None)
            if index is not None:
                name, device, t_preempt, _ = windows[index]
                windows[index] = (name, device, t_preempt,
                                  record.get("t_ms", t_preempt))
        elif event == "victim_readmitted":
            # Fault recovery (repro.faults): a migration exhausted its
            # transfer retries and the policy sent the victim back to
            # the device its state lives on — a legitimate scheduling
            # decision, so later spans there are not violations.
            job = record.get("job")
            device = record.get("device")
            reassignments.setdefault((job, device), []).append(
                record.get("t_ms", 0.0))
    return windows, reassignments


def _check_preemption_safety(report: Report, spans: Sequence[Span],
                             records: Sequence[Dict[str, Any]],
                             config: SanitizerConfig) -> None:
    """A preempted victim runs nothing on the contested GPU (paper §3.3).

    Kernels dispatched before the preemption decision may drain, but no
    victim span may *start* after the abort completes — unless a later
    scheduling decision migrates the victim back to that device.
    """
    budget = _Budget(report, "preemption-safety",
                     config.max_reports_per_check)
    windows, reassignments = _preemption_timeline(records)
    lanes = _gpu_spans_by_lane(spans)
    for victim, device, t_preempt, t_abort in windows:
        lane_spans = lanes.get(GPU_LANE_PREFIX + str(device), ())
        returns = reassignments.get((victim, device), ())
        for span in lane_spans:
            if span.meta.get("context") != victim:
                continue
            if t_abort is not None and span.start > t_abort:
                if any(t_abort < back <= span.start for back in returns):
                    continue  # legitimately migrated back in between
                budget.error(
                    f"victim {victim!r} ran {span.name!r} on {device!r} "
                    f"at {span.start:.3f}ms, after its abort completed "
                    f"at {t_abort:.3f}ms and before any reassignment",
                    where=span.lane, t_start=span.start, t_end=span.end,
                    victim=victim, preempted_at=t_preempt)
            elif t_preempt < span.start < (t_abort
                                           if t_abort is not None
                                           else float("inf")):
                budget.error(
                    f"victim {victim!r} started {span.name!r} on "
                    f"{device!r} at {span.start:.3f}ms, inside the "
                    f"abort window opened at {t_preempt:.3f}ms",
                    where=span.lane, t_start=span.start, t_end=span.end,
                    victim=victim, preempted_at=t_preempt)
    budget.flush()


def _check_migration_off_critical_path(
        report: Report, spans: Sequence[Span],
        records: Sequence[Dict[str, Any]]) -> None:
    """Weight migration must overlap the preemptor's compute (Table 1).

    For each preemption with a state transfer off the contested device,
    the preemptor's first kernel there should begin *before* the
    victim's migration finishes — the transfer rides PCIe concurrently.
    A preemptor that only starts after the transfer lands suggests the
    migration serialized onto its critical path (WARNING: the gap can
    also come from the preemptor's own input pipeline).
    """
    transfers: Dict[str, List[Tuple[float, float, str]]] = {}
    starts: Dict[Tuple[str, str], float] = {}
    for record in records:
        event = record.get("event")
        if event == "state_transfer_start":
            starts[(record.get("job"), record.get("src"))] = \
                record.get("t_ms", 0.0)
        elif event == "state_transfer_done":
            key = (record.get("job"), record.get("src"))
            begun = starts.pop(key, record.get("t_ms", 0.0))
            transfers.setdefault(record.get("job"), []).append(
                (begun, record.get("t_ms", 0.0), record.get("src")))
    if not transfers:
        return
    windows, _ = _preemption_timeline(records)
    lanes = _gpu_spans_by_lane(spans)
    for victim, device, t_preempt, _t_abort in windows:
        migration = next(
            ((begun, done) for begun, done, src in transfers.get(victim, ())
             if src == device and begun >= t_preempt), None)
        if migration is None:
            continue
        _begun, done = migration
        lane_spans = lanes.get(GPU_LANE_PREFIX + str(device), ())
        preemptor_start = next(
            (span.start for span in lane_spans
             if span.start >= t_preempt
             and span.meta.get("context") not in (None, victim)), None)
        if preemptor_start is not None and preemptor_start > done:
            report.warning(
                "migration-critical-path",
                f"preemptor's first kernel on {device!r} started at "
                f"{preemptor_start:.3f}ms, after victim {victim!r}'s "
                f"state transfer completed at {done:.3f}ms — the "
                f"migration may have serialized onto the critical path",
                where=GPU_LANE_PREFIX + str(device),
                t_start=t_preempt, t_end=preemptor_start, victim=victim)


def _check_route_placement(report: Report,
                           records: Sequence[Dict[str, Any]],
                           config: SanitizerConfig,
                           known_devices: Optional[set] = None) -> None:
    """State transfers depart from the recorded placement (ROADMAP 2).

    Tracks each job's location from its completed transfers: a
    ``state_transfer_start`` whose ``src`` is not where the job's state
    was last recorded means a route was used whose endpoints don't
    match the placement. Multi-hop records carry the route string
    (``a->b->c``); its ends must join the transfer endpoints, its hop
    count must match, and — when the device set is known — every
    waypoint must be a device the machine actually has.
    """
    budget = _Budget(report, "route-placement",
                     config.max_reports_per_check)
    location: Dict[str, str] = {}
    for record in records:
        event = record.get("event")
        if event == "state_transfer_done":
            location[record.get("job")] = record.get("dst")
            continue
        if event != "state_transfer_start":
            continue
        job = record.get("job")
        src = record.get("src")
        dst = record.get("dst")
        t_ms = record.get("t_ms", 0.0)
        if known_devices is not None:
            for endpoint in (src, dst):
                if endpoint not in known_devices:
                    budget.error(
                        f"state transfer for {job!r} names unknown "
                        f"device {endpoint!r}",
                        where="runlog", t_start=t_ms, job=job)
        recorded = location.get(job)
        if recorded is not None and src != recorded:
            budget.error(
                f"job {job!r} starts a state transfer from {src!r}, but "
                f"its state was last recorded on {recorded!r}",
                where="runlog", t_start=t_ms, job=job)
        route = record.get("route")
        if route:
            path = str(route).split("->")
            if path[0] != src or path[-1] != dst:
                budget.error(
                    f"route {route!r} does not join the transfer "
                    f"endpoints {src!r} -> {dst!r}",
                    where="runlog", t_start=t_ms, job=job)
            hops = record.get("hops")
            if hops is not None and hops != len(path) - 1:
                budget.error(
                    f"route {route!r} has {len(path) - 1} hop(s) but "
                    f"the record claims {hops}",
                    where="runlog", t_start=t_ms, job=job)
            if known_devices is not None:
                for waypoint in path[1:-1]:
                    if waypoint not in known_devices:
                        budget.error(
                            f"route {route!r} stages through unknown "
                            f"device {waypoint!r}",
                            where="runlog", t_start=t_ms, job=job)
    budget.flush()


def _check_request_spans(report: Report,
                         records: Sequence[Dict[str, Any]],
                         config: SanitizerConfig) -> None:
    """Serving request accounting: admit once, terminate exactly once.

    Keyed on ``(job, req)``: every ``request_arrived`` must be followed
    by exactly one terminal event — ``request_completed`` xor
    ``request_shed``. A double terminal means a request was counted
    twice (inflating goodput or shed rate); a terminal without an
    arrival means the front-end invented a request; an arrival with no
    terminal means a request was silently dropped, which under-counts
    the tail exactly where the SLO lives.
    """
    budget = _Budget(report, "request-span", config.max_reports_per_check)
    arrived: Dict[Tuple[str, Any], float] = {}
    terminal: Dict[Tuple[str, Any], str] = {}
    for record in records:
        event = record.get("event")
        if event not in ("request_arrived", "request_completed",
                         "request_shed"):
            continue
        key = (record.get("job"), record.get("req"))
        t_ms = record.get("t_ms", 0.0)
        if event == "request_arrived":
            if key in arrived:
                budget.error(
                    f"request {key[1]!r} of job {key[0]!r} arrived "
                    f"twice (first at {arrived[key]:.3f}ms)",
                    where="runlog", t_start=t_ms, job=key[0])
            arrived[key] = t_ms
            continue
        verb = "completed" if event == "request_completed" else "shed"
        if key not in arrived:
            budget.error(
                f"request {key[1]!r} of job {key[0]!r} was {verb} "
                f"without ever arriving",
                where="runlog", t_start=t_ms, job=key[0])
        if key in terminal:
            budget.error(
                f"request {key[1]!r} of job {key[0]!r} was {verb} "
                f"after already being {terminal[key]}",
                where="runlog", t_start=t_ms, job=key[0])
        terminal[key] = verb
    for key, t_ms in arrived.items():
        if key not in terminal:
            budget.error(
                f"request {key[1]!r} of job {key[0]!r} arrived at "
                f"{t_ms:.3f}ms but was never completed or shed",
                where="runlog", t_start=t_ms, job=key[0])
    budget.flush()


def _check_memory_ceiling(report: Report,
                          memory_peaks: Dict[str, Tuple[int, int]]) -> None:
    """High-water marks must respect the hw.specs capacity (paper §2.2)."""
    for device, (high_water, capacity) in sorted(memory_peaks.items()):
        if high_water > capacity:
            report.error(
                "memory-ceiling",
                f"device {device!r} peaked at {high_water} bytes, above "
                f"its declared capacity of {capacity} bytes",
                where=device, over_bytes=high_water - capacity)
