"""Static analysis and runtime sanitizers for the reproduction.

Three passes share one :class:`~repro.analysis.findings.Finding` model:

* :mod:`repro.analysis.sanitizer` — trace/run-log invariant checks
  (mutual exclusion, preemption safety, migration off the critical
  path, memory ceiling, span hygiene);
* :mod:`repro.analysis.graph_lint` — static graph/partition/replica
  structure checks run before (or after) execution;
* :mod:`repro.analysis.determinism` — an AST lint for wall-clock,
  global-RNG and set-iteration hazards that would break bit-identical
  replay.

* :mod:`repro.analysis.concurrency` — dynamic happens-before race
  detection, Eraser-style lockset checking and wait-for-graph deadlock
  finding over the instrumented runtime, plus concurrency AST lint
  rules (acquire without try/finally release, blocking while holding a
  device gate, dropped rendezvous tokens).

``python -m repro.analysis`` exposes all of them;
``switchflow-experiments --sanitize`` enforces the trace/graph passes
(and an attached concurrency tracker's findings) on every run.
"""

from repro.analysis.concurrency import (
    CONCURRENCY_ENV,
    ConcurrencyTracker,
    WaitForGraph,
    concurrency_enabled,
    deadlock_from_runlog,
    finalize_concurrency,
    lint_concurrency_paths,
    lint_concurrency_source,
    maybe_attach_concurrency_from_env,
)
from repro.analysis.determinism import lint_paths, lint_source
from repro.analysis.findings import Finding, Report, Severity, merge
from repro.analysis.graph_lint import (
    lint_graph,
    lint_partition,
    lint_replicas,
    lint_session,
)
from repro.analysis.integration import (
    SANITIZE_ENV,
    SanitizationError,
    analyze_context,
    enforce,
    sanitize_enabled,
)
from repro.analysis.sanitizer import (
    SanitizerConfig,
    open_span_findings,
    sanitize_run,
    sanitize_trace,
)

__all__ = [
    "Finding", "Report", "Severity", "merge",
    "SanitizerConfig", "sanitize_run", "sanitize_trace",
    "open_span_findings",
    "lint_graph", "lint_partition", "lint_replicas", "lint_session",
    "lint_paths", "lint_source",
    "SANITIZE_ENV", "SanitizationError", "analyze_context", "enforce",
    "sanitize_enabled",
    "CONCURRENCY_ENV", "ConcurrencyTracker", "WaitForGraph",
    "concurrency_enabled", "deadlock_from_runlog",
    "finalize_concurrency", "lint_concurrency_paths",
    "lint_concurrency_source", "maybe_attach_concurrency_from_env",
]
