"""The shared report model for every analysis pass.

All three passes — the schedule sanitizer, the graph linter and the
determinism lint — emit :class:`Finding` records into one
:class:`Report`, so a trace violation, a malformed graph and a
wall-clock call in source all render, count and export the same way.
The severity ladder mirrors compiler diagnostics: ``ERROR`` findings
gate exit codes (and ``runner --sanitize``), ``WARNING`` findings are
reported but never fail a run, ``INFO`` is narrative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is by seriousness."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic from one analysis pass.

    ``check`` is the stable rule identifier (e.g. ``mutual-exclusion``,
    ``cycle``, ``wallclock``) that tests and suppression lists key on;
    ``where`` locates the finding (a timeline lane, a graph name, or a
    ``file:line``); ``t_start``/``t_end`` bound the offending interval
    for trace findings.
    """

    check: str
    severity: Severity
    message: str
    where: Optional[str] = None
    t_start: Optional[float] = None
    t_end: Optional[float] = None
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)

    def render(self) -> str:
        location = f" [{self.where}]" if self.where else ""
        window = ""
        if self.t_start is not None:
            hi = self.t_end if self.t_end is not None else self.t_start
            window = f" @ {self.t_start:.3f}..{hi:.3f}ms"
        return f"{self.severity}: {self.check}{location}{window}: {self.message}"


class Report:
    """An ordered collection of findings from one or more passes."""

    def __init__(self, title: str = "analysis") -> None:
        self.title = title
        self.findings: List[Finding] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, check: str, severity: Severity, message: str,
            where: Optional[str] = None, t_start: Optional[float] = None,
            t_end: Optional[float] = None, **meta: Any) -> Finding:
        finding = Finding(check=check, severity=severity, message=message,
                          where=where, t_start=t_start, t_end=t_end,
                          meta=meta)
        self.findings.append(finding)
        return finding

    def error(self, check: str, message: str, **kwargs: Any) -> Finding:
        return self.add(check, Severity.ERROR, message, **kwargs)

    def warning(self, check: str, message: str, **kwargs: Any) -> Finding:
        return self.add(check, Severity.WARNING, message, **kwargs)

    def info(self, check: str, message: str, **kwargs: Any) -> Finding:
        return self.add(check, Severity.INFO, message, **kwargs)

    def extend(self, other: "Report") -> "Report":
        self.findings.extend(other.findings)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def by_check(self, check: str) -> List[Finding]:
        return [f for f in self.findings if f.check == check]

    def at_least(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity >= severity]

    @property
    def errors(self) -> List[Finding]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(f.severity >= Severity.ERROR for f in self.findings)

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            out[str(finding.severity)] += 1
        return out

    # ------------------------------------------------------------------
    # Rendering / export
    # ------------------------------------------------------------------
    def render(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [f"== {self.title} =="]
        shown = [f for f in self.findings if f.severity >= min_severity]
        lines.extend(f.render() for f in shown)
        counts = self.counts()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info")
        return "\n".join(lines)

    def export_metrics(self, registry) -> None:
        """Publish per-check/severity counts into an ``obs`` registry.

        Exports ``analysis.findings_total{check=..., severity=...}`` so
        sanitizer output lands next to the run's scheduler metrics. A
        clean run still publishes ``analysis.runs_total`` so "zero
        findings" is distinguishable from "never ran".
        """
        registry.counter("analysis.runs_total",
                         "analysis passes executed").inc()
        for finding in self.findings:
            registry.counter(
                "analysis.findings_total",
                "analysis findings by check and severity",
                check=finding.check,
                severity=str(finding.severity)).inc()


def merge(title: str, reports: Iterable[Report],
          dedupe: bool = False) -> Report:
    """Concatenate several reports under one title.

    With ``dedupe=True``, findings that compare equal (``meta`` is
    excluded from :class:`Finding` equality) are kept once, first
    occurrence wins — the fan-out pattern, where every worker shard
    re-discovers the same static finding and the merged report should
    not multiply it. Ordering is stable either way: findings appear in
    report order, then in their within-report order.
    """
    merged = Report(title)
    if not dedupe:
        for report in reports:
            merged.extend(report)
        return merged
    seen = set()
    for report in reports:
        for finding in report.findings:
            key = (finding.check, finding.severity, finding.message,
                   finding.where, finding.t_start, finding.t_end)
            if key in seen:
                continue
            seen.add(key)
            merged.findings.append(finding)
    return merged
