"""CLI entry point: regenerate any of the paper's tables and figures.

Usage::

    switchflow-experiments --list
    switchflow-experiments table1 fig2
    switchflow-experiments all --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    fig2_timeline,
    fig3_idle,
    fig6_tail_latency,
    fig7_throughput,
    fig8_input_reuse,
    fig9_diff_models,
    fig10_interleaving,
    motivation_streams,
    preemption_overhead,
    table1_state_transfer,
)

# name -> (full-run callable, quick-run callable)
EXPERIMENTS: Dict[str, Dict[str, Callable]] = {
    "motivation": {
        "full": lambda: motivation_streams.run(),
        "quick": lambda: motivation_streams.run(),
    },
    "fig2": {
        "full": lambda: fig2_timeline.run(iterations=20),
        "quick": lambda: fig2_timeline.run(iterations=6),
    },
    "fig3": {
        "full": lambda: fig3_idle.run(iterations=20),
        "quick": lambda: fig3_idle.run(
            iterations=12, models=["ResNet50", "MobileNetV2",
                                   "NASNetMobile"]),
    },
    "fig6": {
        "full": lambda: fig6_tail_latency.run(requests=60),
        "quick": lambda: fig6_tail_latency.run(
            requests=25,
            panels=[("VGG16", ["ResNet50", "MobileNetV2"]),
                    ("NMT-panel", ["VGG16"])]),
    },
    "fig7": {
        "full": lambda: fig7_throughput.run(iterations=10),
        "quick": lambda: fig7_throughput.run(
            iterations=5, partners=["ResNet50", "VGG16"]),
    },
    "fig8": {
        "full": lambda: fig8_input_reuse.run(iterations=10),
        "quick": lambda: fig8_input_reuse.run(
            iterations=5, models=["ResNet50", "MobileNetV2"]),
    },
    "fig9": {
        "full": lambda: fig9_diff_models.run(iterations=10),
        "quick": lambda: fig9_diff_models.run(
            iterations=5, batches=[128]),
    },
    "fig10": {
        "full": lambda: fig10_interleaving.run(iterations=10),
        "quick": lambda: fig10_interleaving.run(
            iterations=5, models=["ResNet50", "MobileNetV2"]),
    },
    "table1": {
        "full": lambda: table1_state_transfer.run(),
        "quick": lambda: table1_state_transfer.run(simulate=False),
    },
    "preemption": {
        "full": lambda: preemption_overhead.run(),
        "quick": lambda: preemption_overhead.run(
            models=["ResNet50", "VGG19"]),
    },
    "ablations": {
        "full": lambda: ablations.run(),
        "quick": lambda: ablations.context_switch_sensitivity(),
    },
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="switchflow-experiments",
        description="Regenerate the SwitchFlow paper's tables/figures "
                    "on the simulated substrate.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts / subsets")
    parser.add_argument("--timeline", action="store_true",
                        help="also render the Figure 2 ASCII timeline")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] \
        else args.experiments
    mode = "quick" if args.quick else "full"
    status = 0
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            status = 2
            continue
        result = EXPERIMENTS[name][mode]()
        print(result.to_table())
        print()
        if name == "fig2" and args.timeline:
            print(fig2_timeline.render_timeline())
            print()
        if name == "fig3":
            for check in fig3_idle.headline_checks(result):
                print(f"check: {check}")
            print()
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
