"""CLI entry point: regenerate any of the paper's tables and figures.

Usage::

    switchflow-experiments --list
    switchflow-experiments table1 fig2
    switchflow-experiments all --quick
    switchflow-experiments all --quick --jobs 4

``--jobs N`` fans independent experiments across a process pool. Each
experiment renders its complete output (table, optional timeline,
headline checks) to a string inside the worker, and the parent prints
the strings in request order — so a parallel run's stdout is
byte-identical to the sequential run's. When a *single* experiment is
requested, N is handed to the experiment itself (via $REPRO_JOBS) so
experiments that fan out internally — e.g. fig3's per-config solo runs
— can use the workers instead.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments import (
    ablations,
    cluster_scale,
    fault_sweep,
    fig2_timeline,
    fig3_idle,
    fig6_tail_latency,
    fig7_throughput,
    fig8_input_reuse,
    fig9_diff_models,
    fig10_interleaving,
    motivation_streams,
    preemption_overhead,
    serving_colocation,
    table1_state_transfer,
)
from repro.analysis.concurrency import CONCURRENCY_ENV
from repro.analysis.integration import SANITIZE_ENV, SanitizationError
from repro.experiments.common import JOBS_ENV_VAR, fanout_map
from repro.faults import FAULTS_ENV, FaultPlan, FaultPlanError
from repro.obs.procpool import ProcPoolStats
from repro.obs.timeseries import TIMESERIES_ENV
from repro.serving.config import SERVING_ENV, ServingConfig, \
    ServingConfigError

# name -> (full-run callable, quick-run callable)
EXPERIMENTS: Dict[str, Dict[str, Callable]] = {
    "motivation": {
        "full": lambda: motivation_streams.run(),
        "quick": lambda: motivation_streams.run(),
    },
    "fig2": {
        "full": lambda: fig2_timeline.run(iterations=20),
        "quick": lambda: fig2_timeline.run(iterations=6),
    },
    "fig3": {
        "full": lambda: fig3_idle.run(iterations=20),
        "quick": lambda: fig3_idle.run(
            iterations=12, models=["ResNet50", "MobileNetV2",
                                   "NASNetMobile"]),
    },
    "fig6": {
        "full": lambda: fig6_tail_latency.run(requests=60),
        "quick": lambda: fig6_tail_latency.run(
            requests=25,
            panels=[("VGG16", ["ResNet50", "MobileNetV2"]),
                    ("NMT-panel", ["VGG16"])]),
    },
    "fig7": {
        "full": lambda: fig7_throughput.run(iterations=10),
        "quick": lambda: fig7_throughput.run(
            iterations=5, partners=["ResNet50", "VGG16"]),
    },
    "fig8": {
        "full": lambda: fig8_input_reuse.run(iterations=10),
        "quick": lambda: fig8_input_reuse.run(
            iterations=5, models=["ResNet50", "MobileNetV2"]),
    },
    "fig9": {
        "full": lambda: fig9_diff_models.run(iterations=10),
        "quick": lambda: fig9_diff_models.run(
            iterations=5, batches=[128]),
    },
    "fig10": {
        "full": lambda: fig10_interleaving.run(iterations=10),
        "quick": lambda: fig10_interleaving.run(
            iterations=5, models=["ResNet50", "MobileNetV2"]),
    },
    "table1": {
        "full": lambda: table1_state_transfer.run(),
        "quick": lambda: table1_state_transfer.run(simulate=False),
    },
    "preemption": {
        "full": lambda: preemption_overhead.run(),
        "quick": lambda: preemption_overhead.run(
            models=["ResNet50", "VGG19"]),
    },
    "ablations": {
        "full": lambda: ablations.run(),
        "quick": lambda: ablations.context_switch_sensitivity(),
    },
    "fault_sweep": {
        "full": lambda: fault_sweep.run(),
        "quick": lambda: fault_sweep.run(
            requests=8, rates=fault_sweep.QUICK_RATES),
    },
    "cluster_scale": {
        "full": lambda: cluster_scale.run(),
        "quick": lambda: cluster_scale.run(
            requests=8, nodes=cluster_scale.QUICK_NODES),
    },
    "serving": {
        "full": lambda: serving_colocation.run(),
        "quick": lambda: serving_colocation.run(
            duration_ms=serving_colocation.QUICK_DURATION_MS,
            rates=serving_colocation.QUICK_RATES),
    },
}

ExperimentSpec = Tuple[str, str, bool]   # (name, mode, render timeline)


def _render_experiment(spec: ExperimentSpec) -> Tuple[str, str, float]:
    """Run one experiment and render its complete stdout block.

    Module-level and picklable-in/picklable-out so it can execute either
    in-process (sequential path) or inside a pool worker — both paths
    produce the same bytes. Returns (name, text, wall_seconds).
    """
    name, mode, timeline = spec
    started = time.perf_counter()  # noqa: repro-analysis (wall-time stats)
    result = EXPERIMENTS[name][mode]()
    blocks = [result.to_table()]
    if name == "fig2" and timeline:
        blocks.append(fig2_timeline.render_timeline())
    if name == "fig3":
        blocks.append("\n".join(
            f"check: {check}"
            for check in fig3_idle.headline_checks(result)))
    if name == "serving":
        blocks.append("\n".join(
            f"check: {check}"
            for check in serving_colocation.headline_checks(result)))
    text = "".join(block + "\n\n" for block in blocks)
    elapsed = time.perf_counter() - started  # noqa: repro-analysis (wall-time stats)
    return name, text, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="switchflow-experiments",
        description="Regenerate the SwitchFlow paper's tables/figures "
                    "on the simulated substrate.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts / subsets")
    parser.add_argument("--timeline", action="store_true",
                        help="also render the Figure 2 ASCII timeline")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan independent experiments across N "
                             "worker processes (output is byte-identical "
                             "to the sequential run)")
    parser.add_argument("--stats", action="store_true",
                        help="report per-experiment wall time and pool "
                             "utilization on stderr")
    parser.add_argument("--sanitize", action="store_true",
                        help="verify the paper's trace invariants on "
                             "every run (repro.analysis); exit non-zero "
                             "on any ERROR finding")
    parser.add_argument("--faults", metavar="PLAN", default=None,
                        help="fault-plan JSON file (repro.faults); "
                             "every colocation run injects the plan's "
                             "faults and exercises the recovery paths")
    parser.add_argument("--timeseries", metavar="MS", default=None,
                        help="sample windowed time-series metrics every "
                             "MS simulated ms (optionally MS:capacity) "
                             "on every colocation run")
    parser.add_argument("--concurrency", nargs="?", const="hb",
                        default=None, metavar="MODE",
                        help="track races/locksets/deadlocks on every "
                             "colocation run (repro.analysis.concurrency); "
                             "MODE is 'hb' (default: full happens-before) "
                             "or 'lockset' (cheaper); with --sanitize, "
                             "ERROR findings fail the invocation")
    parser.add_argument("--serving", metavar="SPEC", default=None,
                        help="serving-config overrides for every "
                             "run_serving harness (repro.serving), as "
                             "'key=value,...'; keys: rate, kind, queue, "
                             "shed, batch, timeout, slo")
    args = parser.parse_args(argv)

    if args.concurrency is not None and \
            args.concurrency not in ("hb", "lockset", "1"):
        print(f"--concurrency: expected 'hb' or 'lockset', got "
              f"{args.concurrency!r}", file=sys.stderr)
        return 2

    if args.faults is not None:
        # Fail fast on a bad plan, before any experiment burns time.
        try:
            FaultPlan.load(args.faults)
        except FaultPlanError as exc:
            print(f"--faults: {exc}", file=sys.stderr)
            return 2

    if args.timeseries is not None:
        # Same fail-fast validation as --faults: reject a malformed
        # interval spec before any experiment burns time.
        interval, _, capacity = args.timeseries.partition(":")
        try:
            if float(interval) <= 0 or (capacity and int(capacity) < 1):
                raise ValueError
        except ValueError:
            print(f"--timeseries: expected 'MS[:capacity]' with a "
                  f"positive interval, got {args.timeseries!r}",
                  file=sys.stderr)
            return 2

    if args.serving is not None:
        # Fail fast on a bad override spec, like --faults/--timeseries.
        try:
            ServingConfig.parse(args.serving)
        except ServingConfigError as exc:
            print(f"--serving: {exc}", file=sys.stderr)
            return 2

    if args.list or not args.experiments:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] \
        else args.experiments
    status = 0
    valid = []
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            status = 2
            continue
        valid.append(name)

    jobs = max(1, args.jobs)
    mode = "quick" if args.quick else "full"
    specs = [(name, mode, args.timeline) for name in valid]

    previous_env = os.environ.get(JOBS_ENV_VAR)
    previous_sanitize = os.environ.get(SANITIZE_ENV)
    previous_faults = os.environ.get(FAULTS_ENV)
    previous_timeseries = os.environ.get(TIMESERIES_ENV)
    previous_concurrency = os.environ.get(CONCURRENCY_ENV)
    previous_serving = os.environ.get(SERVING_ENV)
    if jobs > 1 and len(valid) == 1:
        # A single experiment cannot fan across experiments — hand the
        # workers to its internal config fan-out instead.
        os.environ[JOBS_ENV_VAR] = str(jobs)
    if args.sanitize:
        # Environment (not a parameter) so forked pool workers inherit.
        os.environ[SANITIZE_ENV] = "1"
    if args.faults is not None:
        # Same pattern: run_colocation attaches the plan in whichever
        # process the experiment executes in.
        os.environ[FAULTS_ENV] = args.faults
    if args.timeseries is not None:
        os.environ[TIMESERIES_ENV] = args.timeseries
    if args.concurrency is not None:
        os.environ[CONCURRENCY_ENV] = args.concurrency
    if args.serving is not None:
        # run_serving applies the overrides in whichever process the
        # experiment executes in.
        os.environ[SERVING_ENV] = args.serving
    started = time.perf_counter()  # noqa: repro-analysis (wall-time stats)
    try:
        outputs = fanout_map(_render_experiment, specs,
                             jobs=jobs if len(valid) > 1 else 1)
    except SanitizationError as exc:
        print(f"sanitizer: invariant violation\n{exc}", file=sys.stderr)
        return 1
    finally:
        if previous_env is None:
            os.environ.pop(JOBS_ENV_VAR, None)
        else:
            os.environ[JOBS_ENV_VAR] = previous_env
        if args.sanitize:
            if previous_sanitize is None:
                os.environ.pop(SANITIZE_ENV, None)
            else:
                os.environ[SANITIZE_ENV] = previous_sanitize
        if args.faults is not None:
            if previous_faults is None:
                os.environ.pop(FAULTS_ENV, None)
            else:
                os.environ[FAULTS_ENV] = previous_faults
        if args.timeseries is not None:
            if previous_timeseries is None:
                os.environ.pop(TIMESERIES_ENV, None)
            else:
                os.environ[TIMESERIES_ENV] = previous_timeseries
        if args.concurrency is not None:
            if previous_concurrency is None:
                os.environ.pop(CONCURRENCY_ENV, None)
            else:
                os.environ[CONCURRENCY_ENV] = previous_concurrency
        if args.serving is not None:
            if previous_serving is None:
                os.environ.pop(SERVING_ENV, None)
            else:
                os.environ[SERVING_ENV] = previous_serving
    elapsed = time.perf_counter() - started  # noqa: repro-analysis (wall-time stats)

    for _name, text, _wall in outputs:
        sys.stdout.write(text)

    if args.stats:
        pool_stats = ProcPoolStats(jobs=min(jobs, max(1, len(valid))))
        for name, _text, wall in outputs:
            pool_stats.record(name, wall)
        print(pool_stats.render(elapsed), file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
