"""Table 1: model state size and GPU-to-GPU transfer time over PCIe 3.0.

Stateful variables are the weights plus one optimizer slot (2x fp32
parameter bytes — this identity reproduces the paper's MiB column to
within rounding). Transfer time is measured by actually migrating the
job's state between two GPUs in the simulator, exercising the same
ResourceManager path preemption uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.integration import enforce
from repro.core import make_context
from repro.experiments.common import ExperimentResult
from repro.hw import PCIE3_X16, transfer_time_ms, v100_server
from repro.models import get_model

MiB = 1024 ** 2

# The paper's Table 1 (MiB, ms) for side-by-side comparison.
PAPER_TABLE1: Dict[str, Tuple[float, float]] = {
    "ResNet50": (198.53, 28.838),
    "VGG16": (1055.58, 103.747),
    "VGG19": (1096.09, 109.416),
    "DenseNet121": (64.83, 39.823),
    "DenseNet169": (108.61, 45.236),
    "InceptionResNetV2": (426.18, 82.137),
    "InceptionV3": (182.00, 31.613),
    "MobileNetV2": (27.25, 17.505),
}


def simulated_transfer_ms(model_name: str, seed: int = 0) -> float:
    """Migrate a registered job's state GPU0 -> GPU1; returns the ms.

    The latency is read back from the run's metrics registry
    (``rm.transfer_ms``, recorded by the ResourceManager) — the same
    series every preemption migration publishes — rather than being
    re-timed by the experiment.
    """
    ctx = make_context(v100_server, 2, seed=seed)
    model = get_model(model_name)
    ctx.resources.register_job(
        "job", model.stateful_bytes, model.state_tensor_count)
    gpu0, gpu1 = ctx.machine.gpus

    def _migrate():
        yield ctx.resources.ensure_state("job", gpu0.name)
        yield ctx.resources.ensure_state("job", gpu1.name)

    process = ctx.engine.process(_migrate())
    ctx.engine.run(until=process)
    # Under --sanitize, check the migration trace (this path exercises
    # the same ResourceManager machinery preemption relies on).
    enforce(ctx, label=f"table1/{model_name}")
    family = ctx.metrics.get("rm.transfer_ms")
    samples = family.all_samples() if family is not None else []
    if len(samples) != 1:
        raise RuntimeError(
            f"expected exactly one state transfer, saw {len(samples)}")
    return samples[0]


def run(models: Optional[List[str]] = None,
        simulate: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        name="table1",
        title="Table 1: model state transfer over PCIe 3.0 x16")
    for model_name in (models or list(PAPER_TABLE1)):
        model = get_model(model_name)
        analytic = transfer_time_ms(
            PCIE3_X16, model.stateful_bytes, model.state_tensor_count)
        simulated = (simulated_transfer_ms(model_name)
                     if simulate else None)
        paper_mib, paper_ms = PAPER_TABLE1.get(model_name, (None, None))
        result.add_row(
            model=model_name,
            stateful_mib=model.stateful_bytes / MiB,
            paper_mib=paper_mib,
            transfer_ms=simulated if simulated is not None else analytic,
            analytic_ms=analytic,
            paper_ms=paper_ms,
        )
    result.notes.append(
        "stateful = weights + momentum = 2 x fp32 parameter bytes; "
        "transfer = latency + per-tensor setup + payload/10.5 GiB/s.")
    return result
