"""Figure 2: two ResNet50 training jobs sharing a single V100.

The paper's motivation experiment: with multi-threaded TF both models'
kernels interleave on the GPU, execution serializes, and per-model
throughput drops from ~226 to ~116 images/s. This module reproduces the
three observables: solo vs co-run throughput, the serialization
fraction of GPU busy time, and the ASCII timeline itself.
"""

from __future__ import annotations

from repro.baselines import MultiThreadedTF
from repro.core import JobHandle, make_context
from repro.experiments.common import ExperimentResult, solo_throughput
from repro.hw import v100_server
from repro.metrics.timeline import serialization_fraction
from repro.models import get_model
from repro.sim.trace import render_ascii_timeline
from repro.workloads import JobSpec, run_colocation

PAPER_SOLO_IMAGES_PER_S = 226.0
PAPER_CORUN_IMAGES_PER_S = 116.0


def run(batch: int = 16, iterations: int = 12,
        seed: int = 0) -> ExperimentResult:
    model = get_model("ResNet50")
    solo = solo_throughput(v100_server, (1,), model, batch, True,
                           iterations=iterations, seed=seed)

    ctx = make_context(v100_server, 1, seed=seed)
    gpu = ctx.machine.gpu(0)
    jobs = [
        JobHandle(name=f"resnet50-{index}", model=model, batch=batch,
                  training=True, preferred_device=gpu.name)
        for index in range(2)
    ]
    result_set = run_colocation(ctx, MultiThreadedTF, [
        JobSpec(job=job, iterations=iterations) for job in jobs])

    serialized = serialization_fraction(
        ctx.tracer, gpu.lane, (jobs[0].name, jobs[1].name))

    result = ExperimentResult(
        name="fig2",
        title="Figure 2: two ResNet50s training on one V100 "
              f"(BS={batch}, multi-threaded TF)")
    result.add_row(configuration="solo", images_per_s=solo,
                   paper_images_per_s=PAPER_SOLO_IMAGES_PER_S,
                   serialization_fraction=None)
    for job in jobs:
        result.add_row(
            configuration=f"co-run/{job.name}",
            images_per_s=result_set.stats[job.name]
            .throughput_items_per_s(warmup=2),
            paper_images_per_s=PAPER_CORUN_IMAGES_PER_S,
            serialization_fraction=serialized)
    result.notes.append(
        "serialization_fraction: share of GPU-busy time with only ONE "
        "model's kernels resident (paper: 'significant serialization').")
    return result


def render_timeline(window_ms: float = 400.0, batch: int = 16,
                    seed: int = 0, width: int = 100) -> str:
    """The Figure 2 picture itself: per-model GPU occupancy over time."""
    ctx = make_context(v100_server, 1, seed=seed)
    gpu = ctx.machine.gpu(0)
    model = get_model("ResNet50")
    jobs = [
        JobHandle(name=f"resnet50-{index}", model=model, batch=batch,
                  training=True, preferred_device=gpu.name)
        for index in range(2)
    ]
    run_colocation(ctx, MultiThreadedTF, [
        JobSpec(job=job, iterations=8) for job in jobs])
    end = ctx.engine.now
    start = max(0.0, end - window_ms)
    glyphs = {jobs[0].name: "█", jobs[1].name: "░"}
    spans = []
    for span in ctx.tracer.spans:
        if span.lane != gpu.lane or span.end <= start:
            continue
        context = span.meta.get("context", "?")
        relabeled = type(span)(
            lane=f"{gpu.name}/{context}", name=span.name,
            start=span.start, end=span.end,
            meta={**span.meta, "glyph": glyphs.get(context, "#")})
        spans.append(relabeled)
    return render_ascii_timeline(spans, width=width, start=start, end=end)
