"""Serving co-location: SLO-aware inference serving vs the baselines.

The paper's headline serving claim (§3.3, Figure 6 setting): a
latency-bound inference stream co-located with training keeps its tail
only if the scheduler can preempt the trainer at arrival time.
This experiment serves an open-loop MobileNetV2 request stream —
admission queue, size/timeout batching, load shedding — against a
ResNet50 trainer on the same GPU, and sweeps the arrival rate under
SwitchFlow, session time slicing, and MPS.

The SLO budget is derived, not hardcoded: ``SLO_FACTOR`` times the
solo (uncontended) mean batch-service time, so it tracks the cost
model. Reported per cell: latency percentiles, goodput (SLO-meeting
completions/s), shed rate, and the trainer's background progress.

Env knobs (the nightly matrix sets these):

* ``REPRO_SERVING_SWEEP_SEED`` — RNG seed (default 0).
* ``REPRO_SERVING_SWEEP_JSON`` — path for the machine-readable dump.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.baselines import MPSPolicy, MultiThreadedTF, SessionTimeSlicing
from repro.core.context import make_context
from repro.core.job import JobHandle, PRIORITY_HIGH, PRIORITY_LOW
from repro.core.switchflow import SwitchFlowPolicy
from repro.experiments.common import ExperimentResult, fanout_map
from repro.hw import v100_server
from repro.models import get_model
from repro.serving import SLOTarget, ServedModelSpec, make_trace, run_serving
from repro.workloads.colocation import JobSpec, run_colocation

SEED_ENV = "REPRO_SERVING_SWEEP_SEED"
JSON_ENV = "REPRO_SERVING_SWEEP_JSON"

#: p99 budget as a multiple of the solo mean batch-service time.
SLO_FACTOR = 3.0
BG_MODEL = "ResNet50"
FG_MODEL = "MobileNetV2"
MAX_BATCH = 8
BATCH_TIMEOUT_MS = 5.0
QUEUE_CAPACITY = 64
SHED_POLICY = "drop-newest"
TRACE_KIND = "poisson"
WARMUP = 2

_POLICIES = {
    "SwitchFlow": SwitchFlowPolicy,
    "TimeSlicing": SessionTimeSlicing,
    "MPS": MPSPolicy,
}

#: The co-location operating point the headline check is made at.
DEFAULT_RATE = 30.0
FULL_RATES = (15.0, 30.0, 60.0, 90.0)
QUICK_RATES = (DEFAULT_RATE,)
FULL_DURATION_MS = 4_000.0
QUICK_DURATION_MS = 2_000.0


def _solo_reference_ms(seed: int) -> float:
    """Uncontended mean batch-service time of the served model."""
    ctx = make_context(v100_server, 2, seed=seed)
    job = JobHandle(name="solo-serve", model=get_model(FG_MODEL),
                    batch=MAX_BATCH, training=False,
                    priority=PRIORITY_HIGH,
                    preferred_device=ctx.machine.gpu(0).name)
    run_colocation(ctx, MultiThreadedTF,
                   [JobSpec(job=job, iterations=WARMUP + 10)])
    samples = job.stats.iteration_times_ms[WARMUP:]
    if not samples:
        raise RuntimeError("solo serving reference produced no samples")
    return sum(samples) / len(samples)


def _run_cell(cell) -> Dict[str, object]:
    """One (policy, rate) cell. Module-level and plain-data in/out so
    the sweep fans across ``fanout_map`` workers."""
    policy_name, rate, duration_ms, seed, slo_ms = cell
    ctx = make_context(v100_server, 2, seed=seed)
    gpu = ctx.machine.gpu(0).name
    trace = make_trace(ctx.rng, "fg-serve", TRACE_KIND, rate,
                       duration_ms)
    served = ServedModelSpec(
        job=JobHandle(name="fg-serve", model=get_model(FG_MODEL),
                      batch=MAX_BATCH, training=False,
                      priority=PRIORITY_HIGH, preferred_device=gpu),
        trace=trace, max_batch=MAX_BATCH,
        batch_timeout_ms=BATCH_TIMEOUT_MS,
        queue_capacity=QUEUE_CAPACITY, shed_policy=SHED_POLICY,
        slo=SLOTarget(p99_ms=slo_ms))
    background = JobSpec(
        job=JobHandle(name="bg-train", model=get_model(BG_MODEL),
                      batch=32, training=True, priority=PRIORITY_LOW,
                      preferred_device=gpu),
        iterations=100_000, background=True)
    result = run_serving(ctx, _POLICIES[policy_name], [served],
                         [background])
    stream = result.served("fg-serve")
    summary = stream.latency_summary()
    return {
        "policy": policy_name,
        "rate_rps": rate,
        "p50_ms": summary.p50 if summary else float("nan"),
        "p95_ms": summary.p95 if summary else float("nan"),
        "p99_ms": summary.p99 if summary else float("nan"),
        "goodput_rps": stream.goodput_rps,
        "shed_pct": stream.shed_pct,
        "slo": "met" if (summary is not None
                         and summary.p99 <= slo_ms) else "MISS",
        "bg_iters": result.stats["bg-train"].iterations,
        "crashed": ",".join(result.crashed_jobs()) or "-",
    }


def run(duration_ms: float = FULL_DURATION_MS,
        rates: Sequence[float] = FULL_RATES,
        seed: Optional[int] = None,
        json_path: Optional[str] = None) -> ExperimentResult:
    if seed is None:
        seed = int(os.environ.get(SEED_ENV, "0"))
    slo_ms = SLO_FACTOR * _solo_reference_ms(seed)

    cells = [(policy, rate, duration_ms, seed, slo_ms)
             for rate in rates for policy in _POLICIES]
    rows: List[Dict[str, object]] = fanout_map(_run_cell, cells)

    result = ExperimentResult(
        name="serving_colocation",
        title=f"Serving co-location: latency/goodput vs arrival rate "
              f"(SLO = {SLO_FACTOR:g}x solo batch = {slo_ms:.1f} ms, "
              f"seed {seed})")
    for row in rows:
        result.add_row(**row)
    result.notes.append(
        f"open-loop {TRACE_KIND} arrivals, max batch {MAX_BATCH} "
        f"(padded static), batching window {BATCH_TIMEOUT_MS:g} ms, "
        f"queue {QUEUE_CAPACITY} ({SHED_POLICY}); background "
        f"{BG_MODEL} training shares the GPU. Goodput counts "
        f"SLO-meeting completions per second of offered load.")

    json_path = json_path or os.environ.get(JSON_ENV)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump({"seed": seed, "slo_ms": slo_ms,
                       "slo_factor": SLO_FACTOR,
                       "duration_ms": duration_ms,
                       "rates": list(rates), "rows": rows},
                      fh, indent=2)
            fh.write("\n")
    return result


def headline_checks(result: ExperimentResult) -> List[str]:
    """The qualitative assertions the paper makes about serving."""
    def cell(policy: str) -> Optional[Dict[str, object]]:
        for row in result.rows:
            if (row["policy"] == policy
                    and row["rate_rps"] == DEFAULT_RATE):
                return row
        return None

    checks: List[str] = []
    switchflow = cell("SwitchFlow")
    timeslicing = cell("TimeSlicing")
    if switchflow is None or timeslicing is None:
        return [f"no cells at the {DEFAULT_RATE:g} rps operating "
                f"point: MISS"]
    checks.append(
        f"SwitchFlow p99 {switchflow['p99_ms']:.0f}ms < TimeSlicing "
        f"p99 {timeslicing['p99_ms']:.0f}ms at {DEFAULT_RATE:g} rps: "
        f"{'OK' if switchflow['p99_ms'] < timeslicing['p99_ms'] else 'MISS'}")
    checks.append(
        f"SwitchFlow goodput {switchflow['goodput_rps']:.1f} rps >= "
        f"TimeSlicing {timeslicing['goodput_rps']:.1f} rps: "
        f"{'OK' if switchflow['goodput_rps'] >= timeslicing['goodput_rps'] else 'MISS'}")
    checks.append(
        f"SwitchFlow meets the SLO at {DEFAULT_RATE:g} rps: "
        f"{'OK' if switchflow['slo'] == 'met' else 'MISS'}")
    return checks
