"""Figure 8: input reuse between two identical models vs time slicing.

Two copies of the same model process the same batches. The baseline is
session-based time slicing (no data reuse, exclusive CPU+GPU per
session). SwitchFlow merges the graphs: one shared preprocessing
pipeline, GPU executors in lockstep. The paper's findings: up to ~65%
improvement for inference (CPU-bound pipelines), marginal for training,
lower gains on the TX2 where the GPU itself is the bottleneck.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines import SessionTimeSlicing
from repro.core import JobHandle, make_context
from repro.experiments.common import ExperimentResult
from repro.hw import RTX_2080_TI, TESLA_V100, jetson_tx2, single_gpu_server
from repro.metrics.throughput import improvement_percent
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation, run_multitask

# (panel label, machine builder, args, training, batch, data workers).
CONFIGS = [
    ("(a) 2080Ti train BS=32", single_gpu_server, (RTX_2080_TI,),
     True, 32, 32),
    ("(b) V100 train BS=32", single_gpu_server, (TESLA_V100,),
     True, 32, 32),
    ("(c) 2080Ti infer BS=128", single_gpu_server, (RTX_2080_TI,),
     False, 128, 32),
    ("(d) V100 infer BS=128", single_gpu_server, (TESLA_V100,),
     False, 128, 32),
    ("(e) TX2 infer BS=8", jetson_tx2, (), False, 8, 4),
]

DEFAULT_MODELS = ["ResNet50", "VGG16", "DenseNet121", "InceptionV3",
                  "InceptionResNetV2", "MobileNet", "MobileNetV2",
                  "NASNetMobile"]


def timeslicing_pair_throughput(machine_builder, machine_args,
                                model_name: str, batch: int,
                                training: bool, iterations: int,
                                data_workers: int, seed: int) -> float:
    """Per-model items/s of two identical jobs under time slicing."""
    ctx = make_context(machine_builder, *machine_args, seed=seed)
    gpu_name = ctx.machine.gpu(0).name
    model = get_model(model_name)
    jobs = [
        JobHandle(name=f"ts{i}/{model_name}", model=model, batch=batch,
                  training=training, preferred_device=gpu_name,
                  data_workers=data_workers)
        for i in range(2)
    ]
    run_colocation(ctx, SessionTimeSlicing, [
        JobSpec(job=job, iterations=iterations) for job in jobs])
    return sum(job.stats.throughput_items_per_s(warmup=1)
               for job in jobs) / len(jobs)


def reuse_pair_throughput(machine_builder, machine_args, model_name: str,
                          batch: int, training: bool, iterations: int,
                          data_workers: int, seed: int) -> float:
    """Per-model items/s of the merged (input reuse) execution."""
    ctx = make_context(machine_builder, *machine_args, seed=seed)
    model = get_model(model_name)
    outcome = run_multitask(ctx, [model, model], batch, training,
                            iterations, data_workers=data_workers)
    return outcome.items_per_second(batch, warmup=1)


def run(iterations: int = 8, seed: int = 0,
        models: Optional[List[str]] = None,
        configs: Optional[List[Tuple]] = None) -> ExperimentResult:
    result = ExperimentResult(
        name="fig8",
        title="Figure 8: input reuse between two identical models vs "
              "session time slicing")
    for (label, builder, args, training, batch, workers) in (
            configs or CONFIGS):
        for model_name in (models or DEFAULT_MODELS):
            baseline = timeslicing_pair_throughput(
                builder, args, model_name, batch, training, iterations,
                workers, seed)
            reuse = reuse_pair_throughput(
                builder, args, model_name, batch, training, iterations,
                workers, seed)
            result.add_row(
                panel=label,
                model=model_name,
                timeslicing_items_per_s=baseline,
                input_reuse_items_per_s=reuse,
                improvement_pct=improvement_percent(baseline, reuse),
            )
    result.notes.append(
        "Paper shape: large gains for inference (up to ~65%), marginal "
        "for training, lower on the GPU-bound TX2.")
    return result
