"""Figure 6: 95th-percentile inference tail latency under co-location.

A high-priority inference stream (BS=1) shares a V100 with a background
training job. Multi-threaded TF lets the jobs fight over the device;
SwitchFlow preempts. Four sub-experiments mirror the paper's panels:
CNN inference against (a) MobileNetV2, (b) ResNet50, (c) VGG16
training, and (d) NMT inference against several CNN training jobs.
The paper's improvements range from ~3.2x to 19.05x.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.baselines import MultiThreadedTF
from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    RunContext,
    SwitchFlowPolicy,
    make_context,
)
from repro.core.policy import SchedulingPolicy
from repro.experiments.common import ExperimentResult
from repro.hw import v100_server
from repro.metrics.latency import LatencySummary
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation

# The paper's panels: (background training model, foreground models).
PANELS = [
    ("MobileNetV2", ["ResNet50", "VGG16", "VGG19", "DenseNet121",
                     "InceptionV3", "MobileNetV2", "NMT"]),
    ("ResNet50", ["ResNet50", "VGG16", "VGG19", "DenseNet121",
                  "InceptionV3", "MobileNetV2", "NMT"]),
    ("VGG16", ["ResNet50", "VGG16", "VGG19", "DenseNet121",
               "InceptionV3", "MobileNetV2", "NMT"]),
    # Panel (d): NMT inference against different training jobs.
    ("NMT-panel", ["MobileNetV2", "ResNet50", "VGG16", "InceptionV3"]),
]


def measure_tail_latency(
        policy_factory: Callable[[RunContext], SchedulingPolicy],
        train_model: str, infer_model: str, requests: int = 40,
        warmup: int = 5, train_batch: int = 32, seed: int = 0,
        warmup_delay_ms: float = 1500.0) -> LatencySummary:
    """One cell of Figure 6: p95 of the inference stream.

    The machine is the paper's multi-V100 server (two GPUs suffice):
    under SwitchFlow the preempted trainer migrates to a sibling V100,
    so the inference stream gets the fast GPU to itself.
    """
    ctx = make_context(v100_server, 2, seed=seed)
    gpu_name = ctx.machine.gpu(0).name
    train = JobHandle(
        name="background-train", model=get_model(train_model),
        batch=train_batch, training=True, priority=PRIORITY_LOW,
        preferred_device=gpu_name)
    infer = JobHandle(
        name="inference-stream", model=get_model(infer_model), batch=1,
        training=False, priority=PRIORITY_HIGH,
        preferred_device=gpu_name)
    results = run_colocation(ctx, policy_factory, [
        JobSpec(job=train, iterations=100_000, background=True),
        JobSpec(job=infer, iterations=requests,
                start_delay_ms=warmup_delay_ms),
    ])
    return results.latency_summary("inference-stream", warmup=warmup)


def run(requests: int = 40, seed: int = 0,
        panels: Optional[List] = None) -> ExperimentResult:
    result = ExperimentResult(
        name="fig6",
        title="Figure 6: p95 inference tail latency, TF vs SwitchFlow "
              "(V100, inference BS=1, background training BS=32)")
    for background, foregrounds in (panels or PANELS):
        if background == "NMT-panel":
            pairs = [(train, "NMT") for train in foregrounds]
            panel = "(d) NMT inference vs training jobs"
        else:
            pairs = [(background, fg) for fg in foregrounds]
            panel = f"training {background}"
        for train_model, infer_model in pairs:
            tf = measure_tail_latency(
                MultiThreadedTF, train_model, infer_model,
                requests=requests, seed=seed)
            sf = measure_tail_latency(
                SwitchFlowPolicy, train_model, infer_model,
                requests=requests, seed=seed)
            result.add_row(
                panel=panel,
                training_job=train_model,
                inference_job=infer_model,
                tf_p95_ms=tf.p95,
                switchflow_p95_ms=sf.p95,
                improvement_x=tf.p95 / sf.p95 if sf.p95 > 0 else None,
            )
    result.notes.append(
        "Paper: improvements 3.2x-5.6x for CNN panels, 8.15x-19.05x for "
        "the NMT panel (largest: NMT inference vs VGG16 training).")
    return result
