"""Shared experiment scaffolding: result tables, solo-run helpers, and
the deterministic multiprocessing fan-out used by the parallel runner."""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import MultiThreadedTF
from repro.core import JobHandle, RunContext, make_context
from repro.core.policy import SchedulingPolicy
from repro.metrics.throughput import JobStats
from repro.models import ModelSpec
from repro.workloads import JobSpec, run_colocation


@dataclass
class ExperimentResult:
    """Uniform container every experiment module returns."""

    name: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def columns(self) -> List[str]:
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_table(self) -> str:
        """Render rows as a fixed-width text table."""
        if not self.rows:
            return f"== {self.title} ==\n(no rows)"
        columns = self.columns()
        rendered: List[List[str]] = [[_fmt(row.get(col)) for col in columns]
                                     for row in self.rows]
        widths = [max(len(col), *(len(line[i]) for line in rendered))
                  for i, col in enumerate(columns)]
        header = "  ".join(col.ljust(widths[i])
                           for i, col in enumerate(columns))
        separator = "  ".join("-" * widths[i] for i in range(len(columns)))
        body = "\n".join("  ".join(line[i].ljust(widths[i])
                                   for i in range(len(columns)))
                         for line in rendered)
        parts = [f"== {self.title} ==", header, separator, body]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Parallel fan-out. Experiments are pure functions of their (picklable)
# inputs — every config builds a fresh RunContext — so independent
# configs/seeds can run in worker processes. Results come back in input
# order (pool.map preserves it), which makes a parallel run merge to the
# exact same output as the sequential one.
# ---------------------------------------------------------------------------

# Environment knob set by `switchflow-experiments --jobs N`; worker
# processes force it to 1 so fan-outs never nest.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else $REPRO_JOBS, else 1."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV_VAR, "1"))
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


# Set inside workers: ProcessPoolExecutor children are not daemonic
# (unlike the old multiprocessing.Pool ones), so nesting is prevented
# explicitly rather than via the daemon flag.
_WORKER_ENV = "REPRO_FANOUT_WORKER"


def _fanout_worker_init() -> None:
    # Workers must not fan out again.
    os.environ[JOBS_ENV_VAR] = "1"
    os.environ[_WORKER_ENV] = "1"


class WorkerCrashError(RuntimeError):
    """A fan-out worker process died without raising a Python error.

    Raised when a child is killed mid-experiment (segfault, OOM-killer,
    ``os._exit``); distinct from an exception *inside* the worker, which
    is re-raised as itself with the worker's traceback attached.
    """


class _RemoteTraceback(Exception):
    """Carries a worker's formatted traceback as the ``__cause__`` of
    the re-raised exception, so the parent's stack trace shows where
    the child actually failed."""

    def __init__(self, tb: str) -> None:
        super().__init__(f"\n\n--- worker traceback ---\n{tb}")


def _capture_call(payload: Tuple[Callable[[Any], Any], Any]) -> tuple:
    """Run ``fn(item)`` in the worker, capturing any exception.

    Exceptions are shipped back as (picklable) payloads instead of
    being raised: raising inside the worker loses the child traceback,
    and some exceptions don't survive pickling at all.
    """
    fn, item = payload
    try:
        return "ok", fn(item)
    except BaseException as exc:  # noqa: B036 - re-raised in the parent
        return "err", exc, traceback.format_exc()


def fanout_map(fn: Callable[[Any], Any], items: Sequence[Any],
               jobs: Optional[int] = None) -> List[Any]:
    """``[fn(item) for item in items]``, fanned across a process pool.

    ``fn`` and every item must be picklable (module-level function,
    plain-data args). Falls back to the serial path when ``jobs`` <= 1,
    there is at most one item, or we are already inside a pool worker —
    so callers can use it unconditionally. Output order always matches
    input order.

    Failure semantics: an exception raised by ``fn`` inside a worker is
    re-raised here as itself, with the worker's formatted traceback
    attached as its ``__cause__``. A worker that dies *without* raising
    (killed, segfault, ``os._exit``) surfaces as
    :class:`WorkerCrashError` instead of a silent hang or a bare
    pool-internal error.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if (jobs <= 1 or os.environ.get(_WORKER_ENV)
            or multiprocessing.current_process().daemon):
        return [fn(item) for item in items]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    payloads = [(fn, item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context,
                                 initializer=_fanout_worker_init) as pool:
            outcomes = list(pool.map(_capture_call, payloads))
    except BrokenProcessPool as exc:
        raise WorkerCrashError(
            "a fan-out worker process died mid-experiment (killed or "
            "crashed without raising); rerun with --jobs 1 to see the "
            "failure inline") from exc
    results: List[Any] = []
    for outcome in outcomes:
        if outcome[0] == "err":
            _status, exc, tb = outcome
            exc.__cause__ = _RemoteTraceback(tb)
            raise exc
        results.append(outcome[1])
    return results


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------------
# Solo runs (the Figure 3 building block and a throughput reference)
# ---------------------------------------------------------------------------
def run_solo(machine_builder: Callable, machine_args: Sequence[Any],
             model: ModelSpec, batch: int, training: bool,
             iterations: int, seed: int = 0, data_workers: int = 32,
             policy_factory: Optional[
                 Callable[[RunContext], SchedulingPolicy]] = None,
             ) -> tuple:
    """Run one job alone on a fresh machine; returns (ctx, JobStats)."""
    ctx = make_context(machine_builder, *machine_args, seed=seed)
    job = JobHandle(
        name=f"solo/{model.name}", model=model, batch=batch,
        training=training,
        preferred_device=ctx.machine.gpu(0).name if ctx.machine.gpus
        else ctx.machine.cpu.name,
        data_workers=data_workers)
    factory = policy_factory or MultiThreadedTF
    run_colocation(ctx, factory, [JobSpec(job=job, iterations=iterations)])
    return ctx, job.stats


def solo_throughput(machine_builder: Callable, machine_args: Sequence[Any],
                    model: ModelSpec, batch: int, training: bool,
                    iterations: int = 12, warmup: int = 2,
                    seed: int = 0, data_workers: int = 32) -> float:
    """Steady-state solo items/second (Figure 7's 'single' reference)."""
    _ctx, stats = run_solo(machine_builder, machine_args, model, batch,
                           training, iterations, seed=seed,
                           data_workers=data_workers)
    return stats.throughput_items_per_s(warmup=warmup)


def gpu_idle_percent(ctx: RunContext, stats: JobStats, gpu_lane: str,
                     warmup: int = 2, trim_tail: int = 3) -> float:
    """Mean GPU idle %% across a job's steady-state iteration windows.

    Skips ``warmup`` iterations at the start and ``trim_tail`` at the
    end — the final iterations only drain the already-full prefetch
    buffer and would bias sessions short.
    """
    from repro.metrics.timeline import session_breakdown

    spans = stats.iteration_spans[warmup:]
    if len(spans) > trim_tail + 1:
        spans = spans[:len(spans) - trim_tail]
    if not spans:
        raise ValueError("no iteration spans recorded")
    breakdowns = [session_breakdown(ctx.tracer, gpu_lane, start, end)
                  for start, end in spans]
    return sum(b.gpu_idle_percent for b in breakdowns) / len(breakdowns)
