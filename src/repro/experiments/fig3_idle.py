"""Figure 3: GPU idle fraction of the solo DL execution pipeline.

For nine CNNs on three GPUs (RTX 2080 Ti, V100, Jetson TX2) and two
modes (training BS=32, inference BS=128; TX2 uses BS=8), measure the
session length vs. the GPU busy time within it. The paper's findings to
reproduce: inference on fast GPUs is dominated by CPU preprocessing
(NASNetMobile >90% idle on the V100), training overlaps better, the
embedded TX2 is GPU-bound, and a faster GPU yields MORE idling.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.common import (
    ExperimentResult,
    fanout_map,
    gpu_idle_percent,
    run_solo,
)
from repro.hw import (
    GTX_1080_TI,
    RTX_2080_TI,
    TESLA_V100,
    jetson_tx2,
    single_gpu_server,
)
from repro.models import FIGURE3_MODELS, get_model

# (label, machine builder, machine args, train batch, infer batch,
#  data workers) — the paper's five subfigure configurations plus the
# 1080 Ti used elsewhere.
CONFIGS = [
    ("RTX 2080 Ti", single_gpu_server, (RTX_2080_TI,), 32, 128, 32),
    ("V100", single_gpu_server, (TESLA_V100,), 32, 128, 32),
    ("Jetson TX2", jetson_tx2, (), 8, 8, 4),
]


def _solo_idle_row(spec: Tuple) -> dict:
    """One (config, mode, model) cell — a fresh machine, a solo run.

    Module-level with plain-data args so :func:`fanout_map` can run the
    independent cells in worker processes.
    """
    (label, builder, args, batch, workers, training, model_name,
     iterations, warmup, seed) = spec
    model = get_model(model_name)
    ctx, stats = run_solo(
        builder, args, model, batch, training,
        iterations=iterations, seed=seed, data_workers=workers)
    gpu = ctx.machine.gpu(0)
    idle = gpu_idle_percent(ctx, stats, gpu.lane, warmup=warmup)
    # Whole-run busy fraction straight from the metrics registry (no
    # span post-processing) as a cross-check on the windowed idle
    # figure.
    busy_run = 100.0 * ctx.metrics.value(
        "gpu.busy_fraction", device=gpu.name)
    return dict(
        gpu=label,
        mode="training" if training else "inference",
        batch=batch,
        model=model_name,
        session_ms=stats.mean_iteration_ms(warmup=warmup),
        gpu_idle_pct=idle,
        gpu_busy_pct_run=busy_run,
    )


def run(iterations: int = 10, warmup: int = 2, seed: int = 0,
        models: Optional[List[str]] = None,
        configs: Optional[List[Tuple]] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        name="fig3",
        title="Figure 3: GPU idle % in solo sessions "
              "(session length vs GPU busy time)")
    model_names = models or FIGURE3_MODELS
    specs = [
        (label, builder, args, train_bs if training else infer_bs,
         workers, training, model_name, iterations, warmup, seed)
        for label, builder, args, train_bs, infer_bs, workers in (
            configs or CONFIGS)
        for training in (True, False)
        for model_name in model_names
    ]
    # Every cell is independent (own machine, own seed derivation), so
    # they fan across processes; row order matches the spec order either
    # way.
    result.rows.extend(fanout_map(_solo_idle_row, specs, jobs=jobs))
    result.notes.append(
        "Paper shape: inference on fast GPUs mostly idle (NASNetMobile "
        ">90% on V100); training overlaps better; TX2 is GPU-bound; "
        "faster GPU => more idling.")
    return result


def headline_checks(result: ExperimentResult) -> List[str]:
    """The qualitative assertions the paper makes about this figure."""
    def idle(gpu: str, mode: str, model: str) -> float:
        for row in result.rows:
            if (row["gpu"] == gpu and row["mode"] == mode
                    and row["model"] == model):
                return row["gpu_idle_pct"]
        raise KeyError((gpu, mode, model))

    checks = []
    nasnet_v100 = idle("V100", "inference", "NASNetMobile")
    checks.append(
        f"NASNetMobile V100 inference idle {nasnet_v100:.0f}% "
        f"(paper: >90%): {'OK' if nasnet_v100 > 80 else 'MISS'}")
    resnet_train = idle("V100", "training", "ResNet50")
    resnet_infer = idle("V100", "inference", "ResNet50")
    checks.append(
        f"ResNet50 V100 train idle {resnet_train:.0f}% < infer idle "
        f"{resnet_infer:.0f}%: "
        f"{'OK' if resnet_train < resnet_infer else 'MISS'}")
    v100 = idle("V100", "inference", "ResNet50")
    t2080 = idle("RTX 2080 Ti", "inference", "ResNet50")
    checks.append(
        f"faster GPU idles more (V100 {v100:.0f}% >= 2080Ti "
        f"{t2080:.0f}%): {'OK' if v100 >= t2080 - 1 else 'MISS'}")
    tx2 = idle("Jetson TX2", "inference", "ResNet50")
    tx2_v100 = idle("V100", "inference", "ResNet50")
    checks.append(
        f"TX2 GPU-bound (ResNet50 inference idle {tx2:.0f}% well below "
        f"V100's {tx2_v100:.0f}%): "
        f"{'OK' if tx2 < tx2_v100 - 15 else 'MISS'}")
    return checks
