"""Section 2.2 motivation: two conv2d ops on two CUDA streams.

The paper executed two tf.nn.conv2d operations from two streams on one
GPU and found the completion time close to sequential execution —
NVIDIA's occupancy calculator showed 10 of 13 kernels register-file
bound. This module reproduces both halves: the occupancy analysis over
a representative cuDNN-style kernel set, and the two-stream timing.
"""

from __future__ import annotations

from typing import List

from repro.core import make_context
from repro.experiments.common import ExperimentResult
from repro.graph import OpDef, OpKind, gpu_kernel_cost
from repro.hw import (
    KernelLaunch,
    KernelResourceDemand,
    TESLA_V100,
    device_occupancy,
    single_gpu_server,
)

# Thirteen representative cuDNN conv-kernel launch configurations
# (threads/block, regs/thread, shmem/block, blocks) modeled after the
# profiles nvprof reports for tf.nn.conv2d at ImageNet shapes.
CUDNN_KERNEL_SET: List[KernelResourceDemand] = [
    KernelResourceDemand(256, 128, 48 * 1024, 640),
    KernelResourceDemand(256, 122, 32 * 1024, 512),
    KernelResourceDemand(128, 168, 24 * 1024, 896),
    KernelResourceDemand(256, 96, 48 * 1024, 480),
    KernelResourceDemand(512, 72, 64 * 1024, 320),
    KernelResourceDemand(256, 144, 32 * 1024, 768),
    KernelResourceDemand(128, 200, 16 * 1024, 1024),
    KernelResourceDemand(256, 110, 48 * 1024, 560),
    KernelResourceDemand(256, 136, 96 * 1024, 400),
    KernelResourceDemand(512, 64, 48 * 1024, 352),
    KernelResourceDemand(64, 40, 4 * 1024, 48),      # small/elementwise
    KernelResourceDemand(128, 32, 8 * 1024, 64),
    KernelResourceDemand(64, 48, 8 * 1024, 56),
]


def occupancy_analysis() -> ExperimentResult:
    """How many of the 13 kernels can co-run? (paper: 10 cannot)."""
    result = ExperimentResult(
        name="motivation-occupancy",
        title="Occupancy-calculator analysis of 13 conv2d kernels (V100)")
    blocked = 0
    for index, demand in enumerate(CUDNN_KERNEL_SET, start=1):
        occupancy = device_occupancy(demand, TESLA_V100)
        corunnable = occupancy <= 0.5
        if not corunnable:
            blocked += 1
        result.add_row(
            kernel=f"k{index:02d}",
            threads_per_block=demand.threads_per_block,
            regs_per_thread=demand.registers_per_thread,
            blocks=demand.blocks,
            device_occupancy=occupancy,
            can_corun_with_twin="yes" if corunnable else "no",
        )
    result.notes.append(
        f"{blocked} of {len(CUDNN_KERNEL_SET)} kernels cannot co-run "
        "with a copy of themselves (paper: 10 of 13, register-bound).")
    return result


def two_stream_timing(seed: int = 0) -> ExperimentResult:
    """Run one big conv2d from each of two streams; compare to serial."""
    conv = OpDef(
        name="conv2d_224", kind=OpKind.CONV2D,
        flops=2.0 * 112 * 112 * 64 * 128 * 9 * 32,
        input_bytes=32 * 112 * 112 * 64 * 4,
        output_bytes=32 * 112 * 112 * 128 * 4,
        params_bytes=64 * 128 * 9 * 4, attrs={"k": 3})
    cost = gpu_kernel_cost(conv, TESLA_V100)

    def _run_pair(concurrent: bool) -> float:
        ctx = make_context(single_gpu_server, TESLA_V100, seed=seed)
        gpu = ctx.machine.gpu(0)

        def _launches():
            if concurrent:
                first = gpu.launch(KernelLaunch(
                    name="convA", context="ctxA", work_ms=cost.work_ms,
                    occupancy=cost.occupancy, stream=0))
                second = gpu.launch(KernelLaunch(
                    name="convB", context="ctxB", work_ms=cost.work_ms,
                    occupancy=cost.occupancy, stream=1))
                yield ctx.engine.all_of([first, second])
            else:
                yield gpu.launch(KernelLaunch(
                    name="convA", context="ctxA", work_ms=cost.work_ms,
                    occupancy=cost.occupancy, stream=0))
                yield gpu.launch(KernelLaunch(
                    name="convB", context="ctxB", work_ms=cost.work_ms,
                    occupancy=cost.occupancy, stream=1))

        process = ctx.engine.process(_launches())
        ctx.engine.run(until=process)
        return ctx.engine.now

    sequential = _run_pair(concurrent=False)
    two_streams = _run_pair(concurrent=True)
    result = ExperimentResult(
        name="motivation-streams",
        title="Two conv2d ops: two streams vs sequential (V100)")
    result.add_row(configuration="sequential", completion_ms=sequential)
    result.add_row(configuration="two streams", completion_ms=two_streams,
                   speedup=sequential / two_streams)
    result.notes.append(
        "Paper: concurrent launch from two streams offers almost no "
        "benefit — completion close to sequential.")
    return result


def run(seed: int = 0) -> ExperimentResult:
    """Combined motivation study (occupancy + streams)."""
    occupancy = occupancy_analysis()
    streams = two_stream_timing(seed=seed)
    combined = ExperimentResult(
        name="motivation",
        title=occupancy.title + " / " + streams.title)
    combined.rows = occupancy.rows + streams.rows
    combined.notes = occupancy.notes + streams.notes
    return combined
