"""Ablations of SwitchFlow's design choices.

The paper motivates several knobs without sweeping them; these harnesses
do the sweeps on the simulated substrate:

* **Temporary pool size** (Section 3.3: "a tradeoff between isolation
  and the performance of preempted jobs") — how fast a CPU-migrated
  victim runs vs. how much it perturbs the high-priority job.
* **CPU fallback** (Section 3.3) — with migration to the MKL executor
  disabled, a preempted job on a single-GPU machine must queue behind
  the preemptor instead.
* **Context-switch cost** (Section 2.2) — how the Figure 2 co-run
  collapse depends on the cross-context penalty of the device model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.baselines import MultiThreadedTF
from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    RunContext,
    SwitchFlowPolicy,
)
from repro.core.context import make_context
from repro.experiments.common import ExperimentResult
from repro.hw import TESLA_V100, single_gpu_server
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation


def _single_gpu_preemption(seed: int, temporary_workers: int = 4,
                           allow_cpu_fallback: bool = True,
                           victim_model: str = "MobileNetV2",
                           high_iterations: int = 40):
    """High-priority trainer preempts a low-priority one on one V100.

    The victim defaults to MobileNetV2 so its CPU/MKL executor makes
    measurable progress within the high-priority job's run. Arrival
    offsets are retried until the preemptor actually lands while the
    victim holds the GPU (a lightweight victim's gate is often free).
    """
    for attempt in range(10):
        ctx = make_context(single_gpu_server, TESLA_V100, seed=seed,
                           temporary_workers=temporary_workers)
        gpu_name = ctx.machine.gpu(0).name
        victim = JobHandle(
            name="victim", model=get_model(victim_model), batch=32,
            training=True, priority=PRIORITY_LOW,
            preferred_device=gpu_name)
        high = JobHandle(
            name="high", model=get_model("ResNet50"), batch=32,
            training=True, priority=PRIORITY_HIGH,
            preferred_device=gpu_name)
        run_colocation(
            ctx,
            lambda c: SwitchFlowPolicy(
                c, allow_cpu_fallback=allow_cpu_fallback),
            [JobSpec(job=victim, iterations=100_000, background=True),
             JobSpec(job=high, iterations=high_iterations,
                     start_delay_ms=500.0 + attempt * 13.0)])
        if victim.stats.preemptions >= 1:
            break
    return ctx, victim, high


def temporary_pool_tradeoff(sizes: List[int] = (1, 2, 4, 8),
                            seed: int = 0,
                            iterations: int = 30) -> ExperimentResult:
    """Sweep the temporary pool size for a CPU-resident (MKL) job.

    The scenario Section 3.3 describes: a preempted job parked on the
    CPU executor in the temporary pool, co-located with a high-priority
    GPU trainer. More temporary workers speed the MKL executor up but
    steal host cores from the GPU job's dispatch/pipeline.
    """
    result = ExperimentResult(
        name="ablation-temp-pool",
        title="Ablation: temporary thread-pool size "
              "(CPU-resident MKL job vs GPU trainer)")
    for size in sizes:
        ctx = make_context(single_gpu_server, TESLA_V100, seed=seed,
                           temporary_workers=size)
        cpu_job = JobHandle(
            name="victim", model=get_model("MobileNetV2"), batch=32,
            training=True, priority=PRIORITY_LOW,
            preferred_device=ctx.machine.cpu.name)
        cpu_job.in_temporary_pool = True
        gpu_job = JobHandle(
            name="high", model=get_model("ResNet50"), batch=32,
            training=True, priority=PRIORITY_HIGH,
            preferred_device=ctx.machine.gpu(0).name)
        run_colocation(ctx, SwitchFlowPolicy, [
            JobSpec(job=cpu_job, iterations=100_000, background=True),
            JobSpec(job=gpu_job, iterations=iterations),
        ])
        result.add_row(
            temporary_workers=len(ctx.temporary_pool.workers),
            victim_imgs_per_s=cpu_job.stats.throughput_items_per_s(),
            high_imgs_per_s=gpu_job.stats.throughput_items_per_s(
                warmup=1),
            victim_device=cpu_job.assigned_device,
        )
    result.notes.append(
        "Paper tradeoff: more temporary workers speed up the preempted "
        "job's MKL executor but take cores from the global pool.")
    return result


def cpu_fallback_ablation(seed: int = 0) -> ExperimentResult:
    """Disable migration-to-CPU: the victim must wait for the GPU.

    Uses a GPU-bound victim (ResNet50) so its executor actually holds
    the gate when the preemptor arrives; a pipeline-bound victim
    self-schedules into alternation and never needs preempting.
    """
    result = ExperimentResult(
        name="ablation-cpu-fallback",
        title="Ablation: CPU/MKL fallback on a single-GPU machine")
    for fallback in (True, False):
        ctx, victim, high = _single_gpu_preemption(
            seed, allow_cpu_fallback=fallback,
            victim_model="ResNet50", high_iterations=25)
        result.add_row(
            cpu_fallback="enabled" if fallback else "disabled",
            victim_device=victim.assigned_device,
            victim_imgs_per_s=victim.stats.throughput_after(500.0),
            high_imgs_per_s=high.stats.throughput_items_per_s(warmup=1),
            preemptions=victim.stats.preemptions,
        )
    result.notes.append(
        "With the fallback disabled the victim queues behind the "
        "high-priority job (priority gate), trading progress for zero "
        "MKL interference.")
    return result


def context_switch_sensitivity(
        overheads_ms: List[float] = (0.0, 0.15, 0.30, 0.60),
        seed: int = 0, batch: int = 16,
        iterations: int = 10) -> ExperimentResult:
    """Figure 2 co-run throughput vs the cross-context switch cost."""
    result = ExperimentResult(
        name="ablation-context-switch",
        title="Ablation: GPU context-switch overhead vs co-run "
              "throughput (two ResNet50s, V100)")
    model = get_model("ResNet50")
    for overhead in overheads_ms:
        spec = replace(TESLA_V100, context_switch_overhead_ms=overhead)
        ctx = make_context(single_gpu_server, spec, seed=seed)
        gpu_name = ctx.machine.gpu(0).name
        jobs = [
            JobHandle(name=f"resnet50-{i}", model=model, batch=batch,
                      training=True, preferred_device=gpu_name)
            for i in range(2)
        ]
        run_colocation(ctx, MultiThreadedTF, [
            JobSpec(job=job, iterations=iterations) for job in jobs])
        per_model = sum(job.stats.throughput_items_per_s(warmup=2)
                        for job in jobs) / 2
        result.add_row(
            context_switch_ms=overhead,
            per_model_imgs_per_s=per_model,
            switches=ctx.machine.gpu(0).context_switches,
        )
    result.notes.append(
        "The calibrated 0.30 ms reproduces the paper's 226->116 img/s "
        "collapse; 0 ms shows what free interleaving would give.")
    return result


def run(seed: int = 0) -> ExperimentResult:
    """All ablations, concatenated."""
    parts = [temporary_pool_tradeoff(seed=seed),
             cpu_fallback_ablation(seed=seed),
             context_switch_sensitivity(seed=seed)]
    combined = ExperimentResult(
        name="ablations", title="SwitchFlow design ablations")
    for part in parts:
        combined.rows.extend(
            [{"study": part.name, **row} for row in part.rows])
        combined.notes.extend(part.notes)
    return combined
