"""Figure 10: interleaving independent models vs session time slicing.

No input sharing here — the models are independent. SwitchFlow's gain
comes purely from its second invariant: CPU executors run freely while
GPU executors alternate, so one job's preprocessing overlaps the
other's compute. The paper reports ~30% consistent gains among
inference jobs and smaller gains (up to ~20%) against a training
co-runner.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines import SessionTimeSlicing
from repro.core import JobHandle, SwitchFlowPolicy, make_context
from repro.experiments.common import ExperimentResult
from repro.hw import TESLA_V100, single_gpu_server
from repro.metrics.throughput import improvement_percent
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation

# (panel, co-runner model, co-runner training?, co-runner batch).
PANELS: List[Tuple[str, str, bool, int]] = [
    ("(a) vs VGG16 inference BS=128", "VGG16", False, 128),
    ("(b) vs NASNetLarge inference BS=128", "NASNetLarge", False, 128),
    ("(c) vs VGG16 training BS=128", "VGG16", True, 128),
]

DEFAULT_MODELS = ["ResNet50", "DenseNet121", "InceptionV3", "MobileNet",
                  "MobileNetV2", "NASNetMobile"]
INFER_BATCH = 128


def _pair_throughput(policy_factory, model_name: str, partner: str,
                     partner_training: bool, partner_batch: int,
                     iterations: int, seed: int) -> float:
    """items/s of the measured model when co-run with the partner."""
    ctx = make_context(single_gpu_server, TESLA_V100, seed=seed)
    gpu_name = ctx.machine.gpu(0).name
    measured = JobHandle(
        name=f"measured/{model_name}", model=get_model(model_name),
        batch=INFER_BATCH, training=False, preferred_device=gpu_name)
    other = JobHandle(
        name=f"partner/{partner}", model=get_model(partner),
        batch=partner_batch, training=partner_training,
        preferred_device=gpu_name)
    run_colocation(ctx, policy_factory, [
        JobSpec(job=measured, iterations=iterations),
        JobSpec(job=other, iterations=100_000, background=True),
    ])
    return measured.stats.throughput_items_per_s(warmup=1)


def run(iterations: int = 8, seed: int = 0,
        models: Optional[List[str]] = None) -> ExperimentResult:
    result = ExperimentResult(
        name="fig10",
        title="Figure 10: interleaving independent models vs session "
              "time slicing (V100)")
    for panel, partner, partner_training, partner_batch in PANELS:
        for model_name in (models or DEFAULT_MODELS):
            baseline = _pair_throughput(
                SessionTimeSlicing, model_name, partner,
                partner_training, partner_batch, iterations, seed)
            interleaved = _pair_throughput(
                SwitchFlowPolicy, model_name, partner,
                partner_training, partner_batch, iterations, seed)
            result.add_row(
                panel=panel,
                model=model_name,
                timeslicing_items_per_s=baseline,
                switchflow_items_per_s=interleaved,
                improvement_pct=improvement_percent(baseline, interleaved),
            )
    result.notes.append(
        "Paper shape: consistent ~30% gains among inference jobs; "
        "smaller gains (<=20%) against a heavy training co-runner.")
    return result
