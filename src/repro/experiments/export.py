"""Export experiment results to CSV / JSON / Markdown / Chrome traces.

Lets downstream users archive reproduction runs or drop the tables into
reports without re-parsing the text rendering. Trace and metrics
exports delegate to :mod:`repro.obs`, so any experiment's RunContext
can be dumped for ``chrome://tracing`` or offline analysis.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Optional, Union

from repro.experiments.common import ExperimentResult
from repro.obs.chrome_trace import tracer_to_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import Tracer

PathLike = Union[str, Path]


def to_csv(result: ExperimentResult,
           path: Optional[PathLike] = None) -> str:
    """Serialize rows as CSV (also written to ``path`` if given)."""
    columns = result.columns()
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns,
                            extrasaction="ignore")
    writer.writeheader()
    for row in result.rows:
        writer.writerow({col: _plain(row.get(col)) for col in columns})
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def to_json(result: ExperimentResult,
            path: Optional[PathLike] = None) -> str:
    """Serialize the full result (rows + metadata) as JSON."""
    payload = {
        "name": result.name,
        "title": result.title,
        "rows": [{key: _plain(value) for key, value in row.items()}
                 for row in result.rows],
        "notes": list(result.notes),
    }
    text = json.dumps(payload, indent=2, sort_keys=False)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def from_json(text: str) -> ExperimentResult:
    """Inverse of :func:`to_json` (round-trips)."""
    payload = json.loads(text)
    result = ExperimentResult(name=payload["name"],
                              title=payload["title"])
    result.rows = list(payload.get("rows", []))
    result.notes = list(payload.get("notes", []))
    return result


def to_markdown(result: ExperimentResult) -> str:
    """A GitHub-flavoured markdown table (for EXPERIMENTS.md etc.)."""
    columns = result.columns()
    if not columns:
        return f"### {result.title}\n\n(no rows)\n"
    lines = [f"### {result.title}", ""]
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    lines.extend(
        "| " + " | ".join(_fmt_md(row.get(col)) for col in columns) + " |"
        for row in result.rows)
    if result.notes:
        lines.append("")
        lines.extend(f"*{note}*" for note in result.notes)
    return "\n".join(lines) + "\n"


def to_chrome_trace(tracer: Tracer,
                    path: Optional[PathLike] = None) -> str:
    """Serialize a run's spans as chrome://tracing JSON."""
    text = json.dumps(tracer_to_chrome_trace(tracer))
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def metrics_to_json(registry: MetricsRegistry,
                    path: Optional[PathLike] = None) -> str:
    """Serialize a full metrics snapshot (every series, with quantiles)."""
    text = json.dumps(registry.snapshot(), indent=2)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def _plain(value: Any) -> Any:
    if isinstance(value, float):
        return round(value, 4)
    return value


def _fmt_md(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.2f}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)
