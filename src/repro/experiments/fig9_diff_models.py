"""Figure 9: input reuse among *different* models (V100, inference).

Distinct CNNs share the preprocessing stage. The paper's findings:
larger batches increase the gain (the CPU becomes the bottleneck),
and adding more co-run models has diminishing returns — no more than
three models per GPU are recommended.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines import SessionTimeSlicing
from repro.core import JobHandle, make_context
from repro.experiments.common import ExperimentResult
from repro.hw import TESLA_V100, single_gpu_server
from repro.metrics.throughput import improvement_percent
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation, run_multitask

BATCHES = [32, 64, 128]

# Model mixes: panel (a) varies the pairing, panel (b) the count.
PAIRINGS = [
    ["ResNet50", "InceptionV3"],
    ["ResNet50", "MobileNetV2"],
    ["VGG16", "DenseNet121"],
    ["MobileNet", "MobileNetV2"],
]
COUNT_MIX = ["ResNet50", "InceptionV3", "DenseNet121", "MobileNetV2"]


def _timeslicing_group(models: List[str], batch: int, iterations: int,
                       seed: int) -> float:
    ctx = make_context(single_gpu_server, TESLA_V100, seed=seed)
    gpu_name = ctx.machine.gpu(0).name
    jobs = [
        JobHandle(name=f"ts{i}/{name}", model=get_model(name), batch=batch,
                  training=False, preferred_device=gpu_name)
        for i, name in enumerate(models)
    ]
    run_colocation(ctx, SessionTimeSlicing, [
        JobSpec(job=job, iterations=iterations) for job in jobs])
    return sum(job.stats.throughput_items_per_s(warmup=1)
               for job in jobs) / len(jobs)


def _reuse_group(models: List[str], batch: int, iterations: int,
                 seed: int) -> float:
    ctx = make_context(single_gpu_server, TESLA_V100, seed=seed)
    outcome = run_multitask(
        ctx, [get_model(name) for name in models], batch,
        training=False, iterations=iterations)
    return outcome.items_per_second(batch, warmup=1)


def run(iterations: int = 8, seed: int = 0,
        batches: Optional[List[int]] = None) -> ExperimentResult:
    result = ExperimentResult(
        name="fig9",
        title="Figure 9: input reuse among different models "
              "(V100 inference)")
    for batch in (batches or BATCHES):
        for models in PAIRINGS:
            baseline = _timeslicing_group(models, batch, iterations, seed)
            reuse = _reuse_group(models, batch, iterations, seed)
            result.add_row(
                panel="(a) pairings",
                models="+".join(models),
                batch=batch,
                n_models=len(models),
                improvement_pct=improvement_percent(baseline, reuse),
            )
    # Panel (b): diminishing returns with more co-run models.
    for count in (2, 3, 4):
        models = COUNT_MIX[:count]
        batch = 128
        baseline = _timeslicing_group(models, batch, iterations, seed)
        reuse = _reuse_group(models, batch, iterations, seed)
        result.add_row(
            panel="(b) model count",
            models="+".join(models),
            batch=batch,
            n_models=count,
            improvement_pct=improvement_percent(baseline, reuse),
        )
    result.notes.append(
        "Paper shape: larger batch => higher gain; diminishing per-model "
        "gain beyond 3 co-run models.")
    return result
