"""Cluster scale-out sweep: jobs x nodes under SwitchFlow (ROADMAP 2).

Each cell runs a fleet of background trainers (one per GPU, gang-placed
by :class:`~repro.graph.placement.GangScheduler`) plus a co-located pair
of high-priority inference streams on a ``v100_cluster`` of ``n`` nodes,
with the existing fault plan applied at rate 1. Reported per cell:

* aggregate throughput across every job (items/s), showing scale-out;
* migration latency split **by route class** — same-node transfers ride
  one NVLink/PCIe hop, cross-node ones pay src-PCIe → network → dst-PCIe
  (the Table 1 measurement, now with a topology axis);
* SLO survival of the foreground streams against the fault-free solo
  reference, exactly as the fault sweep scores it.

The 2-node quick cell doubles as the CI smoke job: it must show at
least one cross-node migration whose latency exceeds every same-node
one, or the topology model is not doing its job.

Environment knobs:

* ``REPRO_CLUSTER_SCALE_SEED`` — root seed for every cell (default 0).
* ``REPRO_CLUSTER_SCALE_JSON`` — path to dump the sweep as JSON.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    JobHandle,
    SwitchFlowPolicy,
    make_context,
)
from repro.experiments.common import ExperimentResult, fanout_map
from repro.faults import FaultPlan, plan_from_env
from repro.graph.partition import partition_graph
from repro.graph.placement import GangMember, GangScheduler, place_graph
from repro.hw.topology import v100_cluster
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation

SEED_ENV = "REPRO_CLUSTER_SCALE_SEED"
JSON_ENV = "REPRO_CLUSTER_SCALE_JSON"

#: Same survival rule as the fault sweep: a request lives if it lands
#: within this multiple of the fault-free solo mean latency.
SLO_FACTOR = 2.0

BG_MODEL = "ResNet50"
FG_MODEL = "MobileNetV2"
WARMUP = 2

FULL_NODES: Tuple[int, ...] = (1, 2, 4)
QUICK_NODES: Tuple[int, ...] = (2,)
GPUS_PER_NODE = 2


def default_plan() -> FaultPlan:
    """Moderate pressure, as the fault sweep applies (transfer failures
    included — they exercise the cross-node retry/backoff path)."""
    from repro.experiments import fault_sweep

    return fault_sweep.default_plan()


def _fault_free(plan: FaultPlan) -> FaultPlan:
    return FaultPlan(faults=[], recovery=plan.recovery)


def _critical_path_ms(ctx, model, batch: int, training: bool) -> float:
    """Per-iteration critical-path estimate for the spill rule.

    Builds the compute subgraph and a throwaway executor version on a
    representative GPU — pure construction, no simulated time passes —
    and asks :meth:`Executor.critical_path_ms`.
    """
    from repro.runtime.executor import Executor
    from repro.runtime.rendezvous import Rendezvous
    from repro.runtime.session import ACCELERATOR_TAG

    graph = model.build_graph(batch, training, include_pipeline=False,
                              name=f"cp-probe/{model.name}")
    place_graph(graph, ctx.machine.cpu.name, ACCELERATOR_TAG)
    subgraph = partition_graph(graph).subgraph(ACCELERATOR_TAG)
    probe = Executor(name=f"cp-probe/{model.name}", job="cp-probe",
                     subgraph=subgraph, device=ctx.machine.gpu(0),
                     machine=ctx.machine,
                     rendezvous=Rendezvous(ctx.engine))
    return probe.critical_path_ms()


def _member(ctx, job: JobHandle, critical_path_ms: float) -> GangMember:
    model = job.model
    if job.training:
        memory = model.training_memory_bytes(job.batch)
        state = model.stateful_bytes
    else:
        memory = model.inference_memory_bytes(job.batch)
        state = model.weight_bytes
    return GangMember(job=job.name, memory_bytes=memory,
                      state_bytes=state,
                      n_tensors=model.state_tensor_count,
                      critical_path_ms=critical_path_ms)


def _route_class_latencies(ctx) -> Dict[str, List[float]]:
    """Completed state-transfer latencies, split same-node/cross-node."""
    classes: Dict[str, List[float]] = {"same-node": [], "cross-node": []}
    for record in ctx.runlog.records:
        if record.get("event") != "state_transfer_done":
            continue
        key = ("same-node"
               if ctx.machine.same_node(record["src"], record["dst"])
               else "cross-node")
        classes[key].append(record["transfer_ms"])
    return classes


def _mean(values: Sequence[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _solo_reference_ms(requests: int, seed: int, plan: FaultPlan) -> float:
    """Fault-free solo mean latency of the foreground stream."""
    ctx = make_context(v100_cluster, 1, 1, seed=seed,
                       fault_plan=_fault_free(plan))
    job = JobHandle(name="solo-fg", model=get_model(FG_MODEL), batch=1,
                    training=False, priority=PRIORITY_HIGH,
                    preferred_device=ctx.machine.gpu(0).name)
    run_colocation(ctx, SwitchFlowPolicy,
                   [JobSpec(job=job, iterations=requests)])
    samples = job.stats.iteration_times_ms[WARMUP:]
    if not samples:
        raise RuntimeError("solo reference produced no samples")
    return sum(samples) / len(samples)


def _run_cell(cell) -> Dict[str, object]:
    """One (n_nodes) cell. Module-level and plain-data in/out so the
    sweep fans across ``fanout_map`` workers."""
    n_nodes, gpus_per_node, requests, seed, slo_ms, plan_payload = cell
    plan = FaultPlan.from_dict(plan_payload)
    ctx = make_context(v100_cluster, n_nodes, gpus_per_node, seed=seed,
                       fault_plan=plan)
    machine = ctx.machine

    # One background trainer per GPU; two foreground inference streams
    # forming one tightly coupled gang.
    trainers = [
        JobHandle(name=f"bg{i}", model=get_model(BG_MODEL), batch=32,
                  training=True, priority=PRIORITY_LOW)
        for i in range(len(machine.gpus))]
    streams = [
        JobHandle(name=f"fg{i}", model=get_model(FG_MODEL), batch=1,
                  training=False, priority=PRIORITY_HIGH)
        for i in range(2)]

    # Gang placement: trainers are independent gangs (the home-node
    # rule spreads them); the stream pair is one gang (co-located).
    scheduler = GangScheduler(machine, runlog=ctx.runlog)
    bg_cp = _critical_path_ms(ctx, get_model(BG_MODEL), 32, True)
    fg_cp = _critical_path_ms(ctx, get_model(FG_MODEL), 1, False)
    placements = scheduler.place(
        [[_member(ctx, job, bg_cp)] for job in trainers]
        + [[_member(ctx, job, fg_cp) for job in streams]])
    for job in trainers + streams:
        job.preferred_device = placements[job.name].device

    result = run_colocation(ctx, SwitchFlowPolicy, [
        JobSpec(job=job, iterations=100_000, background=True)
        for job in trainers
    ] + [
        JobSpec(job=job, iterations=requests,
                start_delay_ms=500.0 + 20.0 * index)
        for index, job in enumerate(streams)
    ])

    survived = scored = 0
    for job in streams:
        samples = job.stats.iteration_times_ms[WARMUP:]
        scored += max(1, requests - WARMUP)
        survived += sum(1 for latency in samples[:requests - WARMUP]
                        if latency <= slo_ms)
    aggregate = sum(
        job.stats.throughput_items_per_s(warmup=WARMUP)
        for job in trainers + streams
        if len(job.stats.iteration_times_ms) > WARMUP)
    classes = _route_class_latencies(ctx)
    spilled = sum(1 for p in placements.values() if p.spilled)
    fg_p95 = max(result.latency_summary(job.name, warmup=WARMUP).p95
                 for job in streams)
    return {
        "nodes": n_nodes,
        "gpus": len(machine.gpus),
        "jobs": len(trainers) + len(streams),
        "spilled": spilled,
        "agg_items_per_s": aggregate,
        "fg_p95_ms": fg_p95,
        "slo_survival_pct": 100.0 * survived / scored,
        "migr_same_node": len(classes["same-node"]),
        "same_node_ms": _mean(classes["same-node"]),
        "migr_cross_node": len(classes["cross-node"]),
        "cross_node_ms": _mean(classes["cross-node"]),
        "crashed": ",".join(result.crashed_jobs()) or "-",
    }


def run(requests: int = 30, nodes: Sequence[int] = FULL_NODES,
        gpus_per_node: int = GPUS_PER_NODE,
        seed: Optional[int] = None, plan: Optional[FaultPlan] = None,
        json_path: Optional[str] = None) -> ExperimentResult:
    if seed is None:
        seed = int(os.environ.get(SEED_ENV, "0"))
    if plan is None:
        plan = plan_from_env() or default_plan()
    slo_ms = SLO_FACTOR * _solo_reference_ms(requests, seed, plan)

    payload = plan.to_dict()
    cells = [(n, gpus_per_node, requests, seed, slo_ms, payload)
             for n in nodes]
    rows: List[Dict[str, object]] = fanout_map(_run_cell, cells)

    result = ExperimentResult(
        name="cluster_scale",
        title=f"Cluster scale-out: jobs x nodes, {gpus_per_node} "
              f"GPU(s)/node (SLO = {SLO_FACTOR:g}x solo mean = "
              f"{slo_ms:.1f} ms, seed {seed})")
    for row in rows:
        result.add_row(**row)
    result.notes.append(
        "same_node_ms rides one NVLink/PCIe hop; cross_node_ms "
        "traverses src-PCIe -> network -> dst-PCIe. Placements come "
        "from the gang scheduler (spilled = members placed off their "
        "gang's home node).")

    json_path = json_path or os.environ.get(JSON_ENV)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump({"seed": seed, "slo_ms": slo_ms,
                       "slo_factor": SLO_FACTOR, "plan": payload,
                       "nodes": list(nodes),
                       "gpus_per_node": gpus_per_node, "rows": rows},
                      fh, indent=2)
            fh.write("\n")
    return result


def headline_checks(result: ExperimentResult) -> List[str]:
    """Assertable claims the reproduction stands on."""
    checks: List[str] = []
    multi = [row for row in result.rows if int(row["nodes"]) > 1]
    crossed = [row for row in multi if row["migr_cross_node"]]
    if crossed:
        worst_same = max((row["same_node_ms"] or 0.0) for row in crossed)
        best_cross = min(row["cross_node_ms"] for row in crossed)
        verdict = "PASS" if best_cross > worst_same else "FAIL"
        checks.append(
            f"{verdict}: cross-node migrations are slower than "
            f"same-node ones (min cross {best_cross:.2f} ms vs max "
            f"same {worst_same:.2f} ms)")
    elif multi:
        checks.append("WARN: no cross-node migrations occurred; the "
                      "route-class comparison is vacuous")
    return checks
