"""Figure 7: throughput of two training jobs sharing a GPU.

Panels (a)-(b): multi-threaded TF on the 11 GB GPUs — both models slow
down and some pairs crash with OOM. Panel (c): NVIDIA MPS on the 32 GB
V100 — completes, but both models still suffer. Panels (d)-(f):
SwitchFlow — the high-priority job preempts; the low-priority job
migrates to a slower GPU (acceptable throughput) or to the CPU
(drastic drop); nothing crashes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.baselines import MPSPolicy, MultiThreadedTF
from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    RunContext,
    SwitchFlowPolicy,
    make_context,
)
from repro.experiments.common import ExperimentResult, solo_throughput
from repro.hw import (
    GTX_1080_TI,
    RTX_2080_TI,
    TESLA_V100,
    single_gpu_server,
    two_gpu_server,
)
from repro.models import get_model

# The co-run partners used across the paper's panels.
PARTNER_MODELS = ["ResNet50", "VGG16", "DenseNet121", "DenseNet169",
                  "InceptionResNetV2", "InceptionV3"]
TRAIN_BATCH = 32


def _corun(ctx: RunContext, policy_factory, first: JobHandle,
           second: JobHandle, iterations: int,
           second_delay_ms: float = 0.0):
    from repro.workloads import JobSpec, run_colocation

    return run_colocation(ctx, policy_factory, [
        JobSpec(job=first, iterations=iterations),
        JobSpec(job=second, iterations=iterations,
                start_delay_ms=second_delay_ms),
    ])


def shared_gpu_panel(result: ExperimentResult, panel: str,
                     policy_factory: Callable, machine_builder,
                     machine_args: Sequence, background_model: str,
                     partners: List[str], iterations: int,
                     seed: int) -> None:
    """Panels (a)-(c): both jobs pinned to one GPU, equal priority."""
    for partner in partners:
        ctx = make_context(machine_builder, *machine_args, seed=seed)
        gpu_name = ctx.machine.gpu(0).name
        background = JobHandle(
            name=f"bg/{background_model}", model=get_model(background_model),
            batch=TRAIN_BATCH, training=True, preferred_device=gpu_name)
        foreground = JobHandle(
            name=f"fg/{partner}", model=get_model(partner),
            batch=TRAIN_BATCH, training=True, preferred_device=gpu_name)
        results = _corun(ctx, policy_factory, background, foreground,
                         iterations)
        solo = solo_throughput(machine_builder, machine_args,
                               get_model(partner), TRAIN_BATCH, True,
                               seed=seed)
        result.add_row(
            panel=panel,
            background=background_model,
            model=partner,
            model_imgs_per_s=foreground.stats
            .throughput_items_per_s(warmup=1),
            background_imgs_per_s=background.stats
            .throughput_items_per_s(warmup=1),
            model_solo_imgs_per_s=solo,
            oom=",".join(results.crashed_jobs()) or "none",
        )


def switchflow_panel(result: ExperimentResult, panel: str, machine_builder,
                     machine_args: Sequence, low_model: str,
                     partners: List[str], iterations: int, seed: int,
                     arrival_delay_ms: float = 800.0) -> None:
    """Panels (d)-(f): high-priority arrival preempts the low job."""
    from repro.workloads import JobSpec, run_colocation

    for partner in partners:
        ctx = make_context(machine_builder, *machine_args, seed=seed)
        fastest = max(ctx.machine.gpus,
                      key=lambda gpu: gpu.spec.peak_fp32_tflops)
        low = JobHandle(
            name=f"low/{low_model}", model=get_model(low_model),
            batch=TRAIN_BATCH, training=True, priority=PRIORITY_LOW,
            preferred_device=fastest.name)
        high = JobHandle(
            name=f"high/{partner}", model=get_model(partner),
            batch=TRAIN_BATCH, training=True, priority=PRIORITY_HIGH,
            preferred_device=fastest.name)
        # The low job runs until the high job finishes (background);
        # its reported throughput covers only the contended window.
        results = run_colocation(ctx, SwitchFlowPolicy, [
            JobSpec(job=low, iterations=100_000, background=True),
            JobSpec(job=high, iterations=iterations,
                    start_delay_ms=arrival_delay_ms),
        ])
        solo = solo_throughput(machine_builder, machine_args,
                               get_model(partner), TRAIN_BATCH, True,
                               seed=seed)
        result.add_row(
            panel=panel,
            background=f"{low_model} (low)",
            model=f"{partner} (high)",
            model_imgs_per_s=high.stats.throughput_items_per_s(warmup=1),
            background_imgs_per_s=low.stats
            .throughput_after(arrival_delay_ms),
            model_solo_imgs_per_s=solo,
            oom=",".join(results.crashed_jobs()) or "none",
            low_final_device=low.assigned_device,
            preemptions=low.stats.preemptions,
        )


def run(iterations: int = 10, seed: int = 0,
        partners: Optional[List[str]] = None) -> ExperimentResult:
    result = ExperimentResult(
        name="fig7",
        title="Figure 7: throughput of two co-running training jobs "
              f"(BS={TRAIN_BATCH})")
    chosen = partners or PARTNER_MODELS
    shared_gpu_panel(result, "(a) TF / GTX 1080 Ti", MultiThreadedTF,
                     single_gpu_server, (GTX_1080_TI,), "ResNet50",
                     chosen, iterations, seed)
    shared_gpu_panel(result, "(b) TF / RTX 2080 Ti", MultiThreadedTF,
                     single_gpu_server, (RTX_2080_TI,), "VGG16",
                     chosen, iterations, seed)
    shared_gpu_panel(result, "(c) MPS / V100",
                     lambda ctx: MPSPolicy(ctx, reserve="growth"),
                     single_gpu_server, (TESLA_V100,), "ResNet50",
                     chosen, iterations, seed)
    switchflow_panel(result, "(d) SwitchFlow / CPU+2080Ti",
                     single_gpu_server, (RTX_2080_TI,), "ResNet50",
                     chosen, iterations, seed)
    switchflow_panel(result, "(e) SwitchFlow / 1080Ti+2080Ti",
                     two_gpu_server, (), "ResNet50",
                     chosen, iterations, seed)
    switchflow_panel(result, "(f) SwitchFlow / 1080Ti+2080Ti",
                     two_gpu_server, (), "VGG16",
                     chosen, iterations, seed)
    result.notes.append(
        "Paper shape: (a)(b) heavy mutual slowdown plus OOM crashes for "
        "large pairs; (c) completes on the 32 GB V100 but still slow; "
        "(d)-(f) no crashes, high-priority job near-solo throughput, "
        "low job migrated to the slower GPU or (d) the CPU.")
    return result


def mps_default_mode_crashes(seed: int = 0) -> List[str]:
    """The paper's 'all models crash under MPS on 11 GB GPUs' check."""
    ctx = make_context(single_gpu_server, RTX_2080_TI, seed=seed)
    gpu_name = ctx.machine.gpu(0).name
    first = JobHandle(name="mps/first", model=get_model("ResNet50"),
                      batch=TRAIN_BATCH, training=True,
                      preferred_device=gpu_name)
    second = JobHandle(name="mps/second", model=get_model("MobileNetV2"),
                       batch=TRAIN_BATCH, training=True,
                       preferred_device=gpu_name)
    results = _corun(ctx, lambda c: MPSPolicy(c, reserve="default"),
                     first, second, iterations=3)
    return results.crashed_jobs()
