"""Experiment harnesses: one module per table/figure of the paper.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.experiments import (  # noqa: F401  (re-exported modules)
    ablations,
    cluster_scale,
    fig2_timeline,
    fig3_idle,
    fig6_tail_latency,
    fig7_throughput,
    fig8_input_reuse,
    fig9_diff_models,
    fig10_interleaving,
    motivation_streams,
    preemption_overhead,
    serving_colocation,
    table1_state_transfer,
)
from repro.experiments.common import ExperimentResult

__all__ = [
    "ExperimentResult",
    "cluster_scale",
    "fig10_interleaving",
    "fig2_timeline",
    "fig3_idle",
    "fig6_tail_latency",
    "fig7_throughput",
    "fig8_input_reuse",
    "fig9_diff_models",
    "motivation_streams",
    "preemption_overhead",
    "serving_colocation",
    "table1_state_transfer",
]
