"""Section 5.2.3: preemption overhead decomposition.

Two quantities: (1) preemption latency — the time from a high-priority
arrival to the moment it holds the GPU, dominated by draining the
victim's outstanding kernels (worst case: one heavyweight kernel, tens
of ms); (2) the memory retained for the victim's model state until the
asynchronous transfer lands, which the paper bounds at <=10% of device
memory (Table 1's largest model).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SwitchFlowPolicy,
    make_context,
)
from repro.experiments.common import ExperimentResult
from repro.hw import GTX_1080_TI, two_gpu_server
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation

MODELS = ["ResNet50", "VGG16", "VGG19", "DenseNet121", "InceptionV3",
          "MobileNetV2"]


def measure_preemption_latency(victim_model: str, seed: int = 0,
                               arrival_ms: float = 700.0) -> dict:
    """Preempt a training job mid-iteration; returns latency parts.

    The arrival time is retried with small offsets until the preemptor
    actually lands while the victim holds the GPU — an arrival in the
    gap between two of the victim's runs is granted the gate for free
    and preempts nothing.
    """
    for attempt in range(8):
        offset = arrival_ms + attempt * 17.0
        ctx = _attempt(victim_model, seed, offset)
        # The scheduler publishes every preemption decision into the
        # metrics registry; query it instead of scanning raw spans.
        if ctx.metrics.value("sched.preemptions") > 0:
            arrival_ms = offset
            break
    else:
        # Lightweight victims barely hold the GPU; the preemptor always
        # finds the gate free. Report that, rather than a latency.
        state_mib = get_model(victim_model).stateful_bytes / 2 ** 20
        return {
            "victim": victim_model,
            "preemption_latency_ms": None,
            "victim_migrated_to": "(not preempted: gate was free)",
            "retained_state_mib": state_mib,
            "state_fraction_of_11gb_pct": 100.0 * state_mib / (11 * 1024),
        }
    fast = max(ctx.machine.gpus, key=lambda g: g.spec.peak_fp32_tflops)
    victim = ctx._victim_handle
    # Preemption latency: decision -> the preemptor's first kernel.
    # The decision instant comes from the structured run log.
    decisions = ctx.runlog.filter("preempt")
    if not decisions:
        raise RuntimeError("preemption did not occur")
    preempt_time = min(record["t_ms"] for record in decisions)
    grant_time = min(
        (span.start for span in ctx.tracer.spans
         if span.lane == fast.lane
         and span.meta.get("context") == "preemptor"
         and span.start >= preempt_time),
        default=None)
    if grant_time is None:
        raise RuntimeError("preemptor never ran a kernel")
    state_mib = get_model(victim_model).stateful_bytes / 2 ** 20
    return {
        "victim": victim_model,
        # Critical path: preemption decision -> preemptor's first kernel,
        # i.e. the victim's outstanding-kernel drain plus gate hand-off.
        "preemption_latency_ms": grant_time - preempt_time,
        "victim_migrated_to": victim.assigned_device,
        "retained_state_mib": state_mib,
        "state_fraction_of_11gb_pct":
            100.0 * state_mib / (11 * 1024),
    }


def _attempt(victim_model: str, seed: int, arrival_ms: float):
    """One co-location attempt; returns its context (victim attached)."""
    ctx = make_context(two_gpu_server, seed=seed)
    fast = max(ctx.machine.gpus, key=lambda g: g.spec.peak_fp32_tflops)
    victim = JobHandle(
        name="victim", model=get_model(victim_model), batch=32,
        training=True, priority=PRIORITY_LOW, preferred_device=fast.name)
    preemptor = JobHandle(
        name="preemptor", model=get_model("ResNet50"), batch=32,
        training=True, priority=PRIORITY_HIGH, preferred_device=fast.name)
    run_colocation(ctx, SwitchFlowPolicy, [
        JobSpec(job=victim, iterations=100_000, background=True),
        JobSpec(job=preemptor, iterations=4, start_delay_ms=arrival_ms),
    ])
    ctx._victim_handle = victim
    return ctx


def run(seed: int = 0,
        models: Optional[List[str]] = None) -> ExperimentResult:
    result = ExperimentResult(
        name="preemption",
        title="Section 5.2.3: preemption latency and retained state")
    for model_name in (models or MODELS):
        result.add_row(**measure_preemption_latency(model_name, seed=seed))
    result.notes.append(
        "Paper: worst-case preemption latency is one outstanding kernel "
        "(a few tens of ms); retained weights are <=10% of an 11 GB GPU "
        "(VGG19, ~110 ms until transferred).")
    result.notes.append(
        f"GTX 1080 Ti reference: {GTX_1080_TI.memory_bytes / 2**30:.0f} "
        "GiB device memory.")
    return result
