"""SLO survival under injected faults: SwitchFlow vs every baseline.

For each (policy, fault-rate) cell, a high-priority inference stream
shares a two-V100 server with a background trainer while a scaled copy
of the fault plan breaks things — kernel stalls, transfer failures,
job crashes, device OOM, spurious preemptions. The reported *SLO
survival* is the percentage of foreground requests that finished within
``SLO_FACTOR`` times the stream's fault-free solo latency; injected and
recovered fault counts come straight from the ``faults.*`` metrics.

``rate`` scales the plan's trigger intensities (``0`` disables every
fault — the control column; ``2`` fires twice as often), so one plan
yields a survival-vs-pressure curve per policy. The plan comes from
``$REPRO_FAULTS`` (the runner's ``--faults`` flag) or falls back to a
moderate built-in. Every cell runs with whatever `repro.analysis`
enforcement is active, so a sweep under ``--sanitize`` doubles as an
adversarial proof of the paper's invariants.

Environment knobs (used by the nightly CI matrix):

* ``REPRO_FAULT_SWEEP_SEED`` — root seed for every cell (default 0).
* ``REPRO_FAULT_SWEEP_JSON`` — path to dump the sweep as JSON.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.baselines import MPSPolicy, MultiThreadedTF, SessionTimeSlicing
from repro.core import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    JobHandle,
    SwitchFlowPolicy,
    make_context,
)
from repro.experiments.common import ExperimentResult, fanout_map
from repro.faults import FaultPlan, plan_from_env
from repro.hw import v100_server
from repro.models import get_model
from repro.workloads import JobSpec, run_colocation

SEED_ENV = "REPRO_FAULT_SWEEP_SEED"
JSON_ENV = "REPRO_FAULT_SWEEP_JSON"

#: A request survives if it finishes within this multiple of the
#: stream's fault-free solo mean latency.
SLO_FACTOR = 2.0

BG_MODEL = "ResNet50"
FG_MODEL = "MobileNetV2"
WARMUP = 2

_POLICIES = {
    "SwitchFlow": SwitchFlowPolicy,
    "MT-TF": MultiThreadedTF,
    "TimeSlicing": SessionTimeSlicing,
    "MPS": MPSPolicy,
}

FULL_RATES = (0.0, 0.5, 1.0, 2.0)
QUICK_RATES = (0.0, 1.0)


def default_plan() -> FaultPlan:
    """Moderate pressure across every fault kind (rate-1 reference)."""
    return FaultPlan.from_dict({
        "faults": [
            {"kind": "kernel_slowdown", "trigger": {"every_n": 50},
             "factor": 2.0},
            {"kind": "kernel_stall", "trigger": {"probability": 0.002},
             "stall_ms": 5.0},
            {"kind": "transfer_fail", "trigger": {"probability": 0.2}},
            {"kind": "job_crash", "trigger": {"probability": 0.01}},
            {"kind": "spurious_preempt", "trigger": {"every_ms": 1000.0}},
        ],
    })


def _fault_free(plan: FaultPlan) -> FaultPlan:
    """An empty plan carrying the same recovery config.

    Attached explicitly so the reference runs never pick up the
    full-rate ``$REPRO_FAULTS`` plan through the harness.
    """
    return FaultPlan(faults=[], recovery=plan.recovery)


def _solo_reference_ms(requests: int, seed: int,
                       plan: FaultPlan) -> float:
    """Fault-free solo mean latency of the foreground stream."""
    ctx = make_context(v100_server, 2, seed=seed,
                       fault_plan=_fault_free(plan))
    job = JobHandle(name="solo-fg", model=get_model(FG_MODEL), batch=1,
                    training=False, priority=PRIORITY_HIGH,
                    preferred_device=ctx.machine.gpu(0).name)
    run_colocation(ctx, MultiThreadedTF,
                   [JobSpec(job=job, iterations=requests)])
    samples = job.stats.iteration_times_ms[WARMUP:]
    if not samples:
        raise RuntimeError("solo reference produced no samples")
    return sum(samples) / len(samples)


def _run_cell(cell) -> Dict[str, object]:
    """One (policy, rate) cell. Module-level and plain-data in/out so
    the sweep fans across ``fanout_map`` workers."""
    policy_name, rate, plan_payload, requests, seed, slo_ms = cell
    plan = FaultPlan.from_dict(plan_payload).scaled(rate)
    ctx = make_context(v100_server, 2, seed=seed, fault_plan=plan)
    gpu = ctx.machine.gpu(0).name
    background = JobHandle(
        name="bg-train", model=get_model(BG_MODEL), batch=32,
        training=True, priority=PRIORITY_LOW, preferred_device=gpu)
    foreground = JobHandle(
        name="fg-infer", model=get_model(FG_MODEL), batch=1,
        training=False, priority=PRIORITY_HIGH, preferred_device=gpu)
    result = run_colocation(ctx, _POLICIES[policy_name], [
        JobSpec(job=background, iterations=100_000, background=True),
        JobSpec(job=foreground, iterations=requests,
                start_delay_ms=500.0),
    ])
    samples = foreground.stats.iteration_times_ms[WARMUP:]
    scored = min(len(samples), requests - WARMUP)
    survived = sum(1 for latency in samples[:scored]
                   if latency <= slo_ms)
    denominator = max(1, requests - WARMUP)
    summary = result.latency_summary("fg-infer", warmup=WARMUP)
    return {
        "policy": policy_name,
        "rate": rate,
        "slo_survival_pct": 100.0 * survived / denominator,
        "fg_p95_ms": summary.p95,
        "faults_injected": ctx.metrics.value("faults.injected_total"),
        "faults_recovered": ctx.metrics.value("faults.recovered_total"),
        "degraded_devices": int(
            ctx.metrics.value("faults.degraded_total")),
        "crashed": ",".join(result.crashed_jobs()) or "-",
    }


def run(requests: int = 30, rates: Sequence[float] = FULL_RATES,
        seed: Optional[int] = None, plan: Optional[FaultPlan] = None,
        json_path: Optional[str] = None) -> ExperimentResult:
    if seed is None:
        seed = int(os.environ.get(SEED_ENV, "0"))
    if plan is None:
        plan = plan_from_env() or default_plan()
    slo_ms = SLO_FACTOR * _solo_reference_ms(requests, seed, plan)

    payload = plan.to_dict()
    cells = [(policy, rate, payload, requests, seed, slo_ms)
             for rate in rates for policy in _POLICIES]
    rows: List[Dict[str, object]] = fanout_map(_run_cell, cells)

    result = ExperimentResult(
        name="fault_sweep",
        title=f"Fault sweep: SLO survival vs fault rate "
              f"(SLO = {SLO_FACTOR:g}x solo mean = {slo_ms:.1f} ms, "
              f"seed {seed})")
    for row in rows:
        result.add_row(**row)
    result.notes.append(
        "rate scales every trigger in the plan; rate 0 is the "
        "fault-free control. Recovery: transfer retries with capped "
        "backoff, restart-from-checkpoint, victim re-admission, "
        "degradation to time slicing.")

    json_path = json_path or os.environ.get(JSON_ENV)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump({"seed": seed, "slo_ms": slo_ms,
                       "slo_factor": SLO_FACTOR, "plan": payload,
                       "rates": list(rates), "rows": rows},
                      fh, indent=2)
            fh.write("\n")
    return result
