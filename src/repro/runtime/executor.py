"""Executor: runs one subgraph on one device via a thread pool.

Follows the paper's Figure 1 semantics: ready nodes are dispatched
breadth-first onto worker local queues; when a node finishes, its newly
ready successors either go back through the pool (expensive ops) or run
inline on the same worker (inexpensive ops); idle workers steal.

An executor is bound to a *device version*: SwitchFlow replicates
executors across devices so a subgraph can migrate (Section 3.2). Runs
can be aborted mid-flight — queued nodes are revoked, in-flight kernels
drain — and later *resumed* with the completed-node set carried over,
so no work is lost (Section 3.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.graph.cost_model import (
    EXPENSIVE_THRESHOLD_MS,
    cpu_op_cost_ms,
    gpu_kernel_cost,
)
from repro.graph.graph import Graph, Node
from repro.graph.ops import OpKind
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice
from repro.hw.kernels import KernelLaunch
from repro.sim import instrument
from repro.sim.errors import EventCancelled
from repro.sim.events import Event
from repro.runtime.rendezvous import Rendezvous
from repro.runtime.threadpool import Task, ThreadPool, Worker

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.machine import Machine

# Host-side bookkeeping per node (TF executor overhead: dependency
# resolution, kernel argument setup, stream work submission).
EXECUTOR_DISPATCH_MS = 0.06
# Ops inside a tf.while_loop (unrolled RNN decode steps) pay the
# dynamic-control-flow tax on every step: frame bookkeeping, feed of the
# previous step's output, beam-search pruning on the host.
RECURRENT_DISPATCH_MS = 0.5
# Relative execution-time jitter applied to every op (lognormal sigma).
EXECUTION_JITTER_SIGMA = 0.03

# Sentinel: node completion will be delivered by a kernel callback, not
# by the worker (GPU launches are asynchronous — the worker is freed as
# soon as the kernel is in the stream, like TF's executor threads).
_DEFERRED = object()


class ExecutorRun:
    """Mutable state of one in-flight executor invocation.

    Dependency state is seeded from the executor's precomputed in-degree
    map: a fresh run is a dict copy, and a *resumed* run (``completed``
    carried over from an aborted invocation) subtracts the edges leaving
    completed nodes instead of rescanning every predecessor list in the
    subgraph.
    """

    # The last three slots belong to the session layer, which annotates
    # runs with the device/pool/memory context they execute under.
    __slots__ = ("executor", "scope", "done", "aborted", "completed",
                 "active", "_quiesced", "in_deg", "remaining",
                 "transient_allocation", "device_name", "pool")

    def __init__(self, executor: "Executor", scope: str,
                 completed: Optional[Set[int]] = None) -> None:
        self.executor = executor
        self.scope = scope
        self.done: Event = executor.engine.event()
        self.aborted = False
        self.completed: Set[int] = set(completed or ())
        self.active = 0
        self._quiesced: Optional[Event] = None
        self.in_deg: Dict[int, int] = dict(executor._base_in_deg)
        if self.completed:
            for node_id in self.completed:
                self.in_deg.pop(node_id, None)
            for node_id in self.completed:
                for successor, _expensive in executor._succ.get(node_id, ()):
                    sid = successor.node_id
                    if sid in self.in_deg:
                        self.in_deg[sid] -= 1
        self.remaining = len(self.in_deg)

    @property
    def status(self) -> str:
        if not self.done.triggered:
            return "running"
        return self.done.value

    def initially_ready(self):
        if not self.completed:
            return list(self.executor._initial_ready)
        node_by_id = self.executor._node_by_id
        return [node_by_id[node_id]
                for node_id, degree in self.in_deg.items() if degree == 0]


class Executor:
    """A subgraph bound to one device, runnable many times."""

    def __init__(self, name: str, job: str, subgraph: Graph,
                 device, machine: "Machine",
                 rendezvous: Rendezvous, rng=None) -> None:
        self.name = name
        self.job = job
        self.subgraph = subgraph
        self.device = device
        self.machine = machine
        self.rendezvous = rendezvous
        self.engine = machine.engine
        self.is_gpu = isinstance(device, GpuDevice)
        # Per-node immutable state, computed once per executor so run
        # construction and successor scheduling never rescan the graph:
        # memoized costs, the expensive/inexpensive classification,
        # successor adjacency, base in-degrees, and the initial frontier.
        self._costs: Dict[int, object] = {}
        self._expensive: Dict[int, bool] = {}
        self._node_by_id: Dict[int, Node] = {}
        self._base_in_deg: Dict[int, int] = {}
        for node in subgraph:
            node_id = node.node_id
            self._node_by_id[node_id] = node
            self._base_in_deg[node_id] = sum(
                1 for _pred in subgraph.predecessors(node))
            if node.kind in (OpKind.SEND, OpKind.RECV):
                self._expensive[node_id] = False
                continue
            if self.is_gpu:
                cost = gpu_kernel_cost(node.op, device.spec)
                self._expensive[node_id] = cost.expensive
            else:
                cost = cpu_op_cost_ms(node.op, machine.cpu.spec)
                self._expensive[node_id] = cost >= EXPENSIVE_THRESHOLD_MS
            self._costs[node_id] = cost
        self._succ: Dict[int, list] = {
            node_id: [(successor, self._expensive[successor.node_id])
                      for successor in subgraph.successors(node)]
            for node_id, node in self._node_by_id.items()}
        # Task display names, formatted once: an f-string per dispatched
        # node is measurable at executor rates.
        self._task_names: Dict[int, str] = {
            node_id: f"{name}/{node.name}"
            for node_id, node in self._node_by_id.items()}
        self._initial_ready = [
            node for node in subgraph if self._base_in_deg[node.node_id] == 0]
        # Jitter streams are keyed by the node's position in the
        # subgraph, not node_id: ids come from a process-global counter
        # and would make two identical runs draw different noise.
        if rng is not None:
            streams = rng.jitter_streams(
                f"executor:{name}", range(len(self._costs)),
                EXECUTION_JITTER_SIGMA)
            self._node_jitter = {
                node_id: streams[index]
                for index, node_id in enumerate(self._costs)}
        else:
            self._node_jitter = {}

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    def node_cost_ms(self, node_id: int) -> float:
        """Jitter-free expected execution cost of one node, in ms.

        GPU nodes include the host-side dispatch overhead; SEND pays
        its host bookkeeping; RECV is dynamic (rendezvous wait + PCIe)
        and contributes zero statically.
        """
        cost = self._costs.get(node_id)
        if cost is None:
            node = self._node_by_id[node_id]
            return 0.005 if node.kind is OpKind.SEND else 0.0
        if self.is_gpu:
            node = self._node_by_id[node_id]
            dispatch = (RECURRENT_DISPATCH_MS
                        if node.op.attrs.get("recurrent")
                        else EXECUTOR_DISPATCH_MS)
            return cost.work_ms + dispatch
        return float(cost)

    def critical_path_ms(self) -> float:
        """Longest cost-weighted path through the subgraph, in ms.

        The dependency-structure lower bound on one run of this
        executor with unlimited parallelism — the quantity the
        critical-path profiler compares observed iteration time
        against ("It's the Critical Path!", PAPERS.md).
        """
        finish: Dict[int, float] = {}
        in_deg = dict(self._base_in_deg)
        frontier = [n.node_id for n in self._initial_ready]
        longest = 0.0
        while frontier:
            node_id = frontier.pop()
            done_at = finish.get(node_id, 0.0) + self.node_cost_ms(node_id)
            longest = max(longest, done_at)
            for successor, _expensive in self._succ[node_id]:
                sid = successor.node_id
                finish[sid] = max(finish.get(sid, 0.0), done_at)
                in_deg[sid] -= 1
                if in_deg[sid] == 0:
                    frontier.append(sid)
        return longest

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def start(self, pool: ThreadPool, scope: str,
              completed: Optional[Set[int]] = None) -> ExecutorRun:
        """Begin executing the subgraph; returns the run handle.

        ``completed`` carries node ids finished by an earlier, aborted
        run of the same subgraph (possibly on another device version).
        """
        run = ExecutorRun(self, scope, completed)
        ready = run.initially_ready()
        if run.remaining == 0:
            run.done.succeed("completed")
            return run
        pool.submit_many(
            [self._make_task(run, pool, node) for node in ready])
        return run

    def abort(self, run: ExecutorRun, pool: ThreadPool):
        """Process generator: revoke queued work, wait in-flight drain.

        Matches Section 3.3 task suspension: nodes in ready/local queues
        are aborted; kernels already dispatched to the GPU finish.
        """
        if run.done.triggered:
            return
        run.aborted = True
        pool.cancel(lambda task: getattr(task, "run_ref", None) is run)
        if self.is_gpu:
            self.device.cancel_queued(self._context_name(run))
        if run.active > 0:
            run._quiesced = self.engine.event()
            yield run._quiesced
        if not run.done.triggered:
            run.done.succeed("aborted")

    # ------------------------------------------------------------------
    # Node execution
    # ------------------------------------------------------------------
    def _context_name(self, run: ExecutorRun) -> str:
        return f"{self.job}"

    def _make_task(self, run: ExecutorRun, pool: ThreadPool,
                   node: Node) -> Task:
        task = Task(
            name=self._task_names[node.node_id], job=self.job,
            body=lambda worker: self._node_body(run, pool, node, worker))
        task.run_ref = run
        return task

    def _node_body(self, run: ExecutorRun, pool: ThreadPool, node: Node,
                   worker: Worker):
        if run.aborted or node.node_id in run.completed:
            self._maybe_quiesce(run)
            return
        run.active += 1
        try:
            finished = yield from self._execute(run, pool, node, worker)
        except BaseException:
            run.active -= 1
            self._maybe_quiesce(run)
            raise
        if finished is _DEFERRED:
            # Kernel in flight; _on_kernel_done owns the rest. `active`
            # stays raised so abort() waits for the drain.
            return
        run.active -= 1
        self._maybe_quiesce(run)
        if not finished or run.aborted:
            return
        self._complete_node(run, pool, node, worker)

    def _complete_node(self, run: ExecutorRun, pool: ThreadPool,
                       node: Node, worker: Optional[Worker]) -> None:
        tracker = instrument.TRACKER
        if tracker is not None:
            # The run's completion/in-degree state is mutated from
            # worker processes and kernel callbacks alike; the engine's
            # cooperative scheduling is the implicit guard.
            tracker.access(f"run:{self.name}:{run.scope}", "write",
                           where=f"{self.name}/complete/{node.name}",
                           guard=f"lock:run:{self.name}:{run.scope}")
        run.completed.add(node.node_id)
        run.remaining -= 1
        if run.remaining == 0:
            if not run.done.triggered:
                run.done.succeed("completed")
            return
        self._schedule_successors(run, pool, node, worker)

    def _on_kernel_done(self, run: ExecutorRun, pool: ThreadPool,
                        node: Node, event: Event) -> None:
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.handoff_recv(("kernel", id(event)))
        run.active -= 1
        self._maybe_quiesce(run)
        if not event._ok:
            event.defused()   # cancelled by preemption
            return
        if run.aborted:
            return
        self._complete_node(run, pool, node, worker=None)

    def _schedule_successors(self, run: ExecutorRun, pool: ThreadPool,
                             node: Node, worker: Optional[Worker]) -> None:
        """Dispatch every successor made ready by one node's completion.

        In-degree decrements accumulate first, then the newly ready
        frontier goes out as (at most) two batches — inexpensive
        successors stacked onto the parent's worker, expensive ones
        through the pool — so the per-push bookkeeping is paid once per
        completion wave rather than once per node.
        """
        in_deg = run.in_deg
        completed = run.completed
        ready_local = None
        ready_pool = None
        for successor, expensive in self._succ[node.node_id]:
            sid = successor.node_id
            if sid in completed:
                continue
            remaining = in_deg[sid] - 1
            in_deg[sid] = remaining
            if remaining > 0:
                continue
            if worker is not None and not expensive:
                # Inexpensive successors run on the parent's worker
                # (Figure 1's local-queue fast path).
                if ready_local is None:
                    ready_local = [successor]
                else:
                    ready_local.append(successor)
            elif ready_pool is None:
                ready_pool = [successor]
            else:
                ready_pool.append(successor)
        if ready_local is not None:
            if len(ready_local) == 1:
                worker.push_front(self._make_task(run, pool, ready_local[0]))
            else:
                worker.push_front_batch(
                    [self._make_task(run, pool, n) for n in ready_local])
        if ready_pool is not None:
            if len(ready_pool) == 1:
                pool.submit(self._make_task(run, pool, ready_pool[0]))
            else:
                pool.submit_batch(
                    [self._make_task(run, pool, n) for n in ready_pool])

    def _is_expensive(self, node: Node) -> bool:
        return self._expensive.get(node.node_id, False)

    def _maybe_quiesce(self, run: ExecutorRun) -> None:
        if (run.aborted and run.active == 0
                and run._quiesced is not None
                and not run._quiesced.triggered):
            run._quiesced.succeed()

    def _jittered(self, value: float, node_id: int) -> float:
        if value <= 0:
            return value
        stream = self._node_jitter.get(node_id)
        if stream is None:
            return value
        return value * stream.next()

    def _execute(self, run: ExecutorRun, pool: ThreadPool, node: Node,
                 worker: Worker):
        """Device-specific node execution.

        Returns True when the node finished synchronously, False when it
        was aborted, or the ``_DEFERRED`` sentinel when a GPU kernel is
        in flight and completion arrives via callback.
        """
        op = node.op
        cpu = self.machine.cpu

        if op.kind is OpKind.SEND:
            # Deposit the tensor host-side; the receiver pays the copy
            # to wherever it lives *now* (supports migration).
            yield from cpu.execute(0.005, label=op.name, context=self.job)
            yield self.rendezvous.send(
                run.scope, op.attrs["channel"], op.attrs["nbytes"])
            return True

        if op.kind is OpKind.RECV:
            try:
                token = yield self.rendezvous.recv(
                    run.scope, op.attrs["channel"])
            except EventCancelled:
                return False
            nbytes = token if isinstance(token, int) \
                else op.attrs.get("nbytes", 1)
            if self.device.name != cpu.name:
                # Route-aware HtoD: one PCIe hop on a single machine,
                # host -> network -> remote PCIe when the executor
                # version lives on another node.
                route = self.machine.route(cpu.name, self.device.name)
                try:
                    yield route.transfer(nbytes, n_tensors=1,
                                         label=f"HtoD/{self.job}")
                except EventCancelled:
                    # The tensor was consumed but the node will not be
                    # marked completed: put it back so the resumed run's
                    # RECV finds it instead of blocking on an empty
                    # channel forever.
                    self.rendezvous.send(run.scope, op.attrs["channel"],
                                         token)
                    return False
            if run.aborted:
                self.rendezvous.send(run.scope, op.attrs["channel"],
                                     token)
                return False
            return True

        if self.is_gpu:
            return (yield from self._execute_gpu(run, pool, node))
        cost_ms = self._jittered(self._costs[node.node_id], node.node_id)
        if op.flops > 0 and not op.is_pipeline_op:
            # MKL intra-op parallelism: the cost model assumes
            # CPU_OP_PARALLELISM threads; a smaller pool (SwitchFlow's
            # temporary pool) runs the op proportionally slower — the
            # Section 3.3 isolation-vs-performance tradeoff.
            from repro.graph.ops import CPU_OP_PARALLELISM

            threads = max(1, min(CPU_OP_PARALLELISM,
                                 len(worker.pool.workers)))
            cost_ms *= CPU_OP_PARALLELISM / threads
        yield from cpu.execute(cost_ms, label=node.name, context=self.job,
                               data=op.is_pipeline_op)
        return True

    def _execute_gpu(self, run: ExecutorRun, pool: ThreadPool, node: Node):
        cpu = self.machine.cpu
        # Host-side dispatch: dependency resolution + kernel setup.
        dispatch_ms = (RECURRENT_DISPATCH_MS
                       if node.op.attrs.get("recurrent")
                       else EXECUTOR_DISPATCH_MS)
        yield from cpu.execute(dispatch_ms,
                               label=f"dispatch/{node.name}",
                               context=self.job)
        if run.aborted:
            return False
        cost = self._costs[node.node_id]
        work_ms = self._jittered(cost.work_ms, node.node_id)
        injector = self.machine.faults
        if injector is not None:
            fault = injector.kernel_fault(self.job, self.device.name)
            if fault is not None:
                stall_ms, factor = fault
                work_ms = work_ms * factor + stall_ms
        kernel = KernelLaunch(
            name=node.name,
            context=self._context_name(run),
            work_ms=work_ms,
            occupancy=cost.occupancy,
            stream=0,
        )
        # Asynchronous launch: the worker is released immediately; node
        # completion (and successor scheduling) rides the kernel's
        # completion callback, as in TF's executor.
        done = self.device.launch(kernel)
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.handoff_send(("kernel", id(done)))
        done.callbacks.append(
            lambda event: self._on_kernel_done(run, pool, node, event))
        return _DEFERRED
