"""Rendezvous: named channels carrying tensors between executors.

Mirrors TF's rendezvous abstraction: a send node produces a tensor under
a string key; the matching recv node consumes it. Keys are scoped by
(job, iteration) so a prefetched CPU stage for iteration *i+1* never
collides with the GPU stage still consuming iteration *i*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.sim import instrument
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Rendezvous:
    """A namespace of single-producer single-consumer tensor channels."""

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._channels: Dict[Tuple[str, str], Store] = {}

    def _channel(self, scope: str, key: str) -> Store:
        full_key = (scope, key)
        if full_key not in self._channels:
            self._channels[full_key] = Store(self.engine)
        return self._channels[full_key]

    def send(self, scope: str, key: str, tensor: object) -> Event:
        """Deposit ``tensor`` under (scope, key); returns put event."""
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.on_channel_send(self, scope, key)
        return self._channel(scope, key).put(tensor)

    def recv(self, scope: str, key: str) -> Event:
        """Event firing with the tensor once the producer has sent it."""
        event = self._channel(scope, key).get()
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.on_channel_recv(self, scope, key, event)
        return event

    def drop_scope(self, scope: str) -> int:
        """Free all channels of a finished iteration; returns count."""
        stale = [k for k in self._channels if k[0] == scope]
        for key in stale:
            del self._channels[key]
        return len(stale)

    def pending_channels(self) -> int:
        return sum(1 for store in self._channels.values() if len(store))
