"""Per-device persistent state tracking (TF resource manager analogue).

Tracks where each job's model weights (and optimizer slots, for
training) currently live, allocates/frees the device memory behind
them, and implements the migration transfer SwitchFlow relies on:
asynchronous copy to the destination device, source freed only after
the copy lands (Section 3.3 / Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.faults.recovery import MigrationFailedError, backoff_ms
from repro.hw.memory import AllocationRecord
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.machine import Machine
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.runlog import RunLog


@dataclass
class JobState:
    """Where a job's persistent variables live right now."""

    job: str
    nbytes: int
    n_tensors: int
    device: Optional[str] = None
    allocation: Optional[AllocationRecord] = None


class ResourceManager:
    """Tracks persistent variables for every job on a machine."""

    def __init__(self, machine: "Machine",
                 metrics: Optional["MetricsRegistry"] = None,
                 runlog: Optional["RunLog"] = None) -> None:
        self.machine = machine
        self.engine = machine.engine
        self.metrics = metrics
        self.runlog = runlog
        self._states: Dict[str, JobState] = {}
        self.transfers_started = 0
        self.transfer_ms_total = 0.0

    # ------------------------------------------------------------------
    def register_job(self, job: str, state_bytes: int,
                     n_tensors: int) -> JobState:
        """Declare a job's persistent footprint (not yet materialized)."""
        if job in self._states:
            raise ValueError(f"job {job!r} already registered")
        state = JobState(job=job, nbytes=int(state_bytes),
                         n_tensors=int(n_tensors))
        self._states[job] = state
        return state

    def state_of(self, job: str) -> JobState:
        return self._states[job]

    def release_job(self, job: str) -> None:
        state = self._states.pop(job, None)
        if state is not None and state.allocation is not None:
            self.machine.device(state.device).memory.free(state.allocation)

    # ------------------------------------------------------------------
    def ensure_state(self, job: str, device_name: str) -> Event:
        """Event firing once the job's variables are resident on device.

        Three cases: already there (fires immediately); nowhere yet
        (fresh allocation — model initialization); elsewhere (migration:
        allocate at destination, asynchronous copy over the link, free
        the source afterwards — the Table 1 path).
        """
        state = self._states[job]
        done = self.engine.event()
        if state.device == device_name:
            done.succeed("resident")
            return done
        dst = self.machine.device(device_name)
        if state.device is None:
            state.allocation = dst.memory.allocate(
                job, "weights", state.nbytes)
            state.device = device_name
            done.succeed("initialized")
            return done
        self.engine.process(
            self._migrate(state, device_name, done),
            name=f"state-transfer/{job}")
        return done

    def _migrate(self, state: JobState, device_name: str, done: Event):
        src_name = state.device
        src = self.machine.device(src_name)
        dst = self.machine.device(device_name)
        old_allocation = state.allocation
        new_allocation = dst.memory.allocate(
            state.job, "weights", state.nbytes)
        # Transfers traverse the topology route — one hop on a single
        # machine, src-PCIe -> network -> dst-PCIe across nodes.
        route = self.machine.route(src_name, device_name)
        self.transfers_started += 1
        started = self.engine.now
        if self.runlog is not None:
            fields = dict(job=state.job, src=src_name, dst=device_name,
                          nbytes=state.nbytes, n_tensors=state.n_tensors)
            if route.hops > 1:
                # Multi-hop only: single-node records stay byte-for-byte
                # identical to the pre-topology schema.
                fields["route"] = route.describe()
                fields["hops"] = route.hops
            self.runlog.emit("state_transfer_start", **fields)
        # Fault injection: each transfer attempt may be failed by the
        # plan; retry with capped exponential backoff, and surface a
        # MigrationFailedError through ``done`` once retries run out so
        # the policy can re-admit the victim.
        injector = self.machine.faults
        attempt = 0
        first_failure: Optional[float] = None
        while (injector is not None
               and injector.transfer_should_fail(
                   state.job, src_name, device_name)):
            if first_failure is None:
                first_failure = self.engine.now
            # A failed copy still burns link time before the error
            # surfaces: charge half the analytic route cost.
            yield self.engine.timeout(0.5 * route.cost_ms(
                state.nbytes, state.n_tensors))
            recovery = injector.recovery
            if attempt >= recovery.transfer_retries:
                dst.memory.free(new_allocation)
                if self.metrics is not None:
                    self.metrics.counter(
                        "rm.migrations_failed_total",
                        "state migrations abandoned after retries",
                        job=state.job, dst=device_name).inc()
                if self.runlog is not None:
                    self.runlog.emit(
                        "migration_failed", job=state.job,
                        src=src_name, dst=device_name,
                        attempts=attempt + 1,
                        elapsed_ms=self.engine.now - started)
                done.fail(MigrationFailedError(
                    state.job, device_name, attempt + 1,
                    elapsed_ms=self.engine.now - started))
                return
            yield self.engine.timeout(backoff_ms(
                attempt, recovery.backoff_base_ms,
                recovery.backoff_cap_ms))
            attempt += 1
        yield route.transfer(state.nbytes, n_tensors=state.n_tensors,
                             label=f"state/{state.job}")
        if first_failure is not None:
            injector.record_recovery(
                "transfer_fail", self.engine.now - first_failure,
                job=state.job, dst=device_name)
        elapsed = self.engine.now - started
        self.transfer_ms_total += elapsed
        if self.metrics is not None:
            self.metrics.counter(
                "rm.transfers_total", "state migrations completed",
                job=state.job).inc()
            self.metrics.counter(
                "rm.transfer_bytes_total", "state bytes migrated",
                job=state.job).inc(state.nbytes)
            self.metrics.histogram(
                "rm.transfer_ms", "state migration latency (Table 1)",
                job=state.job, src=src_name,
                dst=device_name).observe(elapsed)
        if self.runlog is not None:
            self.runlog.emit("state_transfer_done", job=state.job,
                             src=src_name, dst=device_name,
                             transfer_ms=elapsed)
        # Source copy retained until the transfer lands (the paper's
        # deliberate memory-for-latency tradeoff), then released.
        if old_allocation is not None:
            src.memory.free(old_allocation)
        state.allocation = new_allocation
        state.device = device_name
        done.succeed("migrated")
