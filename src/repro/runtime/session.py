"""Session: one job's executable computation graph on a machine.

Like a TF session, it owns the placed/partitioned graph and the
executors that run it. Unlike vanilla TF — and exactly like SwitchFlow —
it eagerly builds **one executor version per device** for the compute
subgraph, so the scheduler can migrate the job between devices at
preemption time (Section 3.2, "multiple versions of each subgraph").

A session run is split in two stages the way the paper's pipeline is:

* **CPU stage** — the input pipeline subgraph (decode/resize/augment),
  always on the host, freely overlappable with anything.
* **GPU stage** — the compute subgraph on whichever device version the
  scheduling policy currently assigns, beginning with the HtoD input
  transfer (the recv node pays the copy to wherever the job lives now).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.graph.partition import Partition, partition_graph
from repro.graph.placement import place_graph, validate_placement
from repro.graph.ops import OpKind
from repro.models.base import ModelSpec
from repro.runtime.executor import Executor, ExecutorRun
from repro.runtime.rendezvous import Rendezvous
from repro.runtime.resource_manager import ResourceManager
from repro.runtime.threadpool import ThreadPool

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.machine import Machine

# Virtual placement tag for the compute subgraph; resolved to a physical
# device when an executor version is selected.
ACCELERATOR_TAG = "_accelerator_"

_session_ids = itertools.count(1)


class Session:
    """One model's runnable graph, with per-device executor versions."""

    def __init__(self, machine: "Machine", model: ModelSpec, batch: int,
                 training: bool, job: str, rendezvous: Rendezvous,
                 resources: ResourceManager, rng=None,
                 include_pipeline: bool = True,
                 data_workers: int = 32) -> None:
        self.machine = machine
        self.model = model
        self.batch = batch
        self.training = training
        self.job = job
        self.rendezvous = rendezvous
        self.resources = resources
        self.engine = machine.engine
        self.session_id = next(_session_ids)
        self.iterations_completed = 0

        graph = model.build_graph(batch, training,
                                  include_pipeline=include_pipeline,
                                  name=f"{job}/graph",
                                  data_workers=data_workers)
        place_graph(graph, machine.cpu.name, ACCELERATOR_TAG)
        validate_placement(graph)
        self.graph = graph
        self.partition: Partition = partition_graph(graph)

        cpu_sub = self.partition.subgraph(machine.cpu.name)
        self.cpu_executor = Executor(
            name=f"{job}/cpu", job=job, subgraph=cpu_sub,
            device=machine.cpu, machine=machine,
            rendezvous=rendezvous, rng=rng)

        compute_sub = self.partition.subgraph(ACCELERATOR_TAG)
        self.compute_subgraph = compute_sub
        # Multi-version executors: one per device on the machine (every
        # GPU plus the MKL/CPU fallback).
        self.versions: Dict[str, Executor] = {
            device.name: Executor(
                name=f"{job}/compute@{device.name}", job=job,
                subgraph=compute_sub, device=device, machine=machine,
                rendezvous=rendezvous, rng=rng)
            for device in machine.devices}

        self.recv_node_ids: Set[int] = {
            node.node_id for node in compute_sub
            if node.kind is OpKind.RECV}
        self.current_gpu_run: Optional[ExecutorRun] = None

        # Persistent footprint: weights (+ optimizer slot when training).
        self.state_bytes = (model.stateful_bytes if training
                            else model.weight_bytes)
        if job not in resources._states:
            resources.register_job(job, self.state_bytes,
                                   model.state_tensor_count)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    @property
    def transient_bytes(self) -> int:
        """Per-run device memory beyond the persistent variables."""
        if self.training:
            return (self.model.training_memory_bytes(self.batch)
                    - self.model.stateful_bytes)
        return (self.model.inference_memory_bytes(self.batch)
                - self.model.weight_bytes)

    @property
    def peak_memory_bytes(self) -> int:
        return self.state_bytes + self.transient_bytes

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------
    def scope(self, iteration: int) -> str:
        return f"{self.job}/it{iteration}"

    def run_cpu_stage(self, pool: ThreadPool, iteration: int):
        """Process generator: run the input pipeline for ``iteration``."""
        run = self.cpu_executor.start(pool, self.scope(iteration))
        outcome = yield run.done
        return outcome

    def start_gpu_stage(self, pool: ThreadPool, device_name: str,
                        iteration: int,
                        completed: Optional[Set[int]] = None,
                        preallocated: bool = False) -> ExecutorRun:
        """Kick off the compute subgraph on ``device_name``.

        Allocates the transient memory for the run (unless the caller
        reserved it up front, as MPS-style processes do); the caller
        yields ``run.done`` and must call :meth:`finish_gpu_stage`.
        Raises :class:`~repro.hw.memory.OutOfMemoryError` when the
        transient allocation does not fit — the paper's OOM crash.
        """
        executor = self.versions[device_name]
        device = self.machine.device(device_name)
        run = executor.start(pool, self.scope(iteration),
                             completed=completed)
        if not preallocated:
            try:
                run.transient_allocation = device.memory.allocate(
                    self.job, "transient", self.transient_bytes)
            except Exception:
                # Revoke the work we just queued before propagating.
                self.engine.process(executor.abort(run, pool))
                raise
        else:
            run.transient_allocation = None
        run.device_name = device_name
        run.pool = pool
        self.current_gpu_run = run
        return run

    def finish_gpu_stage(self, run: ExecutorRun, iteration: int) -> None:
        """Release per-run memory and scope bookkeeping."""
        allocation = getattr(run, "transient_allocation", None)
        if allocation is not None:
            self.machine.device(run.device_name).memory.free(allocation)
        if run.status == "completed":
            self.rendezvous.drop_scope(self.scope(iteration))
            self.iterations_completed += 1
        if self.current_gpu_run is run:
            self.current_gpu_run = None

    def abort_gpu_stage(self, pool: Optional[ThreadPool] = None):
        """Process generator: abort the in-flight compute run, if any.

        Returns once queued nodes are revoked and in-flight kernels have
        drained — the critical-path portion of preemption latency.
        """
        run = self.current_gpu_run
        if run is None or run.done.triggered:
            return
        executor = self.versions[run.device_name]
        yield from executor.abort(run, pool if pool is not None else run.pool)

    def release(self) -> None:
        """Free persistent state (job finished or crashed)."""
        self.resources.release_job(self.job)
