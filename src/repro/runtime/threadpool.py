"""Worker thread pools with local queues and work stealing.

Implements the structure of the paper's Figure 1: tasks enter through a
ready queue, are dispatched to per-worker local queues, idle workers
steal from busy ones, and workers sleep when there is nothing to do.
SwitchFlow instantiates one *global* pool shared by all sessions plus a
small *temporary* pool that isolates preempted jobs (Section 3.3).

Workers burn host CPU by checking cores out of the machine's
:class:`~repro.hw.cpu.CpuDevice`, so two pools share the physical cores
— matching the paper's "total workers across pools equals core count"
invariant at the resource level.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Generator, List, Optional

from repro.sim import instrument
from repro.sim.errors import Interrupted
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cpu import CpuDevice
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Engine
    from repro.sim.rng import RngRegistry

_task_ids = itertools.count(1)


class Task:
    """A unit of executor work (usually: execute one graph node)."""

    __slots__ = ("name", "job", "body", "cancelled", "task_id", "run_ref")

    def __init__(self, name: str, job: str,
                 body: Callable[["Worker"], Generator]) -> None:
        self.name = name
        self.job = job
        self.body = body
        self.cancelled = False
        self.task_id = next(_task_ids)

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"<Task #{self.task_id} {self.name!r} job={self.job!r}{flag}>"


class Worker:
    """One pool worker: local FIFO queue plus a sleep/wake event."""

    def __init__(self, pool: "ThreadPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.local: Deque[Task] = deque()
        self._wakeup: Optional[Event] = None
        self.tasks_executed = 0
        self.steals = 0
        self.process = pool.engine.process(
            self._loop(), name=f"{pool.name}/worker{index}")

    @property
    def idle(self) -> bool:
        return self._wakeup is not None

    def push_front(self, task: Task) -> None:
        """Queue a task to run next (inexpensive-successor fast path)."""
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.on_task_queued(self.pool, task)
        self.local.appendleft(task)
        pool = self.pool
        pool._queued += 1
        pool._observe_queue_depth()
        self._wake()

    def push_front_batch(self, tasks: List[Task]) -> None:
        """Queue several tasks to run next, in order.

        Equivalent to ``push_front`` per task in sequence (the first task
        of ``tasks`` ends up running last among them — the same LIFO
        stacking the per-task path produces) but pays the queue-depth
        observation and the wakeup check once per batch.
        """
        tracker = instrument.TRACKER
        if tracker is not None:
            for task in tasks:
                tracker.on_task_queued(self.pool, task)
        self.local.extendleft(tasks)
        pool = self.pool
        pool._queued += len(tasks)
        pool._observe_queue_depth()
        self._wake()

    def push_back(self, task: Task) -> None:
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.on_task_queued(self.pool, task)
        self.local.append(task)
        pool = self.pool
        pool._queued += 1
        pool._observe_queue_depth()
        self._wake()

    def _wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _loop(self) -> Generator:
        engine = self.pool.engine
        while True:
            task = self._take_local() or self.pool._steal(self)
            if task is None:
                self._wakeup = engine.event()
                try:
                    yield self._wakeup
                except Interrupted:
                    return  # pool shutdown
                finally:
                    self._wakeup = None
                continue
            if task.cancelled:
                continue
            tracker = instrument.TRACKER
            if tracker is not None:
                tracker.on_task_start(self.pool, task)
            self.tasks_executed += 1
            started = engine.now
            yield from task.body(self)
            self.pool._observe_task(engine.now - started)

    def _take_local(self) -> Optional[Task]:
        pool = self.pool
        local = self.local
        while local:
            task = local.popleft()
            pool._queued -= 1
            if not task.cancelled:
                pool._observe_queue_depth()
                return task
        return None


class ThreadPool:
    """A fixed set of workers executing submitted tasks."""

    def __init__(self, engine: "Engine", cpu: "CpuDevice", n_workers: int,
                 name: str = "pool",
                 rng: Optional["RngRegistry"] = None,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        if n_workers <= 0:
            raise ValueError("a pool needs at least one worker")
        self.engine = engine
        self.cpu = cpu
        self.name = name
        self.metrics = metrics
        self._rng = rng.stream(f"pool:{name}") if rng is not None else None
        self.workers: List[Worker] = [
            Worker(self, index) for index in range(n_workers)]
        self._submit_cursor = 0
        # Incremental queued-entry count (cancelled entries included,
        # matching the `queued_tasks` sum) so the depth gauge does not
        # pay an O(workers) scan per push/pop.
        self._queued = 0
        # Instruments are resolved once here: a labelled registry lookup
        # per queue operation dominated dispatch profiles.
        if metrics is not None:
            metrics.gauge("pool.workers", "workers in the pool",
                          pool=name).set(n_workers)
            self._g_depth = metrics.gauge(
                "pool.queue_depth", "queued tasks", pool=name)
            self._c_tasks = metrics.counter(
                "pool.tasks_total", "tasks executed", pool=name)
            self._c_busy = metrics.counter(
                "pool.busy_ms_total", "worker-ms spent executing tasks",
                pool=name)
            self._c_steals = metrics.counter(
                "pool.steals_total", "work steals", pool=name)
        else:
            self._g_depth = None
            self._c_tasks = None
            self._c_busy = None
            self._c_steals = None

    # ------------------------------------------------------------------
    # Observability hooks (no-ops without a registry)
    # ------------------------------------------------------------------
    def _observe_task(self, busy_ms: float) -> None:
        if self._c_tasks is not None:
            self._c_tasks.inc()
            self._c_busy.inc(busy_ms)

    def _observe_queue_depth(self) -> None:
        if self._g_depth is not None:
            self._g_depth.set(self._queued)

    def _observe_steal(self) -> None:
        if self._c_steals is not None:
            self._c_steals.inc()

    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Dispatch a task: prefer an idle worker, else shortest queue."""
        for worker in self.workers:
            if worker.idle and not worker.local:
                worker.push_back(task)
                return
        target = min(self.workers, key=lambda w: len(w.local))
        target.push_back(task)

    def submit_batch(self, tasks: List[Task]) -> None:
        """Dispatch a completion wave's ready frontier in one call.

        Placement is bit-identical to calling :meth:`submit` once per
        task in order (each placement decision sees the queues left by
        the previous one); only the bookkeeping — queue-depth gauge and
        wakeup checks — is paid per batch instead of per task.
        """
        workers = self.workers
        tracker = instrument.TRACKER
        for task in tasks:
            if tracker is not None:
                tracker.on_task_queued(self, task)
            target = None
            for worker in workers:
                if worker._wakeup is not None and not worker.local:
                    target = worker
                    break
            if target is None:
                target = min(workers, key=lambda w: len(w.local))
            target.local.append(task)
            target._wake()
        self._queued += len(tasks)
        self._observe_queue_depth()

    def submit_many(self, tasks: List[Task]) -> None:
        """Breadth-first initial dispatch: round-robin across workers."""
        for task in tasks:
            worker = self.workers[self._submit_cursor % len(self.workers)]
            self._submit_cursor += 1
            worker.push_back(task)

    def cancel(self, predicate: Callable[[Task], bool]) -> int:
        """Mark matching queued tasks cancelled; running tasks drain.

        This is the paper's "abort the nodes queued in the ready queue
        and thread local queues"; it cannot stop a task a worker is
        already executing.
        """
        cancelled = 0
        for worker in self.workers:
            for task in worker.local:
                if not task.cancelled and predicate(task):
                    task.cancelled = True
                    cancelled += 1
        return cancelled

    def _steal(self, thief: Worker) -> Optional[Task]:
        """Steal one task from the back of another worker's queue."""
        candidates = [w for w in self.workers
                      if w is not thief and len(w.local) > 0]
        if not candidates:
            return None
        if self._rng is not None:
            victim = self._rng.choice(candidates)
        else:
            victim = max(candidates, key=lambda w: len(w.local))
        while victim.local:
            task = victim.local.pop()
            self._queued -= 1
            if not task.cancelled:
                thief.steals += 1
                self._observe_steal()
                self._observe_queue_depth()
                return task
        return None

    # ------------------------------------------------------------------
    @property
    def queued_tasks(self) -> int:
        return sum(len(w.local) for w in self.workers)

    def shutdown(self) -> None:
        """Interrupt sleeping workers (end-of-simulation cleanup)."""
        for worker in self.workers:
            if worker.idle and worker.process.is_alive:
                worker.process.interrupt("shutdown")

    def __repr__(self) -> str:
        return (f"<ThreadPool {self.name!r} workers={len(self.workers)} "
                f"queued={self.queued_tasks}>")
