"""TF-like static-graph runtime: sessions, executors, thread pools."""

from repro.runtime.executor import (
    EXECUTOR_DISPATCH_MS,
    Executor,
    ExecutorRun,
)
from repro.runtime.rendezvous import Rendezvous
from repro.runtime.resource_manager import JobState, ResourceManager
from repro.runtime.session import ACCELERATOR_TAG, Session
from repro.runtime.threadpool import Task, ThreadPool, Worker

__all__ = [
    "ACCELERATOR_TAG",
    "EXECUTOR_DISPATCH_MS",
    "Executor",
    "ExecutorRun",
    "JobState",
    "Rendezvous",
    "ResourceManager",
    "Session",
    "Task",
    "ThreadPool",
    "Worker",
]
