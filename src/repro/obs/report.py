"""Run-report CLI: execute a registered workload, summarize the run.

Usage::

    python -m repro.obs.report --list
    python -m repro.obs.report --workload fig2
    python -m repro.obs.report --workload preemption \\
        --chrome-trace /tmp/trace.json --jsonl /tmp/run.jsonl

The summary is computed *only* from the run's shared observability
surfaces — the metrics registry, the run log, and the tracer — never
from experiment-module internals, so the same report works for any
workload that executes on a :class:`~repro.core.context.RunContext`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.obs.chrome_trace import write_chrome_trace
from repro.sim.trace import render_ascii_timeline

MiB = 1024.0 ** 2


# ---------------------------------------------------------------------------
# Workload registry
# ---------------------------------------------------------------------------
def _workload_fig2(seed: int, iterations: int):
    """Figure 2 scenario: two ResNet50 trainers share one V100 (mt-TF)."""
    from repro.baselines import MultiThreadedTF
    from repro.core import JobHandle, make_context
    from repro.hw import v100_server
    from repro.models import get_model
    from repro.workloads import JobSpec, run_colocation

    ctx = make_context(v100_server, 1, seed=seed)
    gpu = ctx.machine.gpu(0)
    model = get_model("ResNet50")
    jobs = [JobHandle(name=f"resnet50-{i}", model=model, batch=16,
                      training=True, preferred_device=gpu.name)
            for i in range(2)]
    run_colocation(ctx, MultiThreadedTF, [
        JobSpec(job=job, iterations=iterations) for job in jobs])
    return ctx


def _workload_fig2_switchflow(seed: int, iterations: int):
    """The Figure 2 pair, but gated by SwitchFlow (serializes cleanly)."""
    from repro.core import JobHandle, SwitchFlowPolicy, make_context
    from repro.hw import v100_server
    from repro.models import get_model
    from repro.workloads import JobSpec, run_colocation

    ctx = make_context(v100_server, 1, seed=seed)
    gpu = ctx.machine.gpu(0)
    model = get_model("ResNet50")
    jobs = [JobHandle(name=f"resnet50-{i}", model=model, batch=16,
                      training=True, preferred_device=gpu.name)
            for i in range(2)]
    run_colocation(ctx, SwitchFlowPolicy, [
        JobSpec(job=job, iterations=iterations) for job in jobs])
    return ctx


def _workload_preemption(seed: int, iterations: int):
    """A high-priority arrival preempts a low-priority trainer."""
    from repro.core import (PRIORITY_HIGH, PRIORITY_LOW, JobHandle,
                            SwitchFlowPolicy, make_context)
    from repro.hw import two_gpu_server
    from repro.models import get_model
    from repro.workloads import JobSpec, run_colocation

    ctx = make_context(two_gpu_server, seed=seed)
    fast = max(ctx.machine.gpus, key=lambda g: g.spec.peak_fp32_tflops)
    victim = JobHandle(name="victim", model=get_model("VGG16"), batch=32,
                       training=True, priority=PRIORITY_LOW,
                       preferred_device=fast.name)
    preemptor = JobHandle(name="preemptor", model=get_model("ResNet50"),
                          batch=32, training=True, priority=PRIORITY_HIGH,
                          preferred_device=fast.name)
    run_colocation(ctx, SwitchFlowPolicy, [
        JobSpec(job=victim, iterations=100_000, background=True),
        JobSpec(job=preemptor, iterations=max(iterations, 4),
                start_delay_ms=700.0),
    ])
    return ctx


def _workload_serve(seed: int, iterations: int):
    """Background trainer + latency-sensitive inference, SwitchFlow."""
    from repro.core import (PRIORITY_HIGH, PRIORITY_LOW, JobHandle,
                            SwitchFlowPolicy, make_context)
    from repro.hw import v100_server
    from repro.models import get_model
    from repro.workloads import JobSpec, run_colocation

    ctx = make_context(v100_server, 2, seed=seed)
    gpu = ctx.machine.gpu(0)
    train = JobHandle(name="train", model=get_model("VGG16"), batch=32,
                      training=True, priority=PRIORITY_LOW,
                      preferred_device=gpu.name)
    serve = JobHandle(name="serve", model=get_model("ResNet50"), batch=1,
                      training=False, priority=PRIORITY_HIGH,
                      preferred_device=gpu.name)
    run_colocation(ctx, SwitchFlowPolicy, [
        JobSpec(job=train, iterations=100_000, background=True),
        JobSpec(job=serve, iterations=max(iterations, 8),
                start_delay_ms=400.0, request_interval_ms=60.0),
    ])
    return ctx


def _workload_serving(seed: int, iterations: int):
    """Open-loop serving front-end (repro.serving) over a trainer.

    ``iterations`` scales the offered-load window (in hundreds of ms),
    keeping the CLI knob meaningful for a workload driven by arrival
    rate rather than iteration count.
    """
    from repro.core import (PRIORITY_HIGH, PRIORITY_LOW, JobHandle,
                            SwitchFlowPolicy, make_context)
    from repro.hw import v100_server
    from repro.models import get_model
    from repro.serving import (SLOTarget, ServedModelSpec, make_trace,
                               run_serving)
    from repro.workloads import JobSpec

    ctx = make_context(v100_server, 2, seed=seed)
    gpu = ctx.machine.gpu(0)
    horizon_ms = max(iterations, 8) * 100.0
    trace = make_trace(ctx.rng, "serve", "poisson", 30.0, horizon_ms)
    served = ServedModelSpec(
        job=JobHandle(name="serve", model=get_model("MobileNetV2"),
                      batch=8, training=False, priority=PRIORITY_HIGH,
                      preferred_device=gpu.name),
        trace=trace, max_batch=8, batch_timeout_ms=5.0,
        queue_capacity=64, shed_policy="drop-newest",
        slo=SLOTarget(p99_ms=250.0))
    background = JobSpec(
        job=JobHandle(name="train", model=get_model("ResNet50"),
                      batch=32, training=True, priority=PRIORITY_LOW,
                      preferred_device=gpu.name),
        iterations=100_000, background=True)
    run_serving(ctx, SwitchFlowPolicy, [served], [background])
    return ctx


#: name -> callable(seed, iterations) -> RunContext
WORKLOADS: Dict[str, Callable] = {
    "fig2": _workload_fig2,
    "fig2-switchflow": _workload_fig2_switchflow,
    "preemption": _workload_preemption,
    "serve": _workload_serve,
    "serving": _workload_serving,
}


def register_workload(name: str, factory: Callable) -> None:
    """Add a workload (``factory(seed, iterations) -> RunContext``)."""
    WORKLOADS[name] = factory


# ---------------------------------------------------------------------------
# Summary rendering (reads ONLY ctx.metrics / ctx.runlog / ctx.tracer)
# ---------------------------------------------------------------------------
def _histogram_line(metrics, name: str) -> Optional[str]:
    family = metrics.get(name)
    if family is None:
        return None
    count = int(family.total())
    if count == 0:
        return None
    return (f"p50={family.quantile(50):.3f} p95={family.quantile(95):.3f} "
            f"p99={family.quantile(99):.3f} ms  (n={count})")


def run_summary(ctx, width: int = 100, window_ms: float = 400.0) -> str:
    """Render the run report for any finished RunContext."""
    metrics = ctx.metrics
    lines: List[str] = []
    lines.append(f"simulated time: {ctx.now:.1f} ms")

    # Scheduler ---------------------------------------------------------
    lines.append("")
    lines.append("scheduler")
    lines.append(f"  preemptions:  "
                 f"{int(metrics.value('sched.preemptions'))}")
    lines.append(f"  migrations:   "
                 f"{int(metrics.value('sched.migrations'))}")
    gate_wait = _histogram_line(metrics, "sched.gate_wait_ms")
    if gate_wait is not None:
        lines.append(f"  gate-wait     {gate_wait}")
    else:
        # Ungated policy (e.g. multi-threaded TF): report the generic
        # compute-acquire wait so the field is always present.
        acquire = _histogram_line(metrics, "sched.acquire_wait_ms") \
            or "p50=0.000 p95=0.000 p99=0.000 ms  (n=0)"
        lines.append(f"  gate-wait     {acquire} [no device gates; "
                     "compute-acquire wait]")
    abort = _histogram_line(metrics, "sched.abort_ms")
    if abort is not None:
        lines.append(f"  abort-drain   {abort}")

    # Per-GPU -----------------------------------------------------------
    lines.append("")
    lines.append("per-GPU")
    for gpu in ctx.machine.gpus:
        busy_frac = metrics.value("gpu.busy_fraction", device=gpu.name)
        kernels = int(metrics.value("gpu.kernels_total", device=gpu.name))
        switches = int(metrics.value("gpu.context_switches_total",
                                     device=gpu.name))
        high_water = metrics.value("mem.high_water_bytes",
                                   device=gpu.name)
        ooms = int(metrics.value("mem.oom_total", device=gpu.name))
        lines.append(
            f"  {gpu.name}: busy {100.0 * busy_frac:.1f}%  "
            f"kernels {kernels}  ctx-switches {switches}  "
            f"mem high-water {high_water / MiB:.0f} MiB"
            + (f"  OOMs {ooms}" if ooms else ""))

    # State transfers ---------------------------------------------------
    transfers = int(metrics.value("rm.transfers_total"))
    if transfers:
        lines.append("")
        lines.append("state transfer")
        bytes_moved = metrics.value("rm.transfer_bytes_total")
        lines.append(f"  transfers: {transfers}  "
                     f"bytes: {bytes_moved / MiB:.1f} MiB")
        latency = _histogram_line(metrics, "rm.transfer_ms")
        if latency is not None:
            lines.append(f"  latency    {latency}")

    # Thread pools ------------------------------------------------------
    pools = metrics.get("pool.tasks_total")
    if pools is not None and pools.series():
        lines.append("")
        lines.append("thread pools")
        for series in sorted(pools.series(),
                             key=lambda s: s.labels.get("pool", "")):
            pool = series.labels.get("pool", "?")
            busy_ms = metrics.value("pool.busy_ms_total", pool=pool)
            workers = metrics.value("pool.workers", pool=pool)
            elapsed = max(ctx.now, 1e-9) * max(workers, 1.0)
            depth = metrics.get("pool.queue_depth")
            max_depth = 0.0
            if depth is not None:
                child = depth.child(pool=pool)
                max_depth = child.max_value
            steals = int(metrics.value("pool.steals_total", pool=pool))
            lines.append(
                f"  {pool}: tasks {int(series.value)}  "
                f"utilization {100.0 * busy_ms / elapsed:.1f}%  "
                f"max queue depth {int(max_depth)}  steals {steals}")

    # Jobs --------------------------------------------------------------
    iteration = metrics.get("job.iteration_ms")
    if iteration is not None and iteration.series():
        lines.append("")
        lines.append("jobs")
        for series in sorted(iteration.series(),
                             key=lambda s: s.labels.get("job", "")):
            s = series.summary()
            lines.append(
                f"  {series.labels.get('job', '?')}: "
                f"iterations {s['count']}  mean {s['mean']:.1f} ms  "
                f"p95 {s['p95']:.1f} ms")

    # Serving -----------------------------------------------------------
    arrived = metrics.get("serving.requests_arrived_total")
    if arrived is not None and arrived.series():
        lines.append("")
        lines.append("serving")
        for series in sorted(arrived.series(),
                             key=lambda s: s.labels.get("job", "")):
            job = series.labels.get("job", "?")
            completed = int(metrics.value(
                "serving.requests_completed_total", job=job))
            goodput = int(metrics.value("serving.goodput_total",
                                        job=job))
            shed = int(series.value) - completed
            lines.append(
                f"  {job}: arrived {int(series.value)}  "
                f"completed {completed}  shed {shed}  "
                f"SLO-met {goodput}")
            latency = _histogram_line(metrics,
                                      "serving.request_latency_ms")
            if latency is not None:
                lines.append(f"    latency     {latency}")
            queue_wait = _histogram_line(metrics,
                                         "serving.queue_wait_ms")
            if queue_wait is not None:
                lines.append(f"    queue-wait  {queue_wait}")
            batch_size = metrics.get("serving.batch_size")
            if batch_size is not None and batch_size.total() > 0:
                sizes = batch_size.all_samples()
                depth = metrics.get("serving.queue_depth")
                max_depth = depth.child(job=job).max_value \
                    if depth is not None else 0.0
                lines.append(
                    f"    batches     {len(sizes)}  "
                    f"mean size {sum(sizes) / len(sizes):.1f}  "
                    f"max queue depth {int(max_depth)}")

    # Time series -------------------------------------------------------
    sampler = getattr(ctx, "timeseries", None)
    if sampler is not None and sampler.windows:
        lines.append("")
        lines.append("time series")
        for row in sampler.render(last=10).splitlines():
            lines.append(f"  {row}")

    # Timeline ----------------------------------------------------------
    gpu_lanes = [gpu.lane for gpu in ctx.machine.gpus]
    spans = [s for s in ctx.tracer.spans if s.lane in gpu_lanes]
    if spans:
        end = ctx.now
        start = max(0.0, end - window_ms)
        lines.append("")
        lines.append(f"GPU timeline (last {end - start:.0f} ms)")
        lines.append(render_ascii_timeline(
            [s for s in spans if s.end > start],
            width=width, start=start, end=end))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Run a registered workload and print its run report.")
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        help="workload to execute")
    parser.add_argument("--list", action="store_true",
                        help="list registered workloads")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--width", type=int, default=100,
                        help="ASCII timeline width")
    parser.add_argument("--timeseries", type=float, metavar="MS",
                        help="sample windowed metrics every MS sim-ms "
                             "(adds counter tracks to --chrome-trace)")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="also write a chrome://tracing JSON file")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="also write the structured run log (JSONL)")
    parser.add_argument("--metrics-json", metavar="PATH",
                        help="also write the full metrics snapshot (JSON)")
    args = parser.parse_args(argv)
    if args.iterations < 1:
        parser.error("--iterations must be >= 1")
    if args.width < 8:
        parser.error("--width must be >= 8")

    if args.list or not args.workload:
        print("registered workloads:")
        for name in sorted(WORKLOADS):
            print(f"  {name}")
        return 0

    if args.timeseries is not None and args.timeseries <= 0:
        parser.error("--timeseries must be positive")
    if args.timeseries is not None:
        # Workload factories build their own RunContext; the env var is
        # the channel the colocation harness attaches samplers through.
        from repro.obs.timeseries import TIMESERIES_ENV
        import os

        saved = os.environ.get(TIMESERIES_ENV)
        os.environ[TIMESERIES_ENV] = str(args.timeseries)
        try:
            ctx = WORKLOADS[args.workload](args.seed, args.iterations)
        finally:
            if saved is None:
                os.environ.pop(TIMESERIES_ENV, None)
            else:
                os.environ[TIMESERIES_ENV] = saved
    else:
        ctx = WORKLOADS[args.workload](args.seed, args.iterations)
    print(f"== run report: {args.workload} (seed={args.seed}) ==")
    print(run_summary(ctx, width=args.width))

    if args.chrome_trace:
        sampler = getattr(ctx, "timeseries", None)
        counters = sampler.chrome_counters() if sampler is not None \
            else None
        write_chrome_trace(ctx.tracer, args.chrome_trace,
                           counters=counters)
        print(f"\nchrome trace written to {args.chrome_trace} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    if args.jsonl:
        ctx.runlog.write(args.jsonl)
        print(f"run log written to {args.jsonl}")
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(ctx.metrics.snapshot(), fh, indent=2)
        print(f"metrics snapshot written to {args.metrics_json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
