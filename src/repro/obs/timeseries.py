"""Windowed time-series snapshots of the metrics registry.

End-of-run aggregates hide trajectories: a serving job whose p95 is
fine *on average* may spend every preemption window deep in the tail.
The :class:`TimeSeriesSampler` closes that gap — a periodic process on
the engine clock snapshots every registry instrument each ``interval_ms``
simulated milliseconds, recording per-window counter deltas/rates,
gauge levels, and histogram quantiles **over the samples observed in
that window only**.

Design constraints (ISSUE 6):

* **Off by default, zero-cost when disabled.** Nothing samples unless
  a sampler is attached (``RunContext.attach_timeseries`` /
  ``$REPRO_TIMESERIES``); no instrument pays any per-observation cost
  either way — windows are computed from count marks at snapshot time.
* **Bounded memory.** Windows live in a ring buffer
  (``deque(maxlen=capacity)``); a week-long simulated run keeps the
  last ``capacity`` windows, which is what the flight recorder wants.
* **Deterministic.** Driven solely by the sim clock, so two runs of
  the same seed produce identical window sequences.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.metrics.latency import percentile_sorted
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Environment switch: set to the sampling interval in simulated ms
#: (optionally ``interval:capacity``) to attach a sampler to every
#: run built through the colocation harness. Mirrors ``REPRO_FAULTS``.
TIMESERIES_ENV = "REPRO_TIMESERIES"


def _tag(name: str, label_key: Tuple[Tuple[str, str], ...]) -> str:
    labels = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{labels}}}" if labels else name


class TimeSeriesSampler:
    """Ring buffer of per-window metric snapshots for one run."""

    def __init__(self, engine, metrics: MetricsRegistry,
                 interval_ms: float = 100.0, capacity: int = 512) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.metrics = metrics
        self.interval_ms = float(interval_ms)
        self.capacity = capacity
        self.windows: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        # Per-instrument marks from the previous window boundary:
        # counter totals and histogram sample counts, keyed by id() of
        # the instrument (stable for the registry's lifetime).
        self._counter_marks: Dict[int, float] = {}
        self._histogram_marks: Dict[int, int] = {}
        self._handle = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TimeSeriesSampler":
        """Arm the periodic sampling process (idempotent)."""
        if self._handle is None:
            self._handle = self.engine.every(self.interval_ms,
                                             lambda _engine: self.sample())
        return self

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self) -> Dict[str, Any]:
        """Take one window snapshot now; returns (and stores) it."""
        window: Dict[str, Any] = {
            "t_ms": self.engine.now,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for family in self.metrics.families():
            for instrument in family.series():
                tag = _tag(family.name, instrument.label_key)
                if isinstance(instrument, Counter):
                    mark = self._counter_marks.get(id(instrument), 0.0)
                    delta = instrument.value - mark
                    self._counter_marks[id(instrument)] = instrument.value
                    window["counters"][tag] = {
                        "total": instrument.value,
                        "delta": delta,
                        "rate_per_ms": delta / self.interval_ms,
                    }
                elif isinstance(instrument, Gauge):
                    window["gauges"][tag] = instrument.value
                elif isinstance(instrument, Histogram):
                    mark = self._histogram_marks.get(id(instrument), 0)
                    fresh = sorted(instrument.samples[mark:])
                    self._histogram_marks[id(instrument)] = \
                        len(instrument.samples)
                    entry: Dict[str, float] = {"count": len(fresh)}
                    if fresh:
                        entry.update(
                            p50=percentile_sorted(fresh, 50),
                            p95=percentile_sorted(fresh, 95),
                            p99=percentile_sorted(fresh, 99))
                    window["histograms"][tag] = entry
        self.windows.append(window)
        return window

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def recent_rows(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """Plain-data copies of the most recent windows (oldest first)."""
        rows = list(self.windows)
        if last is not None:
            rows = rows[-last:]
        return rows

    def series(self, tag: str, field: str = "delta"
               ) -> List[Tuple[float, float]]:
        """One metric's trajectory: [(window t_ms, value), ...].

        ``tag`` is the rendered instrument tag (``name{k=v}``; bare
        ``name`` for unlabelled series). ``field`` picks the window
        statistic: counters use total/delta/rate_per_ms, histograms
        count/p50/p95/p99; gauges ignore ``field``.
        """
        points: List[Tuple[float, float]] = []
        for window in self.windows:
            for section in ("counters", "histograms"):
                entry = window[section].get(tag)
                if entry is not None and field in entry:
                    points.append((window["t_ms"], entry[field]))
                    break
            else:
                if tag in window["gauges"]:
                    points.append((window["t_ms"], window["gauges"][tag]))
        return points

    def tags(self) -> List[str]:
        """Every instrument tag seen in any window, sorted."""
        seen = set()
        for window in self.windows:
            for section in ("counters", "gauges", "histograms"):
                seen.update(window[section])
        return sorted(seen)

    def chrome_counters(self) -> Dict[str, List[Tuple[float, Dict[str, float]]]]:
        """Counter tracks for the Chrome-trace exporter (``ph: "C"``).

        One track per metric family: counter families export the
        per-window rate, gauge families the level, histogram families
        the window p95 — each labelled series becomes one stacked
        component of the track.
        """
        tracks: Dict[str, Dict[float, Dict[str, float]]] = {}

        def _put(track: str, t_ms: float, key: str, value: float) -> None:
            tracks.setdefault(track, {}).setdefault(t_ms, {})[key] = value

        for window in self.windows:
            t_ms = window["t_ms"]
            for tag, entry in window["counters"].items():
                name, _, labels = tag.partition("{")
                _put(f"{name} (per ms)", t_ms, labels.rstrip("}") or "all",
                     entry["rate_per_ms"])
            for tag, value in window["gauges"].items():
                name, _, labels = tag.partition("{")
                _put(name, t_ms, labels.rstrip("}") or "all", value)
            for tag, entry in window["histograms"].items():
                if "p95" not in entry:
                    continue
                name, _, labels = tag.partition("{")
                _put(f"{name} (p95)", t_ms, labels.rstrip("}") or "all",
                     entry["p95"])
        return {track: sorted(samples.items())
                for track, samples in tracks.items()}

    def render(self, last: int = 12, width_hint: int = 100) -> str:
        """Compact per-window table of the busiest instruments."""
        rows = self.recent_rows(last=last)
        if not rows:
            return "(no windows sampled)"
        lines = [f"interval {self.interval_ms:.0f} ms, "
                 f"{len(self.windows)} window(s) retained "
                 f"(showing last {len(rows)})"]
        # Counters with any activity in the shown range, busiest first.
        activity: Dict[str, float] = {}
        for window in rows:
            for tag, entry in window["counters"].items():
                activity[tag] = activity.get(tag, 0.0) + entry["delta"]
        busy = sorted((tag for tag, total in activity.items() if total > 0),
                      key=lambda tag: -activity[tag])[:6]
        for index, tag in enumerate(busy, start=1):
            lines.append(f"c{index} = {tag} (delta per window)")
        lines.append("t_ms".rjust(10) + "".join(
            f"c{index}".rjust(14) for index in range(1, len(busy) + 1)))
        for window in rows:
            cells = [f"{window['t_ms']:10.0f}"]
            cells.extend(
                f"{window['counters'].get(tag, {}).get('delta', 0.0):14.1f}"
                for tag in busy)
            lines.append("".join(cells))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Environment attach (mirrors repro.faults.maybe_attach_from_env)
# ---------------------------------------------------------------------------
def maybe_attach_timeseries_from_env(ctx) -> Optional[TimeSeriesSampler]:
    """Attach a sampler if ``$REPRO_TIMESERIES`` asks for one.

    The value is the interval in simulated ms, optionally followed by
    ``:capacity``. A sampler already attached explicitly wins. The env
    channel (not a parameter chain) keeps the knob fork-safe for the
    experiment harness's worker processes, like ``REPRO_FAULTS``.
    """
    spec = os.environ.get(TIMESERIES_ENV, "").strip()
    if not spec or getattr(ctx, "timeseries", None) is not None:
        return getattr(ctx, "timeseries", None)
    interval, _, capacity = spec.partition(":")
    try:
        interval_ms = float(interval)
        cap = int(capacity) if capacity else 512
    except ValueError as exc:
        raise ValueError(
            f"${TIMESERIES_ENV} must be 'interval_ms[:capacity]', "
            f"got {spec!r}") from exc
    return ctx.attach_timeseries(interval_ms=interval_ms, capacity=cap)
