"""Label-aware metrics registry: counters, gauges, histograms.

The registry is the querying surface of the observability layer: every
runtime component (scheduler, gates, pools, resource manager, devices)
publishes into one :class:`MetricsRegistry` owned by the
:class:`~repro.core.context.RunContext`, and every experiment/report
reads back from it instead of re-deriving quantities from raw spans.

All instruments are *sim-time aware*: the registry is built with a
clock callable (``lambda: engine.now``) and stamps samples/updates with
simulated milliseconds, which lets gauges report time-weighted means
and counters report rates without touching the engine directly.

Metrics are identified by ``name`` plus a label set, prometheus-style::

    reg.counter("sched.preemptions", victim="vgg16").inc()
    reg.histogram("sched.gate_wait_ms", device="V100-0").observe(3.2)
    reg.quantile("sched.gate_wait_ms", 95)     # aggregated over labels
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.metrics.latency import percentile, percentile_sorted

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Base for one labelled series of a metric family."""

    kind = "abstract"

    def __init__(self, family: "MetricFamily", labels: LabelKey) -> None:
        self.family = family
        self.label_key = labels

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self.label_key)

    def _now(self) -> float:
        return self.family.registry.now()


class Counter(_Instrument):
    """Monotonically increasing count (events, bytes, milliseconds)."""

    kind = "counter"

    def __init__(self, family: "MetricFamily", labels: LabelKey) -> None:
        super().__init__(family, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def rate_per_ms(self) -> float:
        """Average rate since t=0 in events per simulated ms."""
        now = self._now()
        return self.value / now if now > 0 else 0.0


class Gauge(_Instrument):
    """A sampled level (queue depth, bytes in use) with a high-water mark.

    Tracks the time integral of the level so utilization-style queries
    (:meth:`time_weighted_mean`) need no extra bookkeeping at the call
    sites.
    """

    kind = "gauge"

    def __init__(self, family: "MetricFamily", labels: LabelKey) -> None:
        super().__init__(family, labels)
        self.value = 0.0
        self.max_value = 0.0
        self._integral = 0.0
        self._last_update = self._now()

    def set(self, value: float) -> None:
        now = self._now()
        self._integral += self.value * (now - self._last_update)
        self._last_update = now
        self.value = float(value)
        self.max_value = max(self.max_value, self.value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def time_weighted_mean(self) -> float:
        now = self._now()
        if now <= 0:
            return self.value
        return (self._integral + self.value * (now - self._last_update)) / now


class Histogram(_Instrument):
    """Raw-sample histogram with p50/p95/p99 quantile queries.

    Simulated runs produce at most a few hundred thousand samples, so
    the full sample set is retained; quantiles are exact (same linear
    interpolation as :func:`repro.metrics.latency.percentile`).
    """

    kind = "histogram"

    def __init__(self, family: "MetricFamily", labels: LabelKey) -> None:
        super().__init__(family, labels)
        self.samples: List[float] = []
        self.sum = 0.0
        # Sorted view of ``samples``, materialized lazily on the first
        # quantile query and invalidated by ``observe``. Report code
        # asks for p50/p95/p99 back to back (and timeseries sampling
        # asks every window), so without the cache each query re-sorts
        # the full sample list.
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        self.samples.append(float(value))
        self.sum += value
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        return self.sum / len(self.samples) if self.samples else 0.0

    def _sorted_view(self) -> List[float]:
        if self._sorted is None or len(self._sorted) != len(self.samples):
            self._sorted = sorted(self.samples)
        return self._sorted

    def quantile(self, pct: float) -> float:
        if not self.samples:
            return 0.0
        return percentile_sorted(self._sorted_view(), pct)

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        ordered = self._sorted_view()
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean(),
            "p50": percentile_sorted(ordered, 50),
            "p95": percentile_sorted(ordered, 95),
            "p99": percentile_sorted(ordered, 99),
            "max": ordered[-1],
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All labelled series sharing one metric name."""

    def __init__(self, registry: "MetricsRegistry", name: str, kind: str,
                 help: str = "") -> None:
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self._series: Dict[LabelKey, _Instrument] = {}

    def series(self) -> List[_Instrument]:
        return list(self._series.values())

    def child(self, **labels: Any) -> _Instrument:
        key = _label_key(labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = _KINDS[self.kind](self, key)
            self._series[key] = instrument
        return instrument

    # Aggregations across label sets -----------------------------------
    def total(self) -> float:
        """Sum of counter/gauge values (histograms: total sample count)."""
        if self.kind == "histogram":
            return float(sum(s.count for s in self._series.values()))
        return sum(s.value for s in self._series.values())

    def all_samples(self) -> List[float]:
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, not a histogram")
        merged: List[float] = []
        for series in self._series.values():
            merged.extend(series.samples)
        return merged

    def quantile(self, pct: float) -> float:
        samples = self.all_samples()
        if not samples:
            return 0.0
        return percentile(samples, pct)


class MetricsRegistry:
    """One namespace of metrics for a single run."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # Instrument accessors (create on first use)
    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help: str) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(self, name, kind, help)
            self._families[name] = family
        elif family.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {family.kind}, "
                f"cannot re-register as {kind}")
        if help and not family.help:
            family.help = help
        return family

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._family(name, "counter", help).child(**labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._family(name, "gauge", help).child(**labels)

    def histogram(self, name: str, help: str = "",
                  **labels: Any) -> Histogram:
        return self._family(name, "histogram", help).child(**labels)

    # ------------------------------------------------------------------
    # Collectors: pull-style instrumentation for components that keep
    # their own counters (e.g. GPU busy time). Run before every read.
    # ------------------------------------------------------------------
    def register_collector(
            self, fn: Callable[["MetricsRegistry"], None]) -> None:
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn(self)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        self.collect()
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        self.collect()
        return [self._families[name] for name in sorted(self._families)]

    def value(self, name: str, default: float = 0.0,
              **labels: Any) -> float:
        """Read one series' value (counters/gauges) or sample count."""
        self.collect()
        family = self._families.get(name)
        if family is None:
            return default
        if not labels:
            return family.total()
        instrument = family._series.get(_label_key(labels))
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value

    def quantile(self, name: str, pct: float, **labels: Any) -> float:
        """Histogram quantile, aggregated over labels unless given."""
        self.collect()
        family = self._families.get(name)
        if family is None or family.kind != "histogram":
            return 0.0
        if not labels:
            return family.quantile(pct)
        instrument = family._series.get(_label_key(labels))
        if instrument is None:
            return 0.0
        return instrument.quantile(pct)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-data dump of every metric (JSON-serializable)."""
        self.collect()
        out: Dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series = []
            for instrument in family.series():
                entry: Dict[str, Any] = {"labels": instrument.labels}
                if isinstance(instrument, Histogram):
                    entry.update(instrument.summary())
                elif isinstance(instrument, Gauge):
                    entry["value"] = instrument.value
                    entry["max"] = instrument.max_value
                    entry["time_weighted_mean"] = \
                        instrument.time_weighted_mean()
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            out[name] = {"type": family.kind, "help": family.help,
                         "series": series}
        return out

    def render(self, prefix: Optional[str] = None) -> str:
        """Human-readable metrics table (the report CLI's raw section)."""
        self.collect()
        lines: List[str] = []
        for name in sorted(self._families):
            if prefix is not None and not name.startswith(prefix):
                continue
            family = self._families[name]
            for instrument in family.series():
                labels = ",".join(f"{k}={v}"
                                  for k, v in instrument.label_key)
                tag = f"{name}{{{labels}}}" if labels else name
                if isinstance(instrument, Histogram):
                    s = instrument.summary()
                    lines.append(
                        f"{tag}  n={s['count']} mean={s['mean']:.3f} "
                        f"p50={s['p50']:.3f} p95={s['p95']:.3f} "
                        f"p99={s['p99']:.3f} max={s['max']:.3f}")
                elif isinstance(instrument, Gauge):
                    lines.append(
                        f"{tag}  value={instrument.value:.3f} "
                        f"max={instrument.max_value:.3f}")
                else:
                    lines.append(f"{tag}  value={instrument.value:.3f}")
        return "\n".join(lines)


def merge_quantiles(histograms: Iterable[Histogram],
                    pct: float) -> float:
    """Exact quantile over the union of several histograms' samples."""
    merged: List[float] = []
    for histogram in histograms:
        merged.extend(histogram.samples)
    if not merged:
        return 0.0
    return percentile(merged, pct)
