"""Scheduler decision audit: structured "why did that happen?" records.

Every consequential scheduling decision — admit, preempt, migrate,
readmit, spurious preempt, suppressed preempt — is emitted into the run
log as one ``sched_decision`` record carrying the inputs the policy
considered, the alternatives it rejected (with reasons), and a
monotonically increasing ``decision`` id that outcome records
(``preempt``, ``abort_complete``) reference back. The record set is the
machine-readable substrate ROADMAP item 5 (policy search) trains
against, and the query CLI answers the operator question directly::

    python -m repro.obs.audit why victim --workload preemption
    python -m repro.obs.audit why victim --log run.jsonl --at 1200
    python -m repro.obs.audit list --log run.jsonl

The module also hosts the **flight recorder**: a post-mortem snapshot
(open spans, recent records, pending decisions, gate state, recent
time-series windows) captured automatically when a run dies on a
:class:`~repro.analysis.integration.SanitizationError` or a deadlock
abort, and written to ``$REPRO_FLIGHT_DIR`` when set.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.runlog import RunLog

DECISION_EVENT = "sched_decision"

#: Environment variable naming a directory for flight-recorder dumps.
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: Decision kinds (the vocabulary the CLI and tests key on).
KINDS = ("admit", "preempt", "migrate", "readmit", "spurious_preempt",
         "preempt_suppressed", "gang_place", "request_admit",
         "request_shed", "batch_close")


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------
def emit_decision(runlog: RunLog, kind: str, *, job: str,
                  device: Optional[str] = None,
                  chosen: Optional[str] = None,
                  considered: Optional[Sequence[Dict[str, Any]]] = None,
                  rejected: Optional[Sequence[Dict[str, Any]]] = None,
                  **inputs: Any) -> Optional[int]:
    """Emit one decision record; returns its ``decision`` id.

    ``considered``/``rejected`` are lists of plain dicts (candidate +
    why it lost); they are JSON-encoded into string fields so the
    record stays a flat JSONL line. Returns None when the runlog is
    disabled (decision ids then don't advance, keeping replays of the
    same run identical whether or not logging is on).
    """
    if kind not in KINDS:
        raise ValueError(f"unknown decision kind {kind!r}")
    if not runlog.enabled:
        return None
    decision_id = getattr(runlog, "_decision_seq", 0) + 1
    runlog._decision_seq = decision_id
    fields: Dict[str, Any] = {"decision": decision_id, "kind": kind,
                              "job": job}
    if device is not None:
        fields["device"] = device
    if chosen is not None:
        fields["chosen"] = chosen
    if considered is not None:
        fields["considered"] = json.dumps(list(considered))
    if rejected is not None:
        fields["rejected"] = json.dumps(list(rejected))
    fields.update(inputs)
    runlog.emit(DECISION_EVENT, **fields)
    return decision_id


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------
def _parse_embedded(record: Dict[str, Any]) -> Dict[str, Any]:
    """Decode the JSON-encoded considered/rejected fields, if present."""
    out = dict(record)
    for key in ("considered", "rejected"):
        value = out.get(key)
        if isinstance(value, str):
            try:
                out[key] = json.loads(value)
            except json.JSONDecodeError:
                pass
    return out


def decisions(records: Sequence[Dict[str, Any]],
              kind: Optional[str] = None,
              job: Optional[str] = None) -> List[Dict[str, Any]]:
    """All decision records, optionally filtered by kind and job.

    ``job`` matches the deciding job *or* the victim of a preemption —
    "why was X preempted" and "why did X preempt" both hit.
    """
    out = []
    for record in records:
        if record.get("event") != DECISION_EVENT:
            continue
        if kind is not None and record.get("kind") != kind:
            continue
        if job is not None and job not in (record.get("job"),
                                           record.get("victim"),
                                           record.get("requester")):
            continue
        out.append(_parse_embedded(record))
    return out


def why(records: Sequence[Dict[str, Any]], job: str,
        at_ms: Optional[float] = None,
        kind: Optional[str] = None) -> Optional[Dict[str, Any]]:
    """The decision explaining what happened to ``job``.

    Without ``at_ms``: the job's last decision. With it: the latest
    decision at or before that time (the one in force then).
    """
    matches = decisions(records, kind=kind, job=job)
    if at_ms is not None:
        matches = [m for m in matches if m.get("t_ms", 0.0) <= at_ms]
    return matches[-1] if matches else None


def explain(record: Dict[str, Any]) -> str:
    """Render one decision record as a human-readable paragraph."""
    record = _parse_embedded(record)
    kind = record.get("kind", "?")
    lines = [f"decision #{record.get('decision', '?')} [{kind}] "
             f"at t={record.get('t_ms', 0.0):.3f} ms"]
    skip = {"t_ms", "event", "decision", "kind", "considered", "rejected"}
    for key in sorted(record):
        if key in skip:
            continue
        lines.append(f"  {key}: {record[key]}")
    for key in ("considered", "rejected"):
        entries = record.get(key)
        if not entries:
            continue
        lines.append(f"  {key}:")
        for entry in entries:
            if isinstance(entry, dict):
                body = ", ".join(f"{k}={v}" for k, v in entry.items())
            else:
                body = str(entry)
            lines.append(f"    - {body}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------
def flight_record(ctx, reason: str, policy=None,
                  last_records: int = 80) -> Dict[str, Any]:
    """Snapshot everything needed to debug a dead run, as plain data.

    Captures the tail of the run log, every span still open, decisions
    whose outcome never landed (a ``preempt`` decision with no
    ``abort_complete`` referencing it), per-gate holder/queue state
    when the policy exposes gates, and the most recent time-series
    windows when a sampler is attached.
    """
    records = list(ctx.runlog.records)
    decided = decisions(records)
    completed = {r.get("decision") for r in records
                 if r.get("event") == "abort_complete"
                 and r.get("decision") is not None}
    pending = [d for d in decided
               if d["kind"] in ("preempt", "spurious_preempt")
               and d["decision"] not in completed]
    snapshot: Dict[str, Any] = {
        "reason": reason,
        "t_ms": ctx.engine.now,
        "open_spans": ctx.tracer.open_span_rows(),
        "recent_records": records[-last_records:],
        "pending_decisions": pending,
    }
    gates = getattr(policy, "gates", None)
    if gates:
        snapshot["gates"] = {
            name: {"holder": gate.holder.name if gate.holder else None,
                   "waiting": [j.name for j in gate.waiting_jobs]}
            for name, gate in gates.items()}
    sampler = getattr(ctx, "timeseries", None)
    if sampler is not None:
        snapshot["timeseries_windows"] = sampler.recent_rows()
    tracker = getattr(ctx, "concurrency", None)
    if tracker is not None:
        # Who is parked on what — the first question a deadlock dump
        # gets asked.
        snapshot["concurrency_waits"] = tracker.waiting_rows()
    return snapshot


def dump_flight_record(ctx, reason: str, policy=None,
                       path: Optional[Path] = None) -> Optional[Path]:
    """Write a flight record to disk; returns the path (None = not asked).

    With no explicit ``path``, the dump lands in ``$REPRO_FLIGHT_DIR``
    (created if needed); unset means no dump — the snapshot is cheap
    but unsolicited files are not.
    """
    if path is None:
        directory = os.environ.get(FLIGHT_DIR_ENV)
        if not directory:
            return None
        slug = "".join(c if c.isalnum() or c in "-_" else "-"
                       for c in reason)[:48].strip("-") or "abort"
        path = Path(directory) / f"flight-{slug}-t{ctx.engine.now:.0f}.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = flight_record(ctx, reason, policy=policy)
    path.write_text(json.dumps(payload, indent=2, default=repr),
                    encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _load_records(args, parser) -> List[Dict[str, Any]]:
    if bool(args.log) == bool(args.workload):
        parser.error("exactly one of --log / --workload is required")
    if args.log:
        with open(args.log, encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]
    from repro.obs.report import WORKLOADS
    if args.workload not in WORKLOADS:
        parser.error(f"unknown workload {args.workload!r} "
                     f"(choices: {', '.join(sorted(WORKLOADS))})")
    ctx = WORKLOADS[args.workload](args.seed, args.iterations)
    return ctx.runlog.records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.audit",
        description="Query the scheduler decision log of a run.")
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p):
        p.add_argument("--log", metavar="PATH",
                       help="run-log JSONL file to query")
        p.add_argument("--workload", metavar="NAME",
                       help="run this registered workload, query in-memory")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--iterations", type=int, default=8)
        p.add_argument("--kind", choices=KINDS,
                       help="restrict to one decision kind")

    p_why = sub.add_parser("why", help="explain what happened to a job")
    p_why.add_argument("job", help="job name")
    p_why.add_argument("--at", type=float, metavar="MS",
                       help="the decision in force at this sim time")
    _common(p_why)

    p_list = sub.add_parser("list", help="list decision records")
    p_list.add_argument("--job", help="filter by job (or victim)")
    _common(p_list)

    args = parser.parse_args(argv)
    records = _load_records(args, parser)

    if args.command == "why":
        record = why(records, args.job, at_ms=args.at, kind=args.kind)
        if record is None:
            where = f" at t<={args.at}" if args.at is not None else ""
            print(f"no decision found for job {args.job!r}{where}")
            return 1
        print(explain(record))
        return 0

    matches = decisions(records, kind=args.kind, job=args.job)
    if not matches:
        print("no decisions recorded")
        return 1
    for record in matches:
        print(explain(record))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
