"""Unified observability layer: metrics, traces, structured run logs.

One subsystem answers every "what did the runtime do?" question:

* :class:`MetricsRegistry` — labelled counters/gauges/histograms with
  sim-time-aware rates and p50/p95/p99 quantiles, owned by
  :class:`~repro.core.context.RunContext` and populated by the
  scheduler, gates, thread pools, resource manager and devices.
* :func:`tracer_to_chrome_trace` — export any run's spans to
  ``chrome://tracing`` / Perfetto JSON.
* :class:`RunLog` — sim-timestamped scheduler decisions as JSON lines.
* :func:`profile_run` — causal critical-path attribution of a run's
  wall clock (``python -m repro.obs.profile``).
* :class:`TimeSeriesSampler` — windowed counter/gauge/quantile
  snapshots on the engine clock, off by default.
* :func:`emit_decision` / ``python -m repro.obs.audit`` — structured
  scheduler decision records and the "why did that happen?" query CLI,
  plus the flight recorder dumped on sanitizer/deadlock aborts.
* ``python -m repro.obs.report`` — run a registered workload and print
  a metrics summary, per-GPU breakdown and ASCII timeline.
"""

from repro.obs.chrome_trace import (
    tracer_to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.timeseries import TimeSeriesSampler

# The profile/audit modules double as CLIs (python -m repro.obs.X);
# importing them eagerly here would trip runpy's re-import warning, so
# their symbols resolve lazily (PEP 562).
_LAZY = {
    "ProfileResult": "repro.obs.profile",
    "profile_run": "repro.obs.profile",
    "render_profile": "repro.obs.profile",
    "decisions": "repro.obs.audit",
    "dump_flight_record": "repro.obs.audit",
    "emit_decision": "repro.obs.audit",
    "flight_record": "repro.obs.audit",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    merge_quantiles,
)
from repro.obs.procpool import ProcPoolStats
from repro.obs.runlog import RunLog

__all__ = [
    "ProcPoolStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "ProfileResult",
    "RunLog",
    "TimeSeriesSampler",
    "decisions",
    "dump_flight_record",
    "emit_decision",
    "flight_record",
    "merge_quantiles",
    "profile_run",
    "render_profile",
    "tracer_to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
