"""Unified observability layer: metrics, traces, structured run logs.

One subsystem answers every "what did the runtime do?" question:

* :class:`MetricsRegistry` — labelled counters/gauges/histograms with
  sim-time-aware rates and p50/p95/p99 quantiles, owned by
  :class:`~repro.core.context.RunContext` and populated by the
  scheduler, gates, thread pools, resource manager and devices.
* :func:`tracer_to_chrome_trace` — export any run's spans to
  ``chrome://tracing`` / Perfetto JSON.
* :class:`RunLog` — sim-timestamped scheduler decisions as JSON lines.
* ``python -m repro.obs.report`` — run a registered workload and print
  a metrics summary, per-GPU breakdown and ASCII timeline.
"""

from repro.obs.chrome_trace import (
    tracer_to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    merge_quantiles,
)
from repro.obs.procpool import ProcPoolStats
from repro.obs.runlog import RunLog

__all__ = [
    "ProcPoolStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "RunLog",
    "merge_quantiles",
    "tracer_to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
