"""Causal critical-path profiler: where did the wall clock go?

End-of-run aggregates (busy fractions, quantiles) say *how much*; this
module says *why the run took as long as it did*. It consumes the three
shared observability surfaces — tracer spans, run-log records, metrics
— plus the executors' dependency structure, and produces:

* a **disjoint partition** of the run's wall clock ``[0, end]`` into
  named categories (preempt, compute, transfer, gate, recovery, idle),
  so the attribution always sums to exactly the end-to-end time;
* **per-job** breakdowns (busy time, preemption overhead suffered,
  gate wait, transfers, recovery, observed iteration time vs. the
  dependency-graph critical-path lower bound from
  :meth:`repro.runtime.executor.Executor.critical_path_ms`);
* **per-device** busy/idle accounting that reconciles, interval for
  interval, with :meth:`repro.sim.trace.Tracer.busy_union`;
* ``profile.*`` metrics exported back into the registry, and the
  profiler's **own overhead** measured in host wall time (the one
  place outside the engine clock this repo legitimately looks at
  :func:`time.perf_counter` — we are measuring ourselves, not the
  simulation).

Category precedence, highest first, for wall-clock seconds covered by
more than one signal: **preempt** (the paper's headline overhead — a
preemption window counts even while victim kernels drain) > **compute**
(any GPU/CPU span) > **transfer** (PCIe) > **gate** (blocked on a
device gate) > **recovery** (fault restart backoff) > **idle**.

CLI::

    python -m repro.obs.profile --workload preemption
    python -m repro.obs.profile --workload serve --json profile.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time  # host wall clock: self-overhead measurement only
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

CATEGORIES = ("preempt", "compute", "transfer", "gate", "recovery", "idle")

#: Precedence index: lower wins when intervals overlap.
_PRIORITY = {name: index for index, name in enumerate(CATEGORIES)}

Interval = Tuple[float, float]


def _merge(intervals: List[Interval]) -> List[Interval]:
    """Sorted union of possibly-overlapping intervals."""
    merged: List[Interval] = []
    for lo, hi in sorted(intervals):
        if hi <= lo:
            continue
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


def _union_ms(intervals: List[Interval]) -> float:
    return sum(hi - lo for lo, hi in _merge(intervals))


@dataclass
class Segment:
    """One piece of the wall-clock partition."""

    start: float
    end: float
    category: str
    #: True when a device (GPU/CPU/link) had an active span here —
    #: the reconciliation hook against tracer busy time.
    device_active: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ProfileResult:
    """The full attribution for one run."""

    end_ms: float
    segments: List[Segment]
    category_ms: Dict[str, float]
    per_job: Dict[str, Dict[str, Any]]
    per_device: Dict[str, Dict[str, float]]
    #: Sum of device_active segment time vs. the tracer's own union
    #: busy time — must agree within 1% (they are the same intervals).
    device_active_ms: float = 0.0
    tracer_busy_ms: float = 0.0
    #: Host wall time the profiler itself spent, in ms.
    overhead_wall_ms: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def attributed_fraction(self) -> float:
        """Fraction of wall time attributed to *non-idle* categories."""
        if self.end_ms <= 0:
            return 1.0
        busy = sum(ms for cat, ms in self.category_ms.items()
                   if cat != "idle")
        return busy / self.end_ms

    @property
    def reconciliation_error(self) -> float:
        """Relative disagreement with tracer busy time (0 = exact)."""
        if self.tracer_busy_ms <= 0:
            return 0.0 if self.device_active_ms <= 0 else 1.0
        return (abs(self.device_active_ms - self.tracer_busy_ms)
                / self.tracer_busy_ms)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "end_ms": self.end_ms,
            "category_ms": self.category_ms,
            "category_fraction": {
                cat: (ms / self.end_ms if self.end_ms > 0 else 0.0)
                for cat, ms in self.category_ms.items()},
            "attributed_fraction": self.attributed_fraction,
            "device_active_ms": self.device_active_ms,
            "tracer_busy_ms": self.tracer_busy_ms,
            "reconciliation_error": self.reconciliation_error,
            "per_job": self.per_job,
            "per_device": self.per_device,
            "overhead_wall_ms": self.overhead_wall_ms,
            "meta": self.meta,
        }


# ---------------------------------------------------------------------------
# Interval extraction from the shared surfaces
# ---------------------------------------------------------------------------
def _preemption_windows(records: Sequence[Dict[str, Any]]
                        ) -> List[Tuple[str, str, float, float]]:
    """Pair ``preempt`` -> ``abort_complete`` records per victim.

    Same pairing the sanitizer's preemption-safety check performs:
    decisions and aborts interleave per victim in time order.
    """
    pending: Dict[str, List[Tuple[float, str]]] = {}
    windows: List[Tuple[str, str, float, float]] = []
    for record in records:
        event = record.get("event")
        if event == "preempt":
            victim = record["victim"]
            pending.setdefault(victim, []).append(
                (record["t_ms"], record.get("from_device", "?")))
        elif event == "abort_complete":
            victim = record["victim"]
            queue = pending.get(victim)
            if queue:
                t_preempt, device = queue.pop(0)
                windows.append((victim, device, t_preempt, record["t_ms"]))
    return windows


def _recovery_windows(records: Sequence[Dict[str, Any]]
                      ) -> List[Tuple[str, float, float]]:
    """Restart backoff windows: ``job_restarting`` -> ``fault_recovered``."""
    pending: Dict[str, List[float]] = {}
    windows: List[Tuple[str, float, float]] = []
    for record in records:
        event = record.get("event")
        if event == "job_restarting":
            pending.setdefault(record["job"], []).append(record["t_ms"])
        elif event == "fault_recovered" and record.get("job") in pending:
            queue = pending[record["job"]]
            if queue:
                windows.append((record["job"], queue.pop(0),
                                record["t_ms"]))
    return windows


def _gate_windows(records: Sequence[Dict[str, Any]]
                  ) -> List[Tuple[str, str, float, float]]:
    """Blocked-on-gate intervals from ``gate_wait`` records."""
    windows = []
    for record in records:
        if record.get("event") != "gate_wait":
            continue
        end = record["t_ms"]
        windows.append((record.get("job", "?"), record.get("device", "?"),
                        end - record["wait_ms"], end))
    return windows


def _job_of_link_span(span) -> Optional[str]:
    """Link spans carry the job in the label: ``HtoD/job``/``state/job``."""
    _, _, tail = span.name.rpartition("/")
    return tail or None


# ---------------------------------------------------------------------------
# The profiler
# ---------------------------------------------------------------------------
def profile_run(ctx, jobs: Optional[Sequence] = None,
                export_metrics: bool = True) -> ProfileResult:
    """Attribute a finished run's wall clock; returns the profile.

    ``jobs`` defaults to ``ctx.jobs`` (populated by the colocation
    harness); it is only needed for the dependency-graph critical-path
    lower bounds — everything else comes from the tracer/runlog.
    """
    t0 = time.perf_counter()
    end = ctx.engine.now
    tracer = ctx.tracer
    records = list(ctx.runlog.records)
    if jobs is None:
        jobs = list(getattr(ctx, "jobs", ()))

    # -- interval sets per category ------------------------------------
    compute_lanes = [lane for lane in tracer.lanes()
                     if lane.startswith(("gpu:", "cpu:"))]
    link_lanes = [lane for lane in tracer.lanes()
                  if lane.startswith("link:")]
    compute_iv: List[Interval] = [
        (span.start, span.end) for span in tracer.spans
        if span.lane in set(compute_lanes) and span.duration > 0]
    transfer_iv: List[Interval] = [
        (span.start, span.end) for span in tracer.spans
        if span.lane in set(link_lanes) and span.duration > 0]
    preempt_windows = _preemption_windows(records)
    preempt_iv = [(lo, hi) for _job, _dev, lo, hi in preempt_windows]
    gate_windows = _gate_windows(records)
    gate_iv = [(lo, hi) for _job, _dev, lo, hi in gate_windows]
    recovery_windows = _recovery_windows(records)
    recovery_iv = [(lo, hi) for _job, lo, hi in recovery_windows]

    by_category = {
        "preempt": _merge(preempt_iv),
        "compute": _merge(compute_iv),
        "transfer": _merge(transfer_iv),
        "gate": _merge(gate_iv),
        "recovery": _merge(recovery_iv),
    }
    device_iv = _merge(compute_iv + transfer_iv)

    # -- boundary sweep: a disjoint partition of [0, end] --------------
    boundaries = {0.0, end}
    for intervals in by_category.values():
        for lo, hi in intervals:
            boundaries.add(min(max(lo, 0.0), end))
            boundaries.add(min(max(hi, 0.0), end))
    cuts = sorted(boundaries)
    segments: List[Segment] = []
    category_ms = {category: 0.0 for category in CATEGORIES}
    cursors = {category: 0 for category in by_category}
    device_cursor = 0

    def _covers(intervals: List[Interval], index: int,
                mid: float) -> Tuple[bool, int]:
        while index < len(intervals) and intervals[index][1] <= mid:
            index += 1
        covered = (index < len(intervals)
                   and intervals[index][0] <= mid < intervals[index][1])
        return covered, index

    for lo, hi in zip(cuts, cuts[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        category = "idle"
        for name in CATEGORIES[:-1]:
            covered, cursors[name] = _covers(
                by_category[name], cursors[name], mid)
            if covered:
                category = name
                break
        active, device_cursor = _covers(device_iv, device_cursor, mid)
        duration = hi - lo
        category_ms[category] += duration
        if segments and segments[-1].category == category \
                and segments[-1].device_active == active \
                and segments[-1].end == lo:
            segments[-1].end = hi
        else:
            segments.append(Segment(lo, hi, category, active))

    device_active_ms = sum(s.duration for s in segments if s.device_active)
    tracer_busy_ms = tracer.busy_union(compute_lanes + link_lanes,
                                       0.0, end)

    # -- per-job breakdown ---------------------------------------------
    started = {r["job"]: r for r in records
               if r.get("event") == "job_started"}
    job_names = list(started) or sorted(
        {r.get("job") for r in records if r.get("job")})
    sessions = {job.name: job.session for job in jobs
                if getattr(job, "session", None) is not None}
    per_job: Dict[str, Dict[str, Any]] = {}
    for name in job_names:
        busy = _union_ms([
            (s.start, s.end) for s in tracer.spans
            if s.duration > 0 and s.meta.get("context") == name])
        transfers = _union_ms([
            (s.start, s.end) for s in tracer.spans
            if s.lane.startswith("link:") and s.duration > 0
            and _job_of_link_span(s) == name])
        suffered = [(lo, hi) for victim, _dev, lo, hi in preempt_windows
                    if victim == name]
        gate_wait = sum(hi - lo for job, _dev, lo, hi in gate_windows
                        if job == name)
        recovery = sum(hi - lo for job, lo, hi in recovery_windows
                       if job == name)
        iteration = ctx.metrics.get("job.iteration_ms")
        iteration_summary = None
        if iteration is not None:
            child = iteration._series.get((("job", name),))
            if child is not None and child.count:
                iteration_summary = child.summary()
        entry: Dict[str, Any] = {
            "busy_ms": busy,
            "transfer_ms": transfers,
            "preemptions_suffered": len(suffered),
            "preempt_overhead_ms": _union_ms(suffered),
            "gate_wait_ms": gate_wait,
            "recovery_ms": recovery,
        }
        if iteration_summary is not None:
            entry["iterations"] = iteration_summary["count"]
            entry["mean_iteration_ms"] = iteration_summary["mean"]
            entry["p95_iteration_ms"] = iteration_summary["p95"]
        session = sessions.get(name)
        if session is not None:
            # Dependency-structure lower bound for one compute run on
            # the job's home device version.
            device = started.get(name, {}).get("device")
            executor = session.versions.get(device) if device else None
            if executor is None and session.versions:
                executor = next(iter(session.versions.values()))
            if executor is not None:
                entry["critical_path_ms"] = executor.critical_path_ms()
        per_job[name] = entry

    # -- per-device breakdown ------------------------------------------
    per_device: Dict[str, Dict[str, float]] = {}
    for lane in compute_lanes + link_lanes:
        busy = tracer.busy_union([lane], 0.0, end)
        per_device[lane] = {
            "busy_ms": busy,
            "busy_fraction": busy / end if end > 0 else 0.0,
        }

    overhead_ms = (time.perf_counter() - t0) * 1000.0
    result = ProfileResult(
        end_ms=end,
        segments=segments,
        category_ms=category_ms,
        per_job=per_job,
        per_device=per_device,
        device_active_ms=device_active_ms,
        tracer_busy_ms=tracer_busy_ms,
        overhead_wall_ms=overhead_ms,
        meta={"preemption_windows": len(preempt_windows),
              "gate_windows": len(gate_windows),
              "recovery_windows": len(recovery_windows),
              "segments": len(segments)},
    )
    if export_metrics:
        _export(ctx.metrics, result)
    return result


def _export(metrics, result: ProfileResult) -> None:
    """Publish the attribution as ``profile.*`` gauges."""
    for category, ms in result.category_ms.items():
        metrics.gauge("profile.category_ms",
                      "wall-clock attribution by category",
                      category=category).set(ms)
    metrics.gauge("profile.attributed_fraction",
                  "fraction of wall time in non-idle categories").set(
        result.attributed_fraction)
    metrics.gauge("profile.reconciliation_error",
                  "relative disagreement with tracer busy time").set(
        result.reconciliation_error)
    metrics.gauge("profile.overhead_wall_ms",
                  "host wall time the profiler itself spent").set(
        result.overhead_wall_ms)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def render_profile(result: ProfileResult) -> str:
    lines: List[str] = []
    end = result.end_ms
    lines.append(f"wall clock: {end:.1f} ms simulated "
                 f"({result.meta.get('segments', 0)} segments)")
    lines.append("")
    lines.append("attribution (disjoint partition, precedence "
                 "preempt>compute>transfer>gate>recovery)")
    for category in CATEGORIES:
        ms = result.category_ms.get(category, 0.0)
        frac = ms / end if end > 0 else 0.0
        bar = "#" * int(round(frac * 40))
        lines.append(f"  {category:<9} {ms:12.1f} ms  {100 * frac:5.1f}%  "
                     f"{bar}")
    lines.append(f"  attributed (non-idle): "
                 f"{100 * result.attributed_fraction:.1f}%")
    lines.append(
        f"  reconciliation: device-active {result.device_active_ms:.1f} ms"
        f" vs tracer busy {result.tracer_busy_ms:.1f} ms "
        f"(error {100 * result.reconciliation_error:.3f}%)")

    if result.per_job:
        lines.append("")
        lines.append("per job")
        for name in sorted(result.per_job):
            entry = result.per_job[name]
            lines.append(f"  {name}:")
            lines.append(
                f"    busy {entry['busy_ms']:.1f} ms  "
                f"transfers {entry['transfer_ms']:.1f} ms  "
                f"gate-wait {entry['gate_wait_ms']:.1f} ms")
            lines.append(
                f"    preempted {entry['preemptions_suffered']}x "
                f"({entry['preempt_overhead_ms']:.1f} ms overhead)  "
                f"recovery {entry['recovery_ms']:.1f} ms")
            if "mean_iteration_ms" in entry:
                observed = entry["mean_iteration_ms"]
                line = (f"    iterations {entry['iterations']}  "
                        f"mean {observed:.1f} ms  "
                        f"p95 {entry['p95_iteration_ms']:.1f} ms")
                if "critical_path_ms" in entry:
                    bound = entry["critical_path_ms"]
                    line += (f"  critical-path bound {bound:.1f} ms"
                             f" ({observed / bound:.2f}x)"
                             if bound > 0 else "")
                lines.append(line)

    if result.per_device:
        lines.append("")
        lines.append("per device lane")
        for lane in sorted(result.per_device):
            entry = result.per_device[lane]
            lines.append(f"  {lane}: busy {entry['busy_ms']:.1f} ms "
                         f"({100 * entry['busy_fraction']:.1f}%)")

    lines.append("")
    lines.append(f"profiler overhead: {result.overhead_wall_ms:.2f} ms "
                 "host wall time")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    from repro.obs.report import WORKLOADS

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Run a registered workload and print its "
                    "critical-path profile.")
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        required=True)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--json", metavar="PATH",
                        help="also write the profile as JSON")
    args = parser.parse_args(argv)
    if args.iterations < 1:
        parser.error("--iterations must be >= 1")

    ctx = WORKLOADS[args.workload](args.seed, args.iterations)
    result = profile_run(ctx)
    print(f"== critical-path profile: {args.workload} "
          f"(seed={args.seed}) ==")
    print(render_profile(result))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"\nprofile written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
