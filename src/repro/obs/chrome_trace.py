"""Chrome trace-event export for :class:`~repro.sim.trace.Tracer` spans.

Produces JSON loadable by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): the "JSON Array Format" with complete
events (``ph: "X"``), instant events (``ph: "i"``) for zero-duration
markers, and metadata events naming one process row per timeline lane.

Simulated time is milliseconds; the trace-event format wants
microseconds, so timestamps are scaled by 1000.

Overlapping spans on one lane (e.g. concurrent kernels from two CUDA
streams) are split across thread rows within the lane's process by
greedy interval coloring, so nothing is visually swallowed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.trace import Span, Tracer

PathLike = Union[str, Path]

_US_PER_MS = 1000.0

#: Counter-track input: track name -> [(t_ms, {series: value}), ...].
#: Each sample becomes one ``ph: "C"`` event; Perfetto renders the
#: series of one track as a stacked area chart.
CounterTracks = Dict[str, List[Tuple[float, Dict[str, float]]]]


def _assign_rows(spans: Sequence[Span]) -> List[int]:
    """Greedy interval coloring: overlapping spans get distinct rows."""
    order = sorted(range(len(spans)),
                   key=lambda i: (spans[i].start, spans[i].end))
    rows = [0] * len(spans)
    row_free_at: List[float] = []
    for index in order:
        span = spans[index]
        for row, free_at in enumerate(row_free_at):
            if span.start >= free_at:
                rows[index] = row
                row_free_at[row] = span.end
                break
        else:
            rows[index] = len(row_free_at)
            row_free_at.append(span.end)
    return rows


def _meta_args(span: Span) -> Dict[str, Any]:
    # Keep args JSON-clean: stringify anything exotic.
    args: Dict[str, Any] = {}
    for key, value in span.meta.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            args[key] = value
        else:
            args[key] = repr(value)
    return args


def tracer_to_chrome_trace(tracer: Tracer,
                           lanes: Optional[Sequence[str]] = None,
                           include_open: bool = False,
                           counters: Optional[CounterTracks] = None
                           ) -> Dict[str, Any]:
    """Convert recorded spans into a chrome://tracing JSON object.

    Each lane becomes one process (pid) so every device shows up as its
    own labelled row group; overlapping spans within a lane spread over
    thread rows (tid). Zero-duration spans become instant events.

    ``include_open=True`` additionally exports spans still open at
    export time as complete events truncated at the current engine
    clock (tagged ``"open": true``) — exporting mid-run or after an
    abort would otherwise silently drop everything in flight.
    ``counters`` adds counter tracks (``ph: "C"``), the shape the
    timeseries sampler produces via
    :meth:`repro.obs.timeseries.TimeSeriesSampler.chrome_counters`.
    """
    open_extra: Dict[str, List[Span]] = {}
    if include_open:
        now = tracer.engine.now
        for open_span in tracer.open_spans:
            meta = dict(open_span.meta)
            meta["open"] = True
            open_extra.setdefault(open_span.lane, []).append(
                Span(open_span.lane, open_span.name, open_span.start,
                     max(now, open_span.start), meta))
    lane_order = list(lanes) if lanes is not None else tracer.lanes()
    for lane in open_extra:
        if lanes is None and lane not in lane_order:
            lane_order.append(lane)
    events: List[Dict[str, Any]] = []
    for pid, lane in enumerate(lane_order, start=1):
        lane_spans = tracer.by_lane(lane) + open_extra.get(lane, [])
        durable = [s for s in lane_spans if s.duration > 0]
        instants = [s for s in lane_spans if s.duration <= 0]
        rows = _assign_rows(durable)
        n_rows = (max(rows) + 1) if rows else 1
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": lane}})
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
            "args": {"sort_index": pid}})
        events.extend({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": f"{lane}/row{tid}"}}
            for tid in range(n_rows))
        events.extend({
            "ph": "X",
            "name": span.name,
            "cat": lane,
            "pid": pid,
            "tid": row,
            "ts": span.start * _US_PER_MS,
            "dur": span.duration * _US_PER_MS,
            "args": _meta_args(span),
        } for span, row in zip(durable, rows, strict=True))
        events.extend({
            "ph": "i",
            "name": span.name,
            "cat": lane,
            "pid": pid,
            "tid": 0,
            "ts": span.start * _US_PER_MS,
            "s": "t",
            "args": _meta_args(span),
        } for span in instants)
    if counters:
        counter_pid = len(lane_order) + 1
        events.append({
            "ph": "M", "name": "process_name", "pid": counter_pid,
            "tid": 0, "args": {"name": "metrics"}})
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": counter_pid,
            "tid": 0, "args": {"sort_index": counter_pid}})
        for track in sorted(counters):
            events.extend({
                "ph": "C",
                "name": track,
                "pid": counter_pid,
                "tid": 0,
                "ts": t_ms * _US_PER_MS,
                "args": dict(values),
            } for t_ms, values in counters[track])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs.chrome_trace",
                      "time_unit": "simulated ms (exported as us)"},
    }


def write_chrome_trace(tracer: Tracer, path: PathLike,
                       lanes: Optional[Sequence[str]] = None,
                       include_open: bool = False,
                       counters: Optional[CounterTracks] = None) -> str:
    """Serialize the trace to ``path``; returns the JSON text."""
    text = json.dumps(tracer_to_chrome_trace(
        tracer, lanes=lanes, include_open=include_open,
        counters=counters))
    Path(path).write_text(text, encoding="utf-8")
    return text


def validate_chrome_trace(payload: Dict[str, Any]) -> List[str]:
    """Schema sanity check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "C"):
            problems.append(f"event {index}: unknown ph {ph!r}")
            continue
        if "pid" not in event or "tid" not in event:
            problems.append(f"event {index}: missing pid/tid")
        if ph in ("X", "i", "C") and "ts" not in event:
            problems.append(f"event {index}: missing ts")
        if ph == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"event {index}: counter missing args")
        if ph == "X" and "dur" not in event:
            problems.append(f"event {index}: missing dur")
        if "name" not in event:
            problems.append(f"event {index}: missing name")
    return problems
