"""Utilization accounting for the multiprocessing experiment harness.

The simulator's thread pools publish ``pool.*`` metrics in simulated
time; the experiment *runner*'s process pool lives in real wall-clock
time, so it gets its own small accounting object. The runner records
one entry per experiment task and reports how busy the worker slots
were — the "did --jobs N actually help" number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class ProcPoolStats:
    """Wall-clock task accounting for one process-pool run."""

    jobs: int
    tasks: List[Tuple[str, float]] = field(default_factory=list)

    def record(self, name: str, wall_s: float) -> None:
        self.tasks.append((name, float(wall_s)))

    @property
    def busy_s(self) -> float:
        """Total worker-seconds spent executing tasks."""
        return sum(wall for _name, wall in self.tasks)

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of worker-slot capacity that was busy."""
        if elapsed_s <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_s / (elapsed_s * self.jobs))

    def to_registry(self, registry) -> None:
        """Publish counters/gauges into a :class:`MetricsRegistry`."""
        registry.gauge("procpool.jobs", "worker processes").set(self.jobs)
        counter = registry.counter("procpool.tasks_total",
                                   "experiment tasks executed")
        counter.inc(len(self.tasks))
        registry.counter("procpool.busy_ms_total",
                         "worker wall-clock ms spent in tasks").inc(
                             self.busy_s * 1e3)

    def render(self, elapsed_s: float) -> str:
        """Human-readable report (the runner prints this to stderr)."""
        lines = [
            f"pool: {self.jobs} worker(s), {len(self.tasks)} task(s), "
            f"wall {elapsed_s:.2f}s, busy {self.busy_s:.2f}s, "
            f"utilization {100.0 * self.utilization(elapsed_s):.0f}%"
        ]
        lines.extend(
            f"  {name}: {wall:.2f}s"
            for name, wall in sorted(self.tasks, key=lambda t: -t[1]))
        return "\n".join(lines)
