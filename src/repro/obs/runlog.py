"""Structured run logging: sim-timestamped scheduler decisions as JSONL.

Every consequential runtime decision (job admitted, preemption fired,
migration chosen, state transfer completed, job crashed/finished) is
appended as one JSON-serializable record. The log is the narrative
companion to the metrics registry: metrics say *how much*, the run log
says *what happened, in order*.

Records are plain dicts ``{"t_ms": <sim ms>, "event": <str>, ...}`` so
they stream straight to JSON Lines for offline analysis (``jq``,
pandas) via :meth:`RunLog.to_jsonl` / :meth:`RunLog.write`.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

PathLike = Union[str, Path]


class RunLog:
    """Append-only, sim-time-stamped event log for one run."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True) -> None:
        self._clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.records: List[Dict[str, Any]] = []

    def emit(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Record one event; non-JSON-native values are repr()'d."""
        if not self.enabled:
            return None
        record: Dict[str, Any] = {"t_ms": round(self._clock(), 6),
                                  "event": event}
        for key, value in fields.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                record[key] = value
            else:
                record[key] = repr(value)
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    def filter(self, event: Optional[str] = None,
               **fields: Any) -> List[Dict[str, Any]]:
        """Records matching an event name and/or field values."""
        out = []
        for record in self.records:
            if event is not None and record.get("event") != event:
                continue
            if any(record.get(k) != v for k, v in fields.items()):
                continue
            out.append(record)
        return out

    def count(self, event: str, **fields: Any) -> int:
        return len(self.filter(event, **fields))

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(r, sort_keys=False)
                         for r in self.records) + ("\n" if self.records
                                                   else "")

    def write(self, path: PathLike, append: bool = False) -> str:
        """Write the log as JSONL; ``append=True`` adds to an existing file.

        Append mode is how incremental sinks (and retried runs) build
        one artifact across several flushes without clobbering earlier
        records.
        """
        text = self.to_jsonl()
        with Path(path).open("a" if append else "w",
                             encoding="utf-8") as fh:
            fh.write(text)
        return text

    @contextmanager
    def sink(self, path: PathLike) -> Iterator["RunLog"]:
        """Context manager guaranteeing a JSONL artifact at ``path``.

        The log is flushed to disk on exit **including exceptional
        exit**, so an aborted or faulted run still leaves everything
        emitted up to the failure point — exactly when the artifact is
        most needed. The file is truncated on entry so a crashed run
        can't be confused with a stale previous one.
        """
        Path(path).write_text("", encoding="utf-8")
        try:
            yield self
        finally:
            self.write(path, append=True)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"<RunLog {len(self.records)} records>"
