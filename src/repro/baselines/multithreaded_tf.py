"""Multi-threaded TensorFlow baseline: unrestricted GPU sharing.

The paper's primary baseline (Section 5.1, variant i): multiple models
run as Python threads inside one TF instance and launch kernels freely
onto the shared GPU. Nothing is gated, so models contend on the device
(Figure 2's serialization and slowdown) and on memory — when the two
jobs' transient demands overlap past device capacity, one of them dies
with an OOM error exactly as the paper observes in Figure 7(a)(b).
"""

from __future__ import annotations

from repro.core.policy import SchedulingPolicy


class MultiThreadedTF(SchedulingPolicy):
    """Free-for-all sharing: every grant is immediate.

    All behaviour of interest (kernel interleaving, contention slowdown,
    OOM crashes) emerges from the hardware model underneath — this
    policy simply never says no, which is precisely the baseline's
    failure mode.
    """

    fused_sessions = False
    # Sharing-by-design: cross-job kernel overlap on one GPU is the
    # point, so the sanitizer's mutual-exclusion check is waived.
    exclusive_gpu = False
