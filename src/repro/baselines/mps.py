"""NVIDIA MPS baseline: one process per model, merged GPU contexts.

Kernels from both processes co-schedule on the device exactly as in the
multi-threaded baseline (MPS merges contexts; the contention physics is
the same). The difference is memory: each model is a separate TF
*process* with its own allocator, so allocations are never shared or
phase-interleaved.

Two reservation modes mirror TF-process reality:

* ``reserve='default'`` — TF's default greedy mapping: each process
  grabs (almost) the whole GPU at startup. The second process dies
  instantly on 11 GB GPUs — the paper's "all models crash under MPS on
  the 1080 Ti and 2080 Ti".
* ``reserve='growth'`` — allow_growth-style: each process reserves its
  own peak demand up front. Co-training completes on the 32 GB V100
  (Figure 7(c)) but still crashes where the summed peaks exceed 11 GB.
"""

from __future__ import annotations

from repro.core.context import RunContext
from repro.core.job import JobHandle
from repro.core.policy import ComputeGrant, SchedulingPolicy

# Fraction of device memory TF's default configuration maps per process.
_DEFAULT_GREEDY_FRACTION = 0.95


class MPSPolicy(SchedulingPolicy):
    """Free-for-all compute plus per-process memory reservation."""

    fused_sessions = False
    # MPS shares the device spatially between processes by design.
    exclusive_gpu = False

    def __init__(self, ctx: RunContext, reserve: str = "growth") -> None:
        super().__init__(ctx)
        if reserve not in ("growth", "default"):
            raise ValueError(f"unknown reserve mode {reserve!r}")
        self.reserve = reserve

    def register_job(self, job: JobHandle) -> None:
        """Admit the job and make its process-level memory reservation.

        Raises :class:`~repro.hw.memory.OutOfMemoryError` when the
        reservation does not fit — the caller records the crash.
        """
        super().register_job(job)
        device = self.ctx.machine.device(job.assigned_device)
        if self.reserve == "default":
            nbytes = int(device.memory.capacity_bytes
                         * _DEFAULT_GREEDY_FRACTION)
        else:
            nbytes = job.session.transient_bytes
        try:
            device.memory.allocate(job.name, "process-reservation", nbytes)
        except Exception:
            self.unregister_job(job)
            raise

    def acquire_compute(self, job: JobHandle):
        yield self.ctx.resources.ensure_state(job.name, job.assigned_device)
        return ComputeGrant(job.assigned_device, self.pool_for(job),
                            preallocated=True)

    def unregister_job(self, job: JobHandle) -> None:
        device = self.ctx.machine.device(job.assigned_device)
        device.memory.free_owner(job.name, "process-reservation")
        super().unregister_job(job)
