"""Baseline GPU-sharing strategies the paper compares against."""

from repro.baselines.mps import MPSPolicy
from repro.baselines.multithreaded_tf import MultiThreadedTF
from repro.baselines.timeslicing import SessionTimeSlicing

__all__ = ["MPSPolicy", "MultiThreadedTF", "SessionTimeSlicing"]
