"""Session-based time slicing baseline (Gandiva-style).

The paper's variant (ii): models take turns; during a job's turn it has
exclusive access to **both** CPU and GPU for one whole session run
(Section 2.2: "session-based time slicing dedicates the entire pipeline
to one DL job"). There is no preemption — a higher-priority job jumps
the queue but still waits for the running session to finish, which is
why inference tail latency under this baseline is bounded below by a
full training iteration (Section 5.2.1).
"""

from __future__ import annotations

from typing import Dict

from repro.core.context import RunContext
from repro.core.gate import DeviceGate
from repro.core.job import JobHandle
from repro.core.policy import ComputeGrant, SchedulingPolicy


class _SliceTicket:
    """Gate-visible stand-in for a job, with a policy-chosen priority."""

    __slots__ = ("name", "priority")

    def __init__(self, name: str, priority: int) -> None:
        self.name = name
        self.priority = priority


class SessionTimeSlicing(SchedulingPolicy):
    """Whole-machine round-robin at session granularity."""

    fused_sessions = True
    # One job owns the whole machine per slice, so the per-GPU
    # cross-job exclusion invariant holds by construction.
    exclusive_gpu = True

    def __init__(self, ctx: RunContext,
                 respect_priority: bool = True) -> None:
        super().__init__(ctx)
        self.respect_priority = respect_priority
        self._machine_gate = DeviceGate(ctx.engine, "machine",
                                        metrics=ctx.metrics,
                                        runlog=ctx.runlog)
        self._tickets: Dict[str, _SliceTicket] = {}

    def register_job(self, job: JobHandle) -> None:
        super().register_job(job)
        priority = job.priority if self.respect_priority else 0
        self._tickets[job.name] = _SliceTicket(job.name, priority)

    def acquire_pipeline(self, job: JobHandle):
        """The slice covers the CPU stage too: take the machine lock."""
        yield self._machine_gate.request(self._tickets[job.name])

    def release_pipeline(self, job: JobHandle) -> None:
        # The slice ends only when BOTH the compute stage and any
        # intra-slice prefetch have finished — strict exclusivity.
        self._machine_gate.release(self._tickets[job.name])

    def acquire_compute(self, job: JobHandle):
        # Already inside the slice; just make sure weights are resident.
        yield self.ctx.resources.ensure_state(job.name, job.assigned_device)
        return ComputeGrant(job.assigned_device, self.pool_for(job))

    def release_compute(self, job: JobHandle, grant: ComputeGrant,
                        outcome: str) -> None:
        return  # the machine gate is released at release_pipeline
