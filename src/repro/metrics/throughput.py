"""Throughput accounting for training/inference jobs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class JobStats:
    """Per-job progress record, filled in by the workload drivers."""

    job: str
    batch: int
    started_at: float = 0.0
    finished_at: Optional[float] = None
    iteration_times_ms: List[float] = field(default_factory=list)
    #: (start, end) simulated-time window of each iteration — the
    #: "session" windows the Figure 3 busy/idle analysis needs.
    iteration_spans: List[Tuple[float, float]] = field(default_factory=list)
    crashed: bool = False
    crash_reason: Optional[str] = None
    preemptions: int = 0
    migrations: int = 0

    @property
    def iterations(self) -> int:
        return len(self.iteration_times_ms)

    def record_iteration(self, duration_ms: float) -> None:
        if duration_ms < 0:
            raise ValueError("iteration duration cannot be negative")
        self.iteration_times_ms.append(duration_ms)

    def throughput_items_per_s(self, warmup: int = 0) -> float:
        """Steady-state items/second, skipping ``warmup`` iterations."""
        samples = self.iteration_times_ms[warmup:]
        if not samples:
            return 0.0
        total_ms = sum(samples)
        if total_ms <= 0:
            return 0.0
        return len(samples) * self.batch / (total_ms / 1000.0)

    def throughput_after(self, t_ms: float) -> float:
        """items/second over iterations that started at or after t_ms.

        Used to measure a preempted job's post-migration throughput
        without diluting it with its pre-preemption iterations.
        """
        durations = [end - start for start, end in self.iteration_spans
                     if start >= t_ms]
        total_ms = sum(durations)
        if total_ms <= 0:
            return 0.0
        return len(durations) * self.batch / (total_ms / 1000.0)

    def mean_iteration_ms(self, warmup: int = 0) -> float:
        samples = self.iteration_times_ms[warmup:]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def __str__(self) -> str:
        status = "CRASHED" if self.crashed else f"{self.iterations} iters"
        return (f"{self.job}: {status}, "
                f"{self.throughput_items_per_s(warmup=1):.1f} items/s")


def improvement_percent(baseline_items_per_s: float,
                        improved_items_per_s: float) -> float:
    """Throughput improvement, as the paper reports it (Figs 8-10)."""
    if baseline_items_per_s <= 0:
        raise ValueError("baseline throughput must be positive")
    return (improved_items_per_s / baseline_items_per_s - 1.0) * 100.0
