"""Latency statistics: percentiles and summaries over sample sets."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


def percentile(samples: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (numpy 'linear' method).

    ``pct`` is in [0, 100]. Raises on an empty sample set — callers
    should treat that as "experiment produced no data", not zero.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    return percentile_sorted(sorted(samples), pct)


def percentile_sorted(ordered: Sequence[float], pct: float) -> float:
    """:func:`percentile` over an ALREADY-SORTED sample sequence.

    The hot path for histogram quantile queries: callers that keep a
    sorted view (e.g. :class:`repro.obs.metrics.Histogram`) skip the
    O(n log n) re-sort every query would otherwise pay.
    """
    if not ordered:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    value = ordered[low] * (1 - fraction) + ordered[high] * fraction
    # Clamp away float-rounding excursions outside the bracket.
    return min(max(value, ordered[low]), ordered[high])


@dataclass(frozen=True)
class LatencySummary:
    """The latency digest the paper reports (Figure 6 uses p95)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencySummary":
        values: List[float] = list(samples)
        if not values:
            raise ValueError("cannot summarise zero latency samples")
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            maximum=max(values),
        )

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f}ms p50={self.p50:.1f}ms "
                f"p95={self.p95:.1f}ms p99={self.p99:.1f}ms "
                f"max={self.maximum:.1f}ms")
