"""Measurement utilities: latency percentiles, throughput, GPU idling."""

from repro.metrics.latency import LatencySummary, percentile
from repro.metrics.throughput import JobStats, improvement_percent
from repro.metrics.timeline import (
    SessionBreakdown,
    gpu_busy_in_window,
    mean_breakdown,
    serialization_fraction,
    session_breakdown,
)

__all__ = [
    "JobStats",
    "LatencySummary",
    "SessionBreakdown",
    "gpu_busy_in_window",
    "improvement_percent",
    "mean_breakdown",
    "percentile",
    "serialization_fraction",
    "session_breakdown",
]
