"""Timeline post-processing: GPU busy/idle accounting (Figures 2-3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import Span, Tracer


@dataclass(frozen=True)
class SessionBreakdown:
    """One session's GPU-time accounting (the Figure 3 quantities)."""

    session_ms: float
    gpu_busy_ms: float

    @property
    def gpu_idle_ms(self) -> float:
        return max(0.0, self.session_ms - self.gpu_busy_ms)

    @property
    def gpu_busy_fraction(self) -> float:
        if self.session_ms <= 0:
            return 0.0
        return min(1.0, self.gpu_busy_ms / self.session_ms)

    @property
    def gpu_idle_percent(self) -> float:
        return 100.0 * (1.0 - self.gpu_busy_fraction)


def gpu_busy_in_window(tracer: Tracer, gpu_lane: str, start: float,
                       end: float, context: Optional[str] = None) -> float:
    """Unioned GPU-busy time within [start, end], optionally per job."""
    intervals: List[Tuple[float, float]] = []
    for span in tracer.spans:
        if span.lane != gpu_lane:
            continue
        if context is not None and span.meta.get("context") != context:
            continue
        if span.end <= start or span.start >= end:
            continue
        intervals.append((max(span.start, start), min(span.end, end)))
    intervals.sort()
    busy = 0.0
    cursor = start
    for low, high in intervals:
        if high <= cursor:
            continue
        busy += high - max(low, cursor)
        cursor = max(cursor, high)
    return busy


def session_breakdown(tracer: Tracer, gpu_lane: str, start: float,
                      end: float,
                      context: Optional[str] = None) -> SessionBreakdown:
    """Figure 3 measurement: session length vs. GPU busy time within it."""
    return SessionBreakdown(
        session_ms=end - start,
        gpu_busy_ms=gpu_busy_in_window(tracer, gpu_lane, start, end,
                                       context=context))


def mean_breakdown(breakdowns: List[SessionBreakdown]) -> SessionBreakdown:
    if not breakdowns:
        raise ValueError("no session breakdowns to average")
    return SessionBreakdown(
        session_ms=sum(b.session_ms for b in breakdowns) / len(breakdowns),
        gpu_busy_ms=sum(b.gpu_busy_ms for b in breakdowns) / len(breakdowns),
    )


def serialization_fraction(tracer: Tracer, gpu_lane: str,
                           contexts: Tuple[str, str],
                           start: float = 0.0,
                           end: Optional[float] = None) -> float:
    """Of the GPU's total busy time, the fraction with ONE context active.

    The Figure 2 diagnostic: values near 1.0 mean the two co-located
    models effectively serialized on the device.
    """
    if end is None:
        # Cover everything recorded, even when spans were injected
        # without advancing the simulated clock.
        latest = max((span.end for span in tracer.spans
                      if span.lane == gpu_lane), default=0.0)
        end = max(tracer.engine.now, latest)
    spans_a = _context_spans(tracer, gpu_lane, contexts[0], start, end)
    spans_b = _context_spans(tracer, gpu_lane, contexts[1], start, end)
    busy_a = _union_length(spans_a)
    busy_b = _union_length(spans_b)
    overlap = _pairwise_overlap(spans_a, spans_b)
    total = busy_a + busy_b - overlap
    if total <= 0:
        return 0.0
    return 1.0 - overlap / total


def _context_spans(tracer: Tracer, lane: str, context: str, start: float,
                   end: float) -> List[Tuple[float, float]]:
    return sorted(
        (max(span.start, start), min(span.end, end))
        for span in tracer.spans
        if span.lane == lane and span.meta.get("context") == context
        and span.end > start and span.start < end)


def _union_length(intervals: List[Tuple[float, float]]) -> float:
    total = 0.0
    cursor = None
    for low, high in intervals:
        if cursor is None or low > cursor:
            total += high - low
            cursor = high
        elif high > cursor:
            total += high - cursor
            cursor = high
    return total


def _pairwise_overlap(a: List[Tuple[float, float]],
                      b: List[Tuple[float, float]]) -> float:
    """Total overlap between two sorted interval lists (sorted merge).

    ``index_b`` skips intervals of ``b`` that end before the current
    ``a`` interval starts; since both lists are sorted by start, those
    can never overlap any later ``a`` interval either.
    """
    overlap = 0.0
    index_b = 0
    for low_a, high_a in a:
        while index_b < len(b) and b[index_b][1] <= low_a:
            index_b += 1
        for low_b, high_b in b[index_b:]:
            if low_b >= high_a:
                break
            lap = min(high_a, high_b) - max(low_a, low_b)
            if lap > 0:
                overlap += lap
    return overlap
