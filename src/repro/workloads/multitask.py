"""Multi-task learning with shared input preprocessing (Section 3.4).

Implements the paper's merged-graph execution: a *master* model owns the
input pipeline; *secondary* models link their recv nodes to the master's
tensor, which SwitchFlow keeps as an immutable copy in GPU memory. The
schedule is the paper's strict lockstep: shared CPU preprocessing, then
each model's GPU executor in round-robin, before moving to the next
batch. The shared pipeline may still prefetch the next batch while the
GPU executors drain the current one (tf.data keeps running underneath).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.context import RunContext
from repro.hw.memory import OutOfMemoryError
from repro.metrics.throughput import JobStats
from repro.models.base import ModelSpec
from repro.runtime.session import Session
from repro.sim.resources import Store


@dataclass
class MultiTaskResult:
    """Outcome of a lockstep input-reuse run."""

    ctx: RunContext
    #: Completion time of each lockstep round (all models, one batch).
    round_times_ms: List[float] = field(default_factory=list)
    stats: Dict[str, JobStats] = field(default_factory=dict)

    def rounds(self) -> int:
        return len(self.round_times_ms)

    def mean_round_ms(self, warmup: int = 0) -> float:
        samples = self.round_times_ms[warmup:]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def items_per_second(self, batch: int, warmup: int = 0) -> float:
        """Per-model item throughput (each model sees every batch)."""
        mean = self.mean_round_ms(warmup)
        if mean <= 0:
            return 0.0
        return batch / (mean / 1000.0)


def run_multitask(ctx: RunContext, models: List[ModelSpec], batch: int,
                  training: bool, iterations: int,
                  gpu_index: int = 0, prefetch: bool = True,
                  data_workers: int = 32) -> MultiTaskResult:
    """Run ``models`` in lockstep over a shared input pipeline."""
    if not models:
        raise ValueError("need at least one model")
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    gpu = ctx.machine.gpu(gpu_index)
    pool = ctx.global_pool

    sessions: List[Session] = []
    for index, model in enumerate(models):
        job_name = f"mt{index}/{model.name}"
        sessions.append(Session(
            machine=ctx.machine, model=model, batch=batch,
            training=training, job=job_name, rendezvous=ctx.rendezvous,
            resources=ctx.resources, rng=ctx.rng,
            include_pipeline=(index == 0), data_workers=data_workers))
    master = sessions[0]

    result = MultiTaskResult(ctx=ctx)
    for session in sessions:
        result.stats[session.job] = JobStats(job=session.job, batch=batch)

    def _producer(buffer: Store):
        from repro.sim.errors import Interrupted

        try:
            for iteration in range(iterations):
                yield from master.run_cpu_stage(
                    ctx.data_pool_for(master.job), iteration)
                yield buffer.put(iteration)
        except Interrupted:
            return

    def _lockstep():
        for session in sessions:
            yield ctx.resources.ensure_state(session.job, gpu.name)
        buffer = Store(ctx.engine, capacity=2 if prefetch else 1)
        producer = ctx.engine.process(_producer(buffer), name="mt/producer")
        try:
            for iteration in range(iterations):
                round_start = ctx.engine.now
                yield buffer.get()
                for index, session in enumerate(sessions):
                    # Secondary models reuse the master's device-resident
                    # input: their recv nodes are pre-satisfied, so they
                    # pay no preprocessing and no HtoD copy.
                    completed = (set() if index == 0
                                 else set(session.recv_node_ids))
                    run = session.start_gpu_stage(
                        pool, gpu.name, iteration, completed=completed)
                    outcome = yield run.done
                    session.finish_gpu_stage(run, iteration)
                    if outcome != "completed":
                        raise RuntimeError(
                            f"lockstep run of {session.job} ended "
                            f"{outcome!r}")
                    result.stats[session.job].record_iteration(
                        ctx.engine.now - round_start)
                result.round_times_ms.append(ctx.engine.now - round_start)
        finally:
            if producer.is_alive:
                producer.interrupt("lockstep finished")
            for session in sessions:
                session.release()

    driver = ctx.engine.process(_lockstep(), name="mt/lockstep")
    try:
        ctx.engine.run(until=driver)
    except OutOfMemoryError:
        raise
    return result
