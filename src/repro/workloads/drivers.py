"""Job drivers: the processes that push work through the policies.

A driver owns one job end-to-end: registration, the per-iteration loop,
crash handling, and stats. Two loop shapes exist:

* **pipelined** — tf.data semantics: a producer process runs the CPU
  input pipeline into a small prefetch buffer while the consumer runs
  compute stages, re-acquiring the device after any preemption-induced
  abort (SwitchFlow / multi-threaded TF / MPS).
* **fused** — session-based time slicing: each iteration executes CPU
  stage then GPU stage atomically inside the machine-wide slice.
"""

from __future__ import annotations

from typing import Optional

from repro.core.job import JobHandle
from repro.core.policy import SchedulingPolicy
from repro.faults.recovery import InjectedJobCrash, backoff_ms
from repro.hw.memory import OutOfMemoryError
from repro.sim.events import Event
from repro.sim.resources import Store

PREFETCH_DEPTH = 2


class JobDriver:
    """Runs one job under a policy for a fixed number of iterations."""

    def __init__(self, policy: SchedulingPolicy, job: JobHandle,
                 iterations: int, start_delay_ms: float = 0.0,
                 request_interval_ms: Optional[float] = None,
                 stop_event: Optional[Event] = None) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.policy = policy
        self.ctx = policy.ctx
        self.job = job
        self.iterations = iterations
        self.start_delay_ms = start_delay_ms
        # Open-loop inference: request i arrives at start + i*interval;
        # latency then includes queueing. None = closed loop.
        self.request_interval_ms = request_interval_ms
        # Optional external stop signal (e.g. "background job runs until
        # the foreground stream completes").
        self.stop_event = stop_event
        self.process = None
        self._metrics = self.ctx.metrics
        self._runlog = self.ctx.runlog
        # Restart-from-checkpoint state (active only under fault
        # injection): the first iteration a restart resumes from, and
        # how many restarts this job has already consumed.
        self._checkpoint = 0
        self._restarts = 0

    # ------------------------------------------------------------------
    def start(self):
        """Spawn the driver process; returns it (an awaitable event)."""
        self.process = self.ctx.engine.process(
            self._main(), name=f"driver/{self.job.name}")
        return self.process

    def _stopped(self) -> bool:
        return self.stop_event is not None and self.stop_event.triggered

    def _main(self):
        if self.start_delay_ms > 0:
            yield self.ctx.engine.timeout(self.start_delay_ms)
        try:
            self.policy.register_job(self.job)
        except OutOfMemoryError as exc:
            self._runlog.emit("job_crashed", job=self.job.name,
                              reason=str(exc), phase="register")
            self.policy.on_job_crashed(self.job, str(exc))
            return
        self.job.stats.started_at = self.ctx.engine.now
        self._runlog.emit("job_started", job=self.job.name,
                          model=self.job.model.name,
                          device=self.job.assigned_device,
                          priority=self.job.priority,
                          kind=self.job.kind)
        try:
            yield from self._run_with_restarts()
        except OutOfMemoryError as exc:
            self._runlog.emit("job_crashed", job=self.job.name,
                              reason=str(exc), phase="run")
            self.policy.on_job_crashed(self.job, str(exc))
        except InjectedJobCrash as exc:
            self._runlog.emit("job_crashed", job=self.job.name,
                              reason=str(exc), phase="run")
            self.policy.on_job_crashed(self.job, str(exc))
        finally:
            self.job.stats.finished_at = self.ctx.engine.now
            self._runlog.emit(
                "job_finished", job=self.job.name,
                iterations=len(self.job.stats.iteration_times_ms),
                crashed=self.job.stats.crashed)
            self.policy.unregister_job(self.job)

    def _run_with_restarts(self):
        """Run the iteration loop; crashes restart from the checkpoint.

        Without a fault injector attached this is exactly the old
        single-attempt behavior: the first crash propagates. With one,
        the job restarts from its last checkpointed iteration after a
        capped-exponential delay, up to ``recovery.max_restarts`` times.
        """
        engine = self.ctx.engine
        while True:
            try:
                if self.policy.fused_sessions:
                    yield from self._fused_loop(self._checkpoint)
                else:
                    yield from self._pipelined_loop(self._checkpoint)
                return
            except (OutOfMemoryError, InjectedJobCrash) as exc:
                injector = self.ctx.faults
                if injector is None or (self._restarts
                                        >= injector.recovery.max_restarts):
                    raise
                self._restarts += 1
                crashed_at = engine.now
                kind = ("job_crash" if isinstance(exc, InjectedJobCrash)
                        else "oom")
                self._runlog.emit(
                    "job_restarting", job=self.job.name,
                    reason=str(exc), restart=self._restarts,
                    from_iteration=self._checkpoint)
                recovery = injector.recovery
                yield engine.timeout(backoff_ms(
                    self._restarts - 1, recovery.restart_delay_ms,
                    16 * recovery.restart_delay_ms))
                injector.record_recovery(
                    kind, engine.now - crashed_at, job=self.job.name,
                    restart=self._restarts,
                    from_iteration=self._checkpoint)

    def _maybe_crash(self) -> None:
        """Raise an injected crash if the plan demands one.

        Only consulted at iteration starts — the job's safe points: no
        gate held, no run in flight — so injected crashes can never
        corrupt the invariants the sanitizer checks.
        """
        injector = self.ctx.faults
        if injector is None:
            return
        reason = injector.crash_requested(self.job.name)
        if reason is not None:
            raise InjectedJobCrash(self.job.name, reason)

    def _record_iteration(self, iter_start: float,
                          iteration: int) -> None:
        engine = self.ctx.engine
        self.job.stats.record_iteration(engine.now - iter_start)
        self.job.stats.iteration_spans.append((iter_start, engine.now))
        self._metrics.histogram(
            "job.iteration_ms", "end-to-end iteration latency",
            job=self.job.name).observe(engine.now - iter_start)
        injector = self.ctx.faults
        if injector is not None:
            interval = injector.recovery.checkpoint_interval
            if (iteration + 1) % interval == 0:
                self._checkpoint = iteration + 1
                self._runlog.emit("checkpoint", job=self.job.name,
                                  iteration=iteration + 1)

    def _acquire_compute(self):
        """Policy acquire with the wait observed (gated or not)."""
        started = self.ctx.engine.now
        grant = yield from self.policy.acquire_compute(self.job)
        self._metrics.histogram(
            "sched.acquire_wait_ms",
            "time blocked acquiring the compute stage",
            job=self.job.name).observe(self.ctx.engine.now - started)
        return grant

    # ------------------------------------------------------------------
    # Fused sessions (time slicing)
    # ------------------------------------------------------------------
    def _fused_loop(self, start: int = 0):
        """Session-slice loop with *intra-slice* prefetch.

        The job owns both CPU and GPU for the whole slice, so while its
        GPU stage runs it legitimately preprocesses the NEXT batch on
        the CPU it exclusively holds. Across slices nothing overlaps —
        another job owns the machine then. This is the strongest
        reasonable reading of the paper's baseline; without it the
        baseline pays CPU+GPU serially and every comparison in
        Figures 8-10 would flatter SwitchFlow.
        """
        job, policy = self.job, self.policy
        session = job.session
        engine = self.ctx.engine
        data_pool = self.ctx.data_pool_for(job.name)
        stream_start = engine.now
        prefetched = start - 1  # highest iteration whose batch is ready
        for iteration in range(start, self.iterations):
            if self._stopped():
                return
            self._maybe_crash()
            if self.request_interval_ms is not None:
                arrival = (stream_start + (iteration - start)
                           * self.request_interval_ms)
                if engine.now < arrival:
                    yield engine.timeout(arrival - engine.now)
                iter_start = arrival
            else:
                iter_start = engine.now
            yield from policy.acquire_pipeline(job)
            try:
                if prefetched < iteration:
                    yield from session.run_cpu_stage(data_pool, iteration)
                    prefetched = iteration
                grant = yield from self._acquire_compute()
                stages = [engine.process(
                    self._compute_once(iteration, grant),
                    name=f"{job.name}/slice-compute")]
                if iteration + 1 < self.iterations:
                    stages.append(engine.process(
                        session.run_cpu_stage(data_pool, iteration + 1),
                        name=f"{job.name}/slice-prefetch"))
                    prefetched = iteration + 1
                yield engine.all_of(stages)
            finally:
                policy.release_pipeline(job)
            self._record_iteration(iter_start, iteration)

    def _compute_once(self, iteration: int, grant):
        """One gated compute run (fused mode has no preemption)."""
        job, policy = self.job, self.policy
        try:
            run = job.session.start_gpu_stage(
                grant.pool, grant.device_name, iteration,
                preallocated=grant.preallocated)
        except OutOfMemoryError:
            policy.release_compute(job, grant, "oom")
            raise
        outcome = yield run.done
        job.session.finish_gpu_stage(run, iteration)
        policy.release_compute(job, grant, outcome)

    # ------------------------------------------------------------------
    # Pipelined sessions (tf.data prefetch semantics)
    # ------------------------------------------------------------------
    def _pipelined_loop(self, start: int = 0):
        job, policy = self.job, self.policy
        engine = self.ctx.engine
        buffer = Store(engine, capacity=PREFETCH_DEPTH)
        producer = engine.process(
            self._producer(buffer, start), name=f"prefetch/{job.name}")
        stream_start = engine.now
        try:
            for iteration in range(start, self.iterations):
                if self._stopped():
                    return
                self._maybe_crash()
                cycle_start = engine.now
                yield buffer.get()
                if self.request_interval_ms is not None:
                    # Open loop: latency is measured from the request's
                    # scheduled arrival, so backlog shows up as queueing.
                    arrival = (stream_start + (iteration - start)
                               * self.request_interval_ms)
                    if engine.now < arrival:
                        yield engine.timeout(arrival - engine.now)
                    iter_start = arrival
                else:
                    # Closed loop: the input-pipeline wait is part of the
                    # session, as the paper's Figure 3 methodology counts.
                    iter_start = cycle_start
                yield from self._compute_until_done(iteration)
                self._record_iteration(iter_start, iteration)
        finally:
            if producer.is_alive:
                producer.interrupt("driver finished")

    def _producer(self, buffer: Store, start: int = 0):
        from repro.sim.errors import Interrupted

        job, policy = self.job, self.policy
        try:
            for iteration in range(start, self.iterations):
                if self._stopped():
                    return
                yield from policy.acquire_pipeline(job)
                try:
                    yield from job.session.run_cpu_stage(
                        self.ctx.data_pool_for(job.name), iteration)
                finally:
                    policy.release_pipeline(job)
                yield buffer.put(iteration)
        except Interrupted:
            return  # consumer finished first; nothing left to prefetch

    def _compute_until_done(self, iteration: int):
        """Run the compute stage, surviving preemption-induced aborts."""
        job, policy = self.job, self.policy
        completed = set()
        while True:
            grant = yield from self._acquire_compute()
            if job.assigned_device != grant.device_name:
                # Migrated while the grant was in flight: give the gate
                # back and chase the job to its new device.
                policy.release_compute(job, grant, "stale")
                continue
            try:
                run = job.session.start_gpu_stage(
                    grant.pool, grant.device_name, iteration,
                    completed=completed, preallocated=grant.preallocated)
            except OutOfMemoryError:
                policy.release_compute(job, grant, "oom")
                raise
            outcome = yield run.done
            completed |= run.completed
            job.session.finish_gpu_stage(run, iteration)
            policy.release_compute(job, grant, outcome)
            if outcome == "completed":
                return
