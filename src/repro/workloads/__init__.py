"""Workload drivers and co-location harnesses."""

from repro.workloads.colocation import (
    CollocationResult,
    JobSpec,
    run_colocation,
)
from repro.workloads.drivers import PREFETCH_DEPTH, JobDriver
from repro.workloads.multitask import MultiTaskResult, run_multitask

__all__ = [
    "CollocationResult",
    "JobDriver",
    "JobSpec",
    "MultiTaskResult",
    "PREFETCH_DEPTH",
    "run_colocation",
    "run_multitask",
]
