"""Co-location harness: run a set of jobs under one policy, collect stats.

This is the engine room of the Figure 6 / Figure 7 / Figure 10
experiments: a background job (usually training) plus one or more
foreground jobs (usually an inference stream), all sharing a machine
under the policy being evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.concurrency import (
    finalize_concurrency,
    maybe_attach_concurrency_from_env,
)
from repro.analysis.integration import enforce
from repro.core.context import RunContext
from repro.faults import maybe_attach_from_env
from repro.core.job import JobHandle
from repro.core.policy import SchedulingPolicy
from repro.metrics.latency import LatencySummary
from repro.metrics.throughput import JobStats
from repro.obs.timeseries import maybe_attach_timeseries_from_env
from repro.workloads.drivers import JobDriver


def dump_flight_record(ctx, reason, policy=None):
    """Deferred :func:`repro.obs.audit.dump_flight_record` (cold abort
    path; keeps ``python -m repro.obs.audit`` runpy-clean)."""
    from repro.obs import audit

    return audit.dump_flight_record(ctx, reason, policy=policy)

# Generous ceiling so a wedged experiment fails loudly instead of
# spinning forever (simulated hours, not wall time).
DEFAULT_HORIZON_MS = 3_600_000.0


@dataclass
class CollocationResult:
    """Everything an experiment needs after the simulation finishes."""

    ctx: RunContext
    stats: Dict[str, JobStats] = field(default_factory=dict)

    def job(self, name: str) -> JobStats:
        return self.stats[name]

    def latency_summary(self, name: str, warmup: int = 0) -> LatencySummary:
        samples = self.stats[name].iteration_times_ms[warmup:]
        return LatencySummary.from_samples(samples)

    def crashed_jobs(self) -> List[str]:
        return [name for name, stats in self.stats.items() if stats.crashed]


@dataclass
class JobSpec:
    """Declarative description of one driver for the harness."""

    job: JobHandle
    iterations: int
    start_delay_ms: float = 0.0
    request_interval_ms: Optional[float] = None
    #: When True, this driver keeps iterating only until every
    #: *foreground* (non-background) driver finishes.
    background: bool = False


def run_colocation(ctx: RunContext,
                   policy_factory: Callable[[RunContext], SchedulingPolicy],
                   specs: List[JobSpec],
                   horizon_ms: float = DEFAULT_HORIZON_MS
                   ) -> CollocationResult:
    """Run the co-location scenario to completion; returns the results.

    Background jobs are stopped (gracefully, at the next iteration
    boundary) once every foreground job has completed, mirroring the
    paper's methodology of measuring a foreground stream against a
    long-running background trainer.
    """
    if not specs:
        raise ValueError("no jobs to run")
    policy = policy_factory(ctx)
    # With $REPRO_FAULTS set (runner --faults), attach the fault plan —
    # unless the caller already attached one explicitly — and give its
    # clock faults the policy to act through.
    maybe_attach_from_env(ctx)
    if ctx.faults is not None:
        ctx.faults.bind_policy(policy)
    # Likewise $REPRO_TIMESERIES (runner --timeseries) arms windowed
    # metric sampling for the run.
    maybe_attach_timeseries_from_env(ctx)
    # And $REPRO_CONCURRENCY (runner --concurrency) attaches the
    # happens-before/lockset/deadlock tracker.
    maybe_attach_concurrency_from_env(ctx)
    stop_signal = ctx.engine.event()
    drivers: List[JobDriver] = [
        JobDriver(
            policy, spec.job, iterations=spec.iterations,
            start_delay_ms=spec.start_delay_ms,
            request_interval_ms=spec.request_interval_ms,
            stop_event=stop_signal if spec.background else None)
        for spec in specs]
    processes = [driver.start() for driver in drivers]

    foreground = [process for process, spec in zip(processes, specs,
                                                   strict=True)
                  if not spec.background]
    watched = foreground if foreground else processes

    def _watchdog():
        yield ctx.engine.all_of(watched)
        if not stop_signal.triggered:
            stop_signal.succeed()

    ctx.engine.process(_watchdog(), name="colocation-watchdog")
    done = ctx.engine.all_of(processes)
    deadline = ctx.engine.timeout(horizon_ms)
    ctx.engine.run(until=ctx.engine.any_of([done, deadline]))
    if not done.triggered:
        # Deadlock abort: capture the flight record (open spans,
        # pending decisions, gate state, concurrency waits) before
        # anything unwinds.
        dump_flight_record(ctx, "deadlock-abort", policy=policy)
        finalize_concurrency(ctx, label="deadlock-abort")
        raise RuntimeError(
            f"colocation scenario exceeded {horizon_ms} simulated ms")

    result = CollocationResult(ctx=ctx)
    for spec in specs:
        result.stats[spec.job.name] = spec.job.stats
        if spec.job not in ctx.jobs:
            ctx.jobs.append(spec.job)

    # With $REPRO_SANITIZE set (runner --sanitize), verify the paper's
    # trace invariants and the session graphs; ERROR findings raise.
    label = ",".join(spec.job.name for spec in specs)
    try:
        enforce(ctx, policy=policy,
                sessions=[spec.job.session for spec in specs],
                label=label)
    except Exception:
        dump_flight_record(ctx, "sanitization-error", policy=policy)
        raise
    finally:
        # Uninstall the tracker's hooks and (outside --sanitize, which
        # folds the findings into enforce's report) publish its report.
        finalize_concurrency(ctx, label=label)
    return result
