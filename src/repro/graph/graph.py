"""Computation graph structure: nodes, edges, topological utilities.

Graphs are DAGs of :class:`Node` objects, each wrapping an
:class:`~repro.graph.ops.OpDef` plus a device assignment. The structure
mirrors TF graph-mode: models build a full graph once, a placement pass
assigns devices, and a partition pass splits it into per-device
subgraphs joined by send/recv pairs (see :mod:`repro.graph.partition`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.graph.ops import OpDef

_node_ids = itertools.count(1)


class GraphError(Exception):
    """Structural problem in a computation graph."""


@dataclass
class Node:
    """One operation instance in a graph."""

    op: OpDef
    device: Optional[str] = None          # device name, set by placement
    node_id: int = field(default_factory=lambda: next(_node_ids))

    @property
    def name(self) -> str:
        return self.op.name

    @property
    def kind(self):
        return self.op.kind

    def __hash__(self) -> int:
        return self.node_id

    def __repr__(self) -> str:
        return (f"<Node #{self.node_id} {self.op.name!r} "
                f"{self.op.kind.value} on {self.device!r}>")


class Graph:
    """A directed acyclic graph of operations."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: Dict[int, Node] = {}
        self._successors: Dict[int, List[int]] = {}
        self._predecessors: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, op: OpDef, inputs: Iterable[Node] = (),
                 device: Optional[str] = None) -> Node:
        """Create a node for ``op`` wired after ``inputs``."""
        node = Node(op=op, device=device)
        self._nodes[node.node_id] = node
        self._successors[node.node_id] = []
        self._predecessors[node.node_id] = []
        for parent in inputs:
            self.add_edge(parent, node)
        return node

    def add_edge(self, src: Node, dst: Node) -> None:
        if src.node_id not in self._nodes or dst.node_id not in self._nodes:
            raise GraphError("both endpoints must belong to this graph")
        if dst.node_id in self._successors[src.node_id]:
            return
        self._successors[src.node_id].append(dst.node_id)
        self._predecessors[dst.node_id].append(src.node_id)

    def remove_node(self, node: Node) -> None:
        """Detach and delete ``node`` (edges through it are dropped)."""
        if node.node_id not in self._nodes:
            raise GraphError(f"{node!r} is not in graph {self.name!r}")
        for succ in self._successors.pop(node.node_id):
            self._predecessors[succ].remove(node.node_id)
        for pred in self._predecessors.pop(node.node_id):
            self._successors[pred].remove(node.node_id)
        del self._nodes[node.node_id]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __contains__(self, node: Node) -> bool:
        return node.node_id in self._nodes

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def successors(self, node: Node) -> List[Node]:
        return [self._nodes[i] for i in self._successors[node.node_id]]

    def predecessors(self, node: Node) -> List[Node]:
        return [self._nodes[i] for i in self._predecessors[node.node_id]]

    def in_degree(self, node: Node) -> int:
        return len(self._predecessors[node.node_id])

    def out_degree(self, node: Node) -> int:
        return len(self._successors[node.node_id])

    def sources(self) -> List[Node]:
        return [n for n in self if self.in_degree(n) == 0]

    def sinks(self) -> List[Node]:
        return [n for n in self if self.out_degree(n) == 0]

    def find(self, name: str) -> Node:
        for node in self:
            if node.op.name == name:
                return node
        raise KeyError(f"no node named {name!r} in graph {self.name!r}")

    def devices(self) -> Set[str]:
        return {n.device for n in self if n.device is not None}

    # ------------------------------------------------------------------
    # Algorithms
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Node]:
        """Kahn's algorithm; raises :class:`GraphError` on cycles."""
        in_deg = {nid: len(preds)
                  for nid, preds in self._predecessors.items()}
        ready = [nid for nid, deg in in_deg.items() if deg == 0]
        order: List[Node] = []
        while ready:
            nid = ready.pop(0)
            order.append(self._nodes[nid])
            for succ in self._successors[nid]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Check DAG-ness and edge symmetry; raises on inconsistency."""
        self.topological_order()
        for nid, succs in self._successors.items():
            for succ in succs:
                if nid not in self._predecessors[succ]:
                    raise GraphError("asymmetric edge bookkeeping")

    def total_flops(self) -> float:
        return sum(n.op.flops for n in self)

    def total_params_bytes(self) -> int:
        """Unique parameter bytes (shared ops counted once by op name)."""
        seen: Dict[str, int] = {}
        for node in self:
            if node.op.params_bytes:
                seen[node.op.name] = node.op.params_bytes
        return sum(seen.values())

    def subgraph(self, nodes: Iterable[Node], name: str = None) -> "Graph":
        """Induced subgraph over ``nodes`` (edges inside the set only).

        Node objects are shared with the parent graph; only the
        connectivity is copied.
        """
        sub = Graph(name or f"{self.name}/sub")
        keep = {n.node_id for n in nodes}
        for nid in keep:
            if nid not in self._nodes:
                raise GraphError("subgraph node not in parent graph")
            node = self._nodes[nid]
            sub._nodes[nid] = node
            sub._successors[nid] = [
                s for s in self._successors[nid] if s in keep]
            sub._predecessors[nid] = [
                p for p in self._predecessors[nid] if p in keep]
        return sub

    def __repr__(self) -> str:
        return f"<Graph {self.name!r} nodes={len(self)}>"
