"""Computation-graph IR: ops, graphs, placement, partitioning, passes."""

from repro.graph.builder import GraphBuilder, add_input_pipeline
from repro.graph.cost_model import (
    EXPENSIVE_THRESHOLD_MS,
    KernelCost,
    cpu_op_cost_ms,
    gpu_kernel_cost,
    is_expensive_on_cpu,
)
from repro.graph.graph import Graph, GraphError, Node
from repro.graph.ops import (
    CPU_PIPELINE_KINDS,
    REGISTER_BOUND_KINDS,
    OpDef,
    OpKind,
    cpu_efficiency,
    gpu_efficiency,
)
from repro.graph.optimize import (
    ancestors_of,
    count_kinds,
    fuse_elementwise,
    prune_dead_nodes,
)
from repro.graph.partition import Channel, Partition, partition_graph
from repro.graph.placement import place_graph, validate_placement

__all__ = [
    "CPU_PIPELINE_KINDS",
    "Channel",
    "EXPENSIVE_THRESHOLD_MS",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "KernelCost",
    "Node",
    "OpDef",
    "OpKind",
    "Partition",
    "REGISTER_BOUND_KINDS",
    "ancestors_of",
    "count_kinds",
    "cpu_efficiency",
    "cpu_op_cost_ms",
    "fuse_elementwise",
    "gpu_efficiency",
    "gpu_kernel_cost",
    "add_input_pipeline",
    "is_expensive_on_cpu",
    "partition_graph",
    "place_graph",
    "prune_dead_nodes",
    "validate_placement",
]
