"""Graph partitioning: one subgraph per device, joined by send/recv.

Reproduces TF session partitioning (Section 2.1): after placement, the
full graph is split so each executor owns exactly the nodes of one
device. Every cross-device edge becomes a (send, recv) pair wired to a
named rendezvous channel; the runtime moves the tensor over the machine's
link between the two devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.graph import Graph, GraphError, Node
from repro.graph.ops import OpDef, OpKind


@dataclass(frozen=True)
class Channel:
    """A cross-device tensor transfer created by partitioning."""

    key: str
    src_device: str
    dst_device: str
    nbytes: int


@dataclass
class Partition:
    """The result of partitioning one placed graph."""

    name: str
    subgraphs: Dict[str, Graph] = field(default_factory=dict)
    channels: List[Channel] = field(default_factory=list)

    @property
    def devices(self) -> List[str]:
        return list(self.subgraphs)

    def subgraph(self, device: str) -> Graph:
        try:
            return self.subgraphs[device]
        except KeyError:
            raise KeyError(
                f"partition {self.name!r} has no subgraph on {device!r}; "
                f"devices: {self.devices}") from None


def partition_graph(graph: Graph) -> Partition:
    """Split a placed graph into per-device subgraphs with send/recv.

    Node objects are *shared* between the original graph and the
    subgraphs (their connectivity is per-graph), so cost attributes stay
    in one place.
    """
    for node in graph:
        if node.device is None:
            raise GraphError(
                f"cannot partition unplaced graph: {node!r} has no device")

    partition = Partition(name=graph.name)
    for device in sorted(graph.devices()):
        sub = Graph(f"{graph.name}@{device}")
        partition.subgraphs[device] = sub

    # First pass: move every node into its device's subgraph.
    for node in graph.topological_order():
        sub = partition.subgraphs[node.device]
        sub._nodes[node.node_id] = node
        sub._successors[node.node_id] = []
        sub._predecessors[node.node_id] = []

    # Second pass: intra-device edges copy over; cross-device edges are
    # replaced by a send node (source side) and a recv node (dest side).
    seen_channels: Dict[Tuple[int, str], Tuple[Node, str]] = {}
    for node in graph.topological_order():
        src_sub = partition.subgraphs[node.device]
        for succ in graph.successors(node):
            if succ.device == node.device:
                src_sub.add_edge(node, succ)
                continue
            channel_id = (node.node_id, succ.device)
            if channel_id in seen_channels:
                # Tensor already shipped to that device: reuse the recv.
                recv_node, _key = seen_channels[channel_id]
                partition.subgraphs[succ.device].add_edge(recv_node, succ)
                continue
            key = f"{graph.name}/{node.name}:{node.node_id}->{succ.device}"
            nbytes = max(node.op.output_bytes, 1)
            send_op = OpDef(
                name=f"send/{node.name}", kind=OpKind.SEND,
                input_bytes=nbytes,
                attrs={"channel": key, "nbytes": nbytes,
                       "dst_device": succ.device})
            recv_op = OpDef(
                name=f"recv/{node.name}", kind=OpKind.RECV,
                output_bytes=nbytes,
                attrs={"channel": key, "nbytes": nbytes,
                       "src_device": node.device})
            send_node = src_sub.add_node(send_op, inputs=[node],
                                         device=node.device)
            dst_sub = partition.subgraphs[succ.device]
            recv_node = dst_sub.add_node(recv_op, device=succ.device)
            dst_sub.add_edge(recv_node, succ)
            partition.channels.append(Channel(
                key=key, src_device=node.device, dst_device=succ.device,
                nbytes=nbytes))
            seen_channels[channel_id] = (recv_node, key)

    for sub in partition.subgraphs.values():
        sub.validate()
    return partition
