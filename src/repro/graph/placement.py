"""Device placement pass, and the topology-aware gang scheduler.

Mirrors TF session construction: a cost model assigns each graph node a
backend device. Input-pipeline ops pin to the CPU; compute ops go to the
requested GPU (or the CPU when none is available — the MKL fallback that
SwitchFlow's migration path uses).

:class:`GangScheduler` extends placement to the cluster level: a *gang*
(the replicas of one multi-replica job, or a set of jobs that talk to
each other) is packed onto one node when it fits, and spills a member
across the network only when the member's critical-path estimate says
the cross-node transfer is off-path ("It's the Critical Path!",
PAPERS.md). The critical-path number comes from
:meth:`repro.runtime.executor.Executor.critical_path_ms`; it is passed
in as data so the graph layer stays below the runtime layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.graph.graph import Graph, GraphError
from repro.graph.ops import OpKind


def place_graph(graph: Graph, cpu_device: str,
                gpu_device: Optional[str]) -> None:
    """Assign a device name to every node of ``graph`` in place.

    ``gpu_device`` may be None to force an all-CPU placement (used when a
    preempted job is migrated to the host).
    """
    for node in graph:
        node.device = _device_for(node, cpu_device, gpu_device)


def _device_for(node, cpu_device: str, gpu_device: Optional[str]) -> str:
    op = node.op
    if op.is_pipeline_op or op.preferred_device == "cpu":
        return cpu_device
    if op.kind in (OpKind.SEND, OpKind.RECV):
        # Send/recv placement is decided by the partitioner; default CPU.
        return node.device or cpu_device
    if gpu_device is None:
        return cpu_device
    return gpu_device


def validate_placement(graph: Graph) -> None:
    """Every node must have a device after placement."""
    missing = [node for node in graph if node.device is None]
    if missing:
        raise GraphError(
            f"{len(missing)} nodes missing a device after placement, "
            f"first: {missing[0]!r}")


# ---------------------------------------------------------------------------
# Gang placement (cluster level)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GangMember:
    """One schedulable replica of a gang, as plain data.

    ``critical_path_ms`` is the dependency-structure lower bound on one
    iteration of the member's compute subgraph
    (:meth:`~repro.runtime.executor.Executor.critical_path_ms`); the
    spill rule compares the cross-node state transfer against it.
    """

    job: str
    memory_bytes: int          # peak device footprint while running
    state_bytes: int           # persistent bytes that migrate with it
    n_tensors: int = 1
    critical_path_ms: float = 0.0


@dataclass(frozen=True)
class GangPlacement:
    """Where one member landed, and why."""

    job: str
    device: str
    node: str
    spilled: bool              # placed off the gang's home node
    reason: str


class GangScheduler:
    """Packs gangs onto cluster nodes, critical-path aware.

    Works against the topology surface Machine and Cluster share
    (``gpus``, ``node_name_of``, ``route_cost_ms``), so a single
    machine is simply a cluster whose every placement co-locates.

    Rules, in order, for each member of a gang:

    1. **Co-locate** on the gang's home node (the node with the most
       aggregate free GPU memory) when a GPU there fits the member.
    2. **Spill** to another node's GPU only when the state transfer
       into it is *off-path*: route cost ≤ ``spill_slack`` × the
       member's critical-path estimate, i.e. the network copy hides
       under one iteration of compute.
    3. **Stack** on the home node otherwise — SwitchFlow's gates
       time-share the device, which beats paying an on-path network
       transfer every migration.

    Every placement is emitted as a ``gang_place`` audit decision with
    the losing candidates and their reasons.
    """

    def __init__(self, machine, runlog=None,
                 spill_slack: float = 0.5) -> None:
        self.machine = machine
        self.runlog = runlog
        self.spill_slack = spill_slack
        # Scheduler-local reservations: persistent state stays resident,
        # so later gangs see earlier gangs' footprints.
        self._reserved: Dict[str, int] = {
            gpu.name: 0 for gpu in machine.gpus}

    # ------------------------------------------------------------------
    def _free_bytes(self, gpu) -> int:
        return gpu.memory.free_bytes - self._reserved[gpu.name]

    def _gpus_by_node(self) -> Dict[str, List]:
        nodes: Dict[str, List] = {}
        for gpu in self.machine.gpus:
            nodes.setdefault(
                self.machine.node_name_of(gpu.name), []).append(gpu)
        return nodes

    def _home_node(self, nodes: Dict[str, List]) -> str:
        # Most aggregate free GPU memory; node order breaks ties so the
        # choice is deterministic.
        return max(nodes,
                   key=lambda name: (sum(self._free_bytes(g)
                                         for g in nodes[name]),
                                     name))

    # ------------------------------------------------------------------
    def place_gang(self,
                   members: Sequence[GangMember]) -> List[GangPlacement]:
        """Place one gang; returns a placement per member, in order."""
        if not members:
            return []
        nodes = self._gpus_by_node()
        if not nodes:
            raise ValueError("cannot place a gang on a machine with "
                             "no GPUs")
        home = self._home_node(nodes)
        # node_of returns the Node (Cluster) or the Machine itself
        # (degenerate case); both expose the host CPU as ``.cpu``.
        home_cpu = self.machine.node_of(nodes[home][0].name).cpu
        placements: List[GangPlacement] = []
        for member in members:
            placement = self._place_member(member, home, home_cpu, nodes)
            self._reserved[placement.device] += member.state_bytes
            placements.append(placement)
        return placements

    def place(self, gangs: Sequence[Sequence[GangMember]]
              ) -> Dict[str, GangPlacement]:
        """Place several gangs; returns placements keyed by job name."""
        out: Dict[str, GangPlacement] = {}
        for gang in gangs:
            for placement in self.place_gang(gang):
                out[placement.job] = placement
        return out

    # ------------------------------------------------------------------
    def _place_member(self, member: GangMember, home: str, home_cpu,
                      nodes: Dict[str, List]) -> GangPlacement:
        rejected: List[Dict[str, str]] = []
        # 1. Co-locate: fittest = the home-node GPU with the most room.
        fits_home = [g for g in nodes[home]
                     if self._free_bytes(g) >= member.memory_bytes]
        if fits_home:
            chosen = max(fits_home,
                         key=lambda g: (self._free_bytes(g), g.name))
            rejected.extend(
                {"device": g.name, "why": "less free memory than chosen"}
                for g in fits_home if g is not chosen)
            return self._decide(member, chosen.name, home, False,
                                "co-located on home node", rejected)
        for gpu in nodes[home]:
            rejected.append({
                "device": gpu.name,
                "why": f"memory ({self._free_bytes(gpu)} free < "
                       f"{member.memory_bytes} needed)"})
        # 2. Spill: cheapest off-node GPU that fits, if the transfer
        #    into it hides under one iteration of compute.
        remote = [
            (self.machine.route_cost_ms(home_cpu.name, g.name,
                                        member.state_bytes,
                                        member.n_tensors),
             -self._free_bytes(g), g.name, node_name, g)
            for node_name, gpus in nodes.items() if node_name != home
            for g in gpus if self._free_bytes(g) >= member.memory_bytes]
        if remote:
            remote.sort()
            cost, _, name, node_name, _gpu = remote[0]
            budget = self.spill_slack * member.critical_path_ms
            if cost <= budget:
                rejected.extend(
                    {"device": other_name,
                     "why": f"route cost {other_cost:.3f}ms > "
                            f"{cost:.3f}ms to {name}"}
                    for other_cost, _f, other_name, _n, _g in remote[1:])
                return self._decide(
                    member, name, node_name, True,
                    f"off-path spill (route {cost:.3f}ms <= "
                    f"{self.spill_slack:.2f}x critical path "
                    f"{member.critical_path_ms:.3f}ms)", rejected)
            rejected.extend(
                {"device": other_name,
                 "why": f"route cost {other_cost:.3f}ms on the critical "
                        f"path (> {budget:.3f}ms budget)"}
                for other_cost, _f, other_name, _n, _g in remote)
        # 3. Stack: time-share the roomiest home GPU through the gate.
        chosen = max(nodes[home],
                     key=lambda g: (self._free_bytes(g), g.name))
        return self._decide(
            member, chosen.name, home, False,
            "stacked on home node (cross-node transfer on the critical "
            "path)" if remote else
            "stacked on home node (no device fits)", rejected)

    def _decide(self, member: GangMember, device: str, node: str,
                spilled: bool, reason: str,
                rejected: List[Dict[str, str]]) -> GangPlacement:
        if self.runlog is not None:
            # Deferred import, as in core.switchflow: keeps the audit
            # module runpy-clean and the graph layer import-light.
            from repro.obs import audit

            audit.emit_decision(
                self.runlog, "gang_place", job=member.job,
                chosen=device, rejected=rejected, node=node,
                spilled=spilled, reason=reason,
                critical_path_ms=member.critical_path_ms,
                state_bytes=member.state_bytes)
        return GangPlacement(job=member.job, device=device, node=node,
                             spilled=spilled, reason=reason)
