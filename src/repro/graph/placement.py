"""Device placement pass.

Mirrors TF session construction: a cost model assigns each graph node a
backend device. Input-pipeline ops pin to the CPU; compute ops go to the
requested GPU (or the CPU when none is available — the MKL fallback that
SwitchFlow's migration path uses).
"""

from __future__ import annotations

from typing import Optional

from repro.graph.graph import Graph, GraphError
from repro.graph.ops import OpKind


def place_graph(graph: Graph, cpu_device: str,
                gpu_device: Optional[str]) -> None:
    """Assign a device name to every node of ``graph`` in place.

    ``gpu_device`` may be None to force an all-CPU placement (used when a
    preempted job is migrated to the host).
    """
    for node in graph:
        node.device = _device_for(node, cpu_device, gpu_device)


def _device_for(node, cpu_device: str, gpu_device: Optional[str]) -> str:
    op = node.op
    if op.is_pipeline_op or op.preferred_device == "cpu":
        return cpu_device
    if op.kind in (OpKind.SEND, OpKind.RECV):
        # Send/recv placement is decided by the partitioner; default CPU.
        return node.device or cpu_device
    if gpu_device is None:
        return cpu_device
    return gpu_device


def validate_placement(graph: Graph) -> None:
    """Every node must have a device after placement."""
    missing = [node for node in graph if node.device is None]
    if missing:
        raise GraphError(
            f"{len(missing)} nodes missing a device after placement, "
            f"first: {missing[0]!r}")
