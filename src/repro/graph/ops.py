"""Operation catalog: the node types computation graphs are made of.

Each :class:`OpDef` carries the *analytic cost inputs* (FLOPs, bytes
moved, parameter bytes) from which the cost model derives device-specific
execution times and occupancy demands. This replaces cuDNN/cuBLAS/MKL:
where the paper's kernels are tuned binaries, ours are costed descriptors
— same scheduling surface, synthetic execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict


class OpKind(enum.Enum):
    """All operation types the model zoo and pipelines emit."""

    # GPU compute (forward)
    CONV2D = "conv2d"
    DEPTHWISE_CONV = "depthwise_conv"
    MATMUL = "matmul"
    FC = "fully_connected"
    BATCHNORM = "batchnorm"
    ELEMENTWISE = "elementwise"      # relu / add / bias / dropout
    POOL = "pool"
    CONCAT = "concat"
    SOFTMAX = "softmax"
    EMBEDDING = "embedding_lookup"
    LSTM_CELL = "lstm_cell"
    ATTENTION = "attention"
    LOSS = "loss"
    # Training-only
    GRADIENT = "gradient"            # backward twin of a forward op
    APPLY_GRADIENT = "apply_gradient"
    # Input pipeline (CPU)
    ITERATOR_GET_NEXT = "iterator_get_next"
    DECODE_JPEG = "decode_jpeg"
    RESIZE = "resize"
    AUGMENT = "augment"
    TOKENIZE = "tokenize"
    # Plumbing
    SEND = "send"
    RECV = "recv"
    IDENTITY = "identity"
    VARIABLE = "variable"
    NOOP = "noop"


# Op kinds whose tuned GPU kernels are register-file bound and demand the
# whole device (the 10-of-13 finding from the paper's Section 2.2).
REGISTER_BOUND_KINDS = frozenset({
    OpKind.CONV2D,
    OpKind.DEPTHWISE_CONV,
    OpKind.MATMUL,
    OpKind.FC,
    OpKind.LSTM_CELL,
    OpKind.ATTENTION,
})

# Kinds that always belong to the CPU input pipeline.
CPU_PIPELINE_KINDS = frozenset({
    OpKind.ITERATOR_GET_NEXT,
    OpKind.DECODE_JPEG,
    OpKind.RESIZE,
    OpKind.AUGMENT,
    OpKind.TOKENIZE,
})

# Arithmetic efficiency (fraction of device peak achieved) per op kind on
# GPU. Calibrated so ResNet50 training on a V100 lands near the paper's
# ~226 images/s solo throughput.
GPU_EFFICIENCY: Dict[OpKind, float] = {
    OpKind.CONV2D: 0.48,
    OpKind.DEPTHWISE_CONV: 0.18,
    OpKind.MATMUL: 0.60,
    OpKind.FC: 0.55,
    OpKind.BATCHNORM: 0.10,
    OpKind.ELEMENTWISE: 0.08,
    OpKind.POOL: 0.10,
    OpKind.CONCAT: 0.08,
    OpKind.SOFTMAX: 0.15,
    OpKind.EMBEDDING: 0.10,
    OpKind.LSTM_CELL: 0.30,
    OpKind.ATTENTION: 0.35,
    OpKind.LOSS: 0.15,
    OpKind.GRADIENT: 0.45,
    OpKind.APPLY_GRADIENT: 0.08,
}

# CPU efficiency relative to per-core peak for compute ops that happen to
# run on the CPU (e.g. a migrated executor using the MKL path).
CPU_EFFICIENCY: Dict[OpKind, float] = {
    OpKind.CONV2D: 0.55,
    OpKind.DEPTHWISE_CONV: 0.35,
    OpKind.MATMUL: 0.70,
    OpKind.FC: 0.65,
    OpKind.LSTM_CELL: 0.45,
    OpKind.ATTENTION: 0.45,
}
_CPU_DEFAULT_EFFICIENCY = 0.30

# How many cores the MKL-style CPU implementation of a compute op can use.
CPU_OP_PARALLELISM = 8


@dataclass(frozen=True)
class OpDef:
    """A costed operation. Immutable; nodes reference these."""

    name: str
    kind: OpKind
    flops: float = 0.0
    input_bytes: int = 0
    output_bytes: int = 0
    params_bytes: int = 0            # persistent weight bytes this op reads
    workspace_bytes: int = 0         # transient scratch while executing
    preferred_device: str = "any"    # 'gpu' | 'cpu' | 'any'
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError(f"op {self.name!r} has negative flops")
        if min(self.input_bytes, self.output_bytes,
               self.params_bytes, self.workspace_bytes) < 0:
            raise ValueError(f"op {self.name!r} has negative byte counts")
        if self.preferred_device not in ("gpu", "cpu", "any"):
            raise ValueError(
                f"bad preferred_device {self.preferred_device!r}")

    @property
    def bytes_moved(self) -> int:
        """Total memory traffic the op generates."""
        return self.input_bytes + self.output_bytes + self.params_bytes

    @property
    def is_register_bound(self) -> bool:
        return self.kind in REGISTER_BOUND_KINDS

    @property
    def is_pipeline_op(self) -> bool:
        return self.kind in CPU_PIPELINE_KINDS

    def scaled(self, factor: float, name: str = None) -> "OpDef":
        """A copy with flops and byte counts scaled by ``factor``.

        Used to derive backward ops (≈2x forward cost) and to rescale
        batch sizes without rebuilding a model graph.
        """
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        return replace(
            self,
            name=name or self.name,
            flops=self.flops * factor,
            input_bytes=int(self.input_bytes * factor),
            output_bytes=int(self.output_bytes * factor),
            workspace_bytes=int(self.workspace_bytes * factor),
        )

    def gradient_op(self) -> "OpDef":
        """The backward twin: ~2x the forward math, same parameters."""
        return replace(
            self,
            name=f"{self.name}_grad",
            kind=OpKind.GRADIENT,
            flops=self.flops * 2.0,
            input_bytes=self.input_bytes + self.output_bytes,
            output_bytes=self.input_bytes,
            attrs={**self.attrs, "forward_kind": self.kind.value},
        )


# cuDNN's Winograd algorithm cuts the arithmetic of 3x3 convolutions by
# ~2.25x; in roofline terms the kernel runs above naive peak efficiency.
_WINOGRAD_SPEEDUP = 1.75


def gpu_efficiency(op: OpDef) -> float:
    """Fraction of GPU peak FLOPs this op achieves (can exceed the
    per-kind base for Winograd-eligible 3x3 convolutions)."""
    if op.kind is OpKind.GRADIENT:
        forward = op.attrs.get("forward_kind")
        for kind, eff in GPU_EFFICIENCY.items():
            if kind.value == forward:
                base = eff * 0.92   # backward kernels are a bit less tuned
                break
        else:
            base = GPU_EFFICIENCY[OpKind.GRADIENT]
        if (op.attrs.get("forward_kind") == OpKind.CONV2D.value
                and op.attrs.get("k") == 3):
            base *= _WINOGRAD_SPEEDUP
        return base
    base = GPU_EFFICIENCY.get(op.kind, 0.10)
    if op.kind is OpKind.CONV2D and op.attrs.get("k") == 3:
        base *= _WINOGRAD_SPEEDUP
    return base


def cpu_efficiency(op: OpDef) -> float:
    if op.kind is OpKind.GRADIENT:
        forward = op.attrs.get("forward_kind")
        for kind, eff in CPU_EFFICIENCY.items():
            if kind.value == forward:
                return eff
        return _CPU_DEFAULT_EFFICIENCY
    return CPU_EFFICIENCY.get(op.kind, _CPU_DEFAULT_EFFICIENCY)
