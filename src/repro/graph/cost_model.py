"""Analytic cost model: op -> (time, occupancy) on a concrete device.

This stands in for cuDNN/cuBLAS/MKL timing. GPU kernel time follows a
roofline: ``t = overhead + max(flops / (peak * eff), bytes / mem_bw)``.
Occupancy follows the register-bound heuristic validated by the paper's
occupancy-calculator study: tuned conv/matmul kernels demand the whole
device; small memory-bound kernels occupy a fraction proportional to the
compute they bring.

The executor's expensive/inexpensive classification (Section 2.1) also
lives here, since TF derives it from the same cost inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ops import (
    CPU_OP_PARALLELISM,
    OpDef,
    OpKind,
    cpu_efficiency,
    gpu_efficiency,
)
from repro.hw.specs import CpuSpec, GpuSpec

# Ops costing more than this on their device are "expensive" — they get
# their own local queue in the executor (Section 2.1).
EXPENSIVE_THRESHOLD_MS = 0.05

# A kernel bringing at least this much solo work saturates the device on
# its own (occupancy -> 1) even if not register-bound.
_SATURATING_WORK_MS = 0.5


@dataclass(frozen=True)
class KernelCost:
    """Device-specific execution estimate for one op."""

    work_ms: float
    occupancy: float
    expensive: bool


def gpu_kernel_cost(op: OpDef, spec: GpuSpec) -> KernelCost:
    """Solo execution time and occupancy of ``op`` on GPU ``spec``."""
    efficiency = gpu_efficiency(op)
    compute_ms = op.flops / (spec.peak_fp32_flops_per_ms * efficiency) \
        if op.flops else 0.0
    memory_ms = op.bytes_moved / spec.memory_bytes_per_ms \
        if op.bytes_moved else 0.0
    work_ms = spec.kernel_launch_overhead_ms + max(compute_ms, memory_ms)

    if op.is_register_bound or (
            op.kind is OpKind.GRADIENT
            and op.attrs.get("forward_kind") in (
                k.value for k in (OpKind.CONV2D, OpKind.MATMUL, OpKind.FC,
                                  OpKind.DEPTHWISE_CONV, OpKind.LSTM_CELL,
                                  OpKind.ATTENTION))):
        # Tuned kernels grab the register file: effectively exclusive.
        occupancy = 1.0
    else:
        fill = min(1.0, work_ms / _SATURATING_WORK_MS)
        occupancy = max(0.05, min(1.0, 0.10 + 0.90 * fill))

    return KernelCost(
        work_ms=work_ms,
        occupancy=occupancy,
        expensive=work_ms >= EXPENSIVE_THRESHOLD_MS,
    )


def cpu_op_cost_ms(op: OpDef, spec: CpuSpec) -> float:
    """Execution time of ``op`` on the host CPU (one worker's view).

    Pipeline ops use the calibrated per-item costs; compute ops use the
    MKL-style multicore roofline (``CPU_OP_PARALLELISM`` cores).
    """
    if op.kind in (OpKind.DECODE_JPEG, OpKind.AUGMENT, OpKind.RESIZE):
        # A fused decode+resize+augment chunk over attrs['images'] items.
        images = op.attrs.get("images", 1.0)
        return images * spec.image_preprocess_ms
    if op.kind is OpKind.TOKENIZE:
        sentences = op.attrs.get("sentences", 1.0)
        return sentences * spec.sentence_preprocess_ms
    if op.kind is OpKind.ITERATOR_GET_NEXT:
        return 0.02    # dequeue from the prefetch buffer
    if op.kind in (OpKind.SEND, OpKind.RECV, OpKind.IDENTITY,
                   OpKind.VARIABLE, OpKind.NOOP):
        return 0.002
    if op.flops <= 0:
        # Memory-bound op on CPU: assume ~10 GB/s effective per core.
        return op.bytes_moved / 1e7 if op.bytes_moved else 0.005
    cores = min(CPU_OP_PARALLELISM, spec.cores)
    efficiency = cpu_efficiency(op)
    return op.flops / (spec.per_core_flops_per_ms * cores * efficiency)


def is_expensive_on_cpu(op: OpDef, spec: CpuSpec) -> bool:
    return cpu_op_cost_ms(op, spec) >= EXPENSIVE_THRESHOLD_MS
