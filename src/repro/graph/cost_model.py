"""Analytic cost model: op -> (time, occupancy) on a concrete device.

This stands in for cuDNN/cuBLAS/MKL timing. GPU kernel time follows a
roofline: ``t = overhead + max(flops / (peak * eff), bytes / mem_bw)``.
Occupancy follows the register-bound heuristic validated by the paper's
occupancy-calculator study: tuned conv/matmul kernels demand the whole
device; small memory-bound kernels occupy a fraction proportional to the
compute they bring.

The executor's expensive/inexpensive classification (Section 2.1) also
lives here, since TF derives it from the same cost inputs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graph.ops import (
    CPU_OP_PARALLELISM,
    OpDef,
    OpKind,
    cpu_efficiency,
    gpu_efficiency,
)
from repro.hw.specs import CpuSpec, GpuSpec

# Ops costing more than this on their device are "expensive" — they get
# their own local queue in the executor (Section 2.1).
EXPENSIVE_THRESHOLD_MS = 0.05

# A kernel bringing at least this much solo work saturates the device on
# its own (occupancy -> 1) even if not register-bound.
_SATURATING_WORK_MS = 0.5


@dataclass(frozen=True)
class KernelCost:
    """Device-specific execution estimate for one op."""

    work_ms: float
    occupancy: float
    expensive: bool


# ---------------------------------------------------------------------------
# Memoization. Both cost functions are pure in (op, spec), and executors
# call them for every node they ever dispatch — across executor replicas
# (SwitchFlow keeps one per device version) and across experiment
# repetitions the same (op, spec) pairs recur constantly. The cache keys
# on the cost-relevant *value* of the op (kind, arithmetic/byte counts,
# attrs), not its name or identity, so e.g. every 3x3/64-channel conv in
# a model shares one entry.
# ---------------------------------------------------------------------------
class CostCacheStats:
    """Process-wide hit/miss counters for the cost-model memo caches."""

    __slots__ = ("gpu_hits", "gpu_misses", "cpu_hits", "cpu_misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.gpu_hits = 0
        self.gpu_misses = 0
        self.cpu_hits = 0
        self.cpu_misses = 0

    def hit_rate(self, device: str) -> float:
        hits = getattr(self, f"{device}_hits")
        misses = getattr(self, f"{device}_misses")
        total = hits + misses
        return hits / total if total else 0.0


COST_CACHE_STATS = CostCacheStats()

_CACHE_ENABLED = True
_GPU_CACHE: Dict[Tuple, KernelCost] = {}
_CPU_CACHE: Dict[Tuple, float] = {}


def _op_key(op: OpDef) -> Optional[Tuple]:
    """Hashable value-key over exactly the fields the cost model reads.

    Returns None when an attr value is unhashable (never the case for
    the ops the model zoo emits, but attrs is an open dict).
    """
    try:
        return (op.kind, op.flops, op.input_bytes, op.output_bytes,
                op.params_bytes,
                tuple(sorted(op.attrs.items())) if op.attrs else ())
    except TypeError:
        return None


def configure_cost_cache(enabled: bool) -> None:
    """Globally enable/disable memoization (the caches are cleared)."""
    global _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    clear_cost_cache()


def clear_cost_cache(reset_stats: bool = False) -> None:
    _GPU_CACHE.clear()
    _CPU_CACHE.clear()
    if reset_stats:
        COST_CACHE_STATS.reset()


@contextmanager
def cost_cache_disabled():
    """Temporarily bypass memoization (tests, baseline benchmarks)."""
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = False
    try:
        yield
    finally:
        _CACHE_ENABLED = previous


def register_cost_cache_collector(registry) -> None:
    """Publish cache hit/miss counters into a MetricsRegistry.

    The caches are process-wide while registries are per-run, so the
    gauges report cumulative process totals — enough for hit-rate
    assertions and trend tracking.
    """
    def collect(reg) -> None:
        stats = COST_CACHE_STATS
        reg.gauge("cost_model.cache_hits", "memo cache hits",
                  device="gpu").set(stats.gpu_hits)
        reg.gauge("cost_model.cache_misses", "memo cache misses",
                  device="gpu").set(stats.gpu_misses)
        reg.gauge("cost_model.cache_hits", "memo cache hits",
                  device="cpu").set(stats.cpu_hits)
        reg.gauge("cost_model.cache_misses", "memo cache misses",
                  device="cpu").set(stats.cpu_misses)

    registry.register_collector(collect)


def gpu_kernel_cost(op: OpDef, spec: GpuSpec) -> KernelCost:
    """Solo execution time and occupancy of ``op`` on GPU ``spec``.

    Memoized per (op value, spec); see :func:`configure_cost_cache`.
    """
    if _CACHE_ENABLED:
        op_key = _op_key(op)
        if op_key is not None:
            # Specs are frozen dataclasses of scalars: hashable by value,
            # so distinct spec objects with equal fields share entries.
            key = (op_key, spec)
            cached = _GPU_CACHE.get(key)
            if cached is not None:
                COST_CACHE_STATS.gpu_hits += 1
                return cached
            COST_CACHE_STATS.gpu_misses += 1
            cost = _gpu_kernel_cost_uncached(op, spec)
            _GPU_CACHE[key] = cost
            return cost
    return _gpu_kernel_cost_uncached(op, spec)


def _gpu_kernel_cost_uncached(op: OpDef, spec: GpuSpec) -> KernelCost:
    efficiency = gpu_efficiency(op)
    compute_ms = op.flops / (spec.peak_fp32_flops_per_ms * efficiency) \
        if op.flops else 0.0
    memory_ms = op.bytes_moved / spec.memory_bytes_per_ms \
        if op.bytes_moved else 0.0
    work_ms = spec.kernel_launch_overhead_ms + max(compute_ms, memory_ms)

    if op.is_register_bound or (
            op.kind is OpKind.GRADIENT
            and op.attrs.get("forward_kind") in (
                k.value for k in (OpKind.CONV2D, OpKind.MATMUL, OpKind.FC,
                                  OpKind.DEPTHWISE_CONV, OpKind.LSTM_CELL,
                                  OpKind.ATTENTION))):
        # Tuned kernels grab the register file: effectively exclusive.
        occupancy = 1.0
    else:
        fill = min(1.0, work_ms / _SATURATING_WORK_MS)
        occupancy = max(0.05, min(1.0, 0.10 + 0.90 * fill))

    return KernelCost(
        work_ms=work_ms,
        occupancy=occupancy,
        expensive=work_ms >= EXPENSIVE_THRESHOLD_MS,
    )


def cpu_op_cost_ms(op: OpDef, spec: CpuSpec) -> float:
    """Execution time of ``op`` on the host CPU (one worker's view).

    Pipeline ops use the calibrated per-item costs; compute ops use the
    MKL-style multicore roofline (``CPU_OP_PARALLELISM`` cores).
    Memoized per (op value, spec); see :func:`configure_cost_cache`.
    """
    if _CACHE_ENABLED:
        op_key = _op_key(op)
        if op_key is not None:
            key = (op_key, spec)
            cached = _CPU_CACHE.get(key)
            if cached is not None:
                COST_CACHE_STATS.cpu_hits += 1
                return cached
            COST_CACHE_STATS.cpu_misses += 1
            cost = _cpu_op_cost_ms_uncached(op, spec)
            _CPU_CACHE[key] = cost
            return cost
    return _cpu_op_cost_ms_uncached(op, spec)


def _cpu_op_cost_ms_uncached(op: OpDef, spec: CpuSpec) -> float:
    if op.kind in (OpKind.DECODE_JPEG, OpKind.AUGMENT, OpKind.RESIZE):
        # A fused decode+resize+augment chunk over attrs['images'] items.
        images = op.attrs.get("images", 1.0)
        return images * spec.image_preprocess_ms
    if op.kind is OpKind.TOKENIZE:
        sentences = op.attrs.get("sentences", 1.0)
        return sentences * spec.sentence_preprocess_ms
    if op.kind is OpKind.ITERATOR_GET_NEXT:
        return 0.02    # dequeue from the prefetch buffer
    if op.kind in (OpKind.SEND, OpKind.RECV, OpKind.IDENTITY,
                   OpKind.VARIABLE, OpKind.NOOP):
        return 0.002
    if op.flops <= 0:
        # Memory-bound op on CPU: assume ~10 GB/s effective per core.
        return op.bytes_moved / 1e7 if op.bytes_moved else 0.005
    cores = min(CPU_OP_PARALLELISM, spec.cores)
    efficiency = cpu_efficiency(op)
    return op.flops / (spec.per_core_flops_per_ms * cores * efficiency)


def is_expensive_on_cpu(op: OpDef, spec: CpuSpec) -> bool:
    return cpu_op_cost_ms(op, spec) >= EXPENSIVE_THRESHOLD_MS
