"""Static-graph optimization passes.

The paper motivates static graphs with offline optimization — node
pruning, merging, reordering. These passes implement the two that matter
for the reproduced pipelines:

* :func:`prune_dead_nodes` — remove nodes that cannot reach any sink the
  caller asked for (TF runs only the ancestor set of the fetch node).
* :func:`fuse_elementwise` — collapse chains of cheap elementwise ops
  into their producer (conv+bias+relu style fusion), reducing launches.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.graph.graph import Graph, Node
from repro.graph.ops import OpDef, OpKind


def ancestors_of(graph: Graph, targets: Iterable[Node]) -> Set[Node]:
    """All nodes with a path to any target (targets included)."""
    keep: Set[int] = set()
    stack = [t for t in targets]
    for target in stack:
        if target not in graph:
            raise ValueError(f"{target!r} is not in {graph!r}")
    while stack:
        node = stack.pop()
        if node.node_id in keep:
            continue
        keep.add(node.node_id)
        stack.extend(graph.predecessors(node))
    return {n for n in graph if n.node_id in keep}


def prune_dead_nodes(graph: Graph, targets: Iterable[Node]) -> int:
    """Delete nodes that do not feed any target; returns count removed."""
    keep = {n.node_id for n in ancestors_of(graph, list(targets))}
    dead = [n for n in graph if n.node_id not in keep]
    for node in dead:
        graph.remove_node(node)
    return len(dead)


def fuse_elementwise(graph: Graph) -> int:
    """Fuse single-consumer elementwise/batchnorm nodes into producers.

    A node is fusable when it is ELEMENTWISE or BATCHNORM, has exactly
    one predecessor, and that predecessor has exactly one successor. The
    fused producer absorbs the child's flops/bytes/params. Returns the
    number of nodes fused away.
    """
    fused = 0
    changed = True
    while changed:
        changed = False
        for node in list(graph):
            if node.kind not in (OpKind.ELEMENTWISE, OpKind.BATCHNORM):
                continue
            preds = graph.predecessors(node)
            if len(preds) != 1:
                continue
            producer = preds[0]
            if graph.out_degree(producer) != 1:
                continue
            if producer.kind in (OpKind.SEND, OpKind.RECV,
                                 OpKind.VARIABLE, OpKind.ITERATOR_GET_NEXT):
                continue
            _absorb(graph, producer, node)
            fused += 1
            changed = True
    return fused


def _absorb(graph: Graph, producer: Node, child: Node) -> None:
    """Merge ``child`` into ``producer`` and rewire its consumers."""
    op = producer.op
    merged = OpDef(
        name=op.name,
        kind=op.kind,
        flops=op.flops + child.op.flops,
        input_bytes=op.input_bytes,
        output_bytes=child.op.output_bytes,
        params_bytes=op.params_bytes + child.op.params_bytes,
        workspace_bytes=max(op.workspace_bytes, child.op.workspace_bytes),
        preferred_device=op.preferred_device,
        attrs={**op.attrs, "fused": op.attrs.get("fused", 0) + 1},
    )
    producer.op = merged
    for consumer in graph.successors(child):
        graph.add_edge(producer, consumer)
    graph.remove_node(child)


def count_kinds(graph: Graph) -> dict:
    """Histogram of op kinds — handy for tests and debugging."""
    histogram: dict = {}
    for node in graph:
        histogram[node.kind] = histogram.get(node.kind, 0) + 1
    return histogram
