"""Fluent construction helper for computation graphs.

Models (see :mod:`repro.models`) describe themselves as layer lists; the
builder turns those into graphs with an input pipeline, a forward chain,
and optionally the backward/update tail for training.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.graph import Graph, Node
from repro.graph.ops import OpDef, OpKind


class GraphBuilder:
    """Imperative graph construction with a movable cursor."""

    def __init__(self, name: str) -> None:
        self.graph = Graph(name)
        self.cursor: Optional[Node] = None

    def source(self, op: OpDef) -> Node:
        """Add an input node (no predecessors) and move the cursor to it."""
        self.cursor = self.graph.add_node(op)
        return self.cursor

    def chain(self, op: OpDef) -> Node:
        """Append ``op`` after the cursor and advance the cursor."""
        inputs = [self.cursor] if self.cursor is not None else []
        self.cursor = self.graph.add_node(op, inputs=inputs)
        return self.cursor

    def branch_from(self, node: Node) -> "GraphBuilder":
        """Reposition the cursor (for residual/skip connections)."""
        if node not in self.graph:
            raise ValueError(f"{node!r} is not in this graph")
        self.cursor = node
        return self

    def join(self, nodes: List[Node], op: OpDef) -> Node:
        """Add ``op`` consuming several nodes (concat/add joins)."""
        self.cursor = self.graph.add_node(op, inputs=nodes)
        return self.cursor

    def build(self) -> Graph:
        self.graph.validate()
        return self.graph


def add_input_pipeline(builder: GraphBuilder, batch: int,
                       per_item_kind: OpKind = OpKind.DECODE_JPEG,
                       item_bytes: int = 224 * 224 * 3 * 4,
                       data_workers: int = 32) -> Node:
    """Attach the CPU preprocessing stage for one batch (tf.data model).

    The batch is split into up to ``data_workers`` parallel chunk ops
    (tf.data's ``num_parallel_calls``), fanning out from the iterator
    and joining at a collate node. Running chunks in parallel is what
    makes two co-located jobs contend for host cores, and what lets a
    single job saturate the host — both load-bearing for Figures 3 and
    8-10. Returns the collate node; the model chains from it.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    if data_workers <= 0:
        raise ValueError("data_workers must be positive")
    batch_bytes = batch * item_bytes
    iterator = builder.source(OpDef(
        name="IteratorGetNext", kind=OpKind.ITERATOR_GET_NEXT,
        output_bytes=batch_bytes, preferred_device="cpu"))
    # One preprocess op per item: concurrency is capped by the per-job
    # data pool's worker count (num_parallel_calls), and fine-grained
    # ops let two co-located pipelines share cores without packing
    # artifacts. ``data_workers`` only bounds how many ops the graph
    # fans out when the batch is enormous.
    n_chunks = min(batch, max(data_workers * 8, batch))
    items_per_chunk = batch / n_chunks
    chunk_bytes = max(1, int(batch_bytes / n_chunks))
    item_key = ("sentences" if per_item_kind is OpKind.TOKENIZE
                else "images")
    chunks = []
    for index in range(n_chunks):
        builder.branch_from(iterator)
        chunks.append(builder.chain(OpDef(
            name=f"preprocess/chunk{index}", kind=per_item_kind,
            input_bytes=chunk_bytes, output_bytes=chunk_bytes,
            preferred_device="cpu",
            attrs={item_key: items_per_chunk})))
    return builder.join(chunks, OpDef(
        name="preprocess/collate", kind=OpKind.IDENTITY,
        input_bytes=batch_bytes, output_bytes=batch_bytes,
        preferred_device="cpu"))
