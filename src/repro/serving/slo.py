"""Per-model service-level objectives: what "good" means for a stream."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.latency import LatencySummary


@dataclass(frozen=True)
class SLOTarget:
    """The two-sided objective a served model is held to.

    ``p99_ms`` is the tail-latency budget; a completed request *meets*
    the SLO when its end-to-end latency (arrival to completion,
    queueing included) is within the budget. ``goodput_rps`` is the
    floor on SLO-meeting completions per second — shedding everything
    trivially fixes the tail, so the floor is what makes the target
    honest.
    """

    p99_ms: float
    goodput_rps: float = 0.0

    def __post_init__(self) -> None:
        if self.p99_ms <= 0:
            raise ValueError(f"p99 budget must be positive, got "
                             f"{self.p99_ms}")
        if self.goodput_rps < 0:
            raise ValueError(f"goodput floor cannot be negative, got "
                             f"{self.goodput_rps}")

    def met_by(self, latency_ms: float) -> bool:
        """Does one completed request meet the latency budget?"""
        return latency_ms <= self.p99_ms

    def satisfied(self, summary: Optional[LatencySummary],
                  goodput_rps: float) -> bool:
        """Does a finished stream satisfy the whole objective?"""
        if summary is None:
            return False
        return (summary.p99 <= self.p99_ms
                and goodput_rps >= self.goodput_rps)
