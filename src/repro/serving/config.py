"""Serving-layer configuration and the ``$REPRO_SERVING`` channel.

The runner's ``--serving`` flag (and ``make_context(serving=...)``)
thread a :class:`ServingConfig` onto the run context following the same
fork-safe environment pattern as ``$REPRO_FAULTS`` /
``$REPRO_TIMESERIES``: the flag sets the env var, and
:func:`maybe_attach_serving_from_env` — called inside
:func:`~repro.serving.frontend.run_serving`, in whichever process the
experiment actually executes in — attaches the parsed config, so the
overrides survive the fork into ``fanout_map`` workers.

The config is a set of *overrides* applied on top of each
:class:`~repro.serving.frontend.ServedModelSpec`: arrival rate and
trace kind, queue capacity and shed policy, batch size and window, and
the p99 budget. Unset fields leave the spec alone, so
``--serving rate=80`` sweeps the operating point without touching
anything else.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.serving.admission import SHED_POLICIES
from repro.serving.arrivals import KINDS as TRACE_KINDS

#: Environment variable carrying the compact serving-override spec.
SERVING_ENV = "REPRO_SERVING"


class ServingConfigError(ValueError):
    """A serving spec string failed validation."""


@dataclass(frozen=True)
class ServingConfig:
    """Overrides for served-model specs (None = keep the spec's value)."""

    rate_rps: Optional[float] = None
    trace_kind: Optional[str] = None
    queue_capacity: Optional[int] = None
    shed_policy: Optional[str] = None
    max_batch: Optional[int] = None
    batch_timeout_ms: Optional[float] = None
    slo_p99_ms: Optional[float] = None

    @classmethod
    def parse(cls, spec: str) -> "ServingConfig":
        """Parse the compact ``key=value,key=value`` spec.

        Keys: ``rate`` (requests/s), ``kind`` (poisson | diurnal |
        bursty), ``queue`` (capacity), ``shed`` (drop-newest |
        drop-oldest), ``batch`` (max size), ``timeout`` (batching
        window ms), ``slo`` (p99 budget ms). Example::

            rate=80,kind=bursty,queue=32,shed=drop-oldest,batch=8
        """
        fields = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not value:
                raise ServingConfigError(
                    f"expected key=value, got {part!r}")
            try:
                if key == "rate":
                    fields["rate_rps"] = _positive_float(value, "rate")
                elif key == "kind":
                    if value not in TRACE_KINDS:
                        raise ServingConfigError(
                            f"kind must be one of "
                            f"{', '.join(TRACE_KINDS)}; got {value!r}")
                    fields["trace_kind"] = value
                elif key == "queue":
                    fields["queue_capacity"] = _positive_int(
                        value, "queue")
                elif key == "shed":
                    if value not in SHED_POLICIES:
                        raise ServingConfigError(
                            f"shed must be one of "
                            f"{', '.join(SHED_POLICIES)}; got {value!r}")
                    fields["shed_policy"] = value
                elif key == "batch":
                    fields["max_batch"] = _positive_int(value, "batch")
                elif key == "timeout":
                    fields["batch_timeout_ms"] = _nonnegative_float(
                        value, "timeout")
                elif key == "slo":
                    fields["slo_p99_ms"] = _positive_float(value, "slo")
                else:
                    raise ServingConfigError(
                        f"unknown serving key {key!r} (choices: rate, "
                        f"kind, queue, shed, batch, timeout, slo)")
            except ServingConfigError:
                raise
            except ValueError:
                raise ServingConfigError(
                    f"bad value for {key!r}: {value!r}") from None
        return cls(**fields)


def _positive_float(value: str, key: str) -> float:
    out = float(value)
    if out <= 0:
        raise ServingConfigError(f"{key} must be positive, got {value}")
    return out


def _nonnegative_float(value: str, key: str) -> float:
    out = float(value)
    if out < 0:
        raise ServingConfigError(
            f"{key} cannot be negative, got {value}")
    return out


def _positive_int(value: str, key: str) -> int:
    out = int(value)
    if out < 1:
        raise ServingConfigError(f"{key} must be >= 1, got {value}")
    return out


def config_from_env() -> Optional[ServingConfig]:
    """The config in ``$REPRO_SERVING``, or None when unset."""
    spec = os.environ.get(SERVING_ENV, "").strip()
    if not spec:
        return None
    return ServingConfig.parse(spec)


def maybe_attach_serving_from_env(ctx) -> Optional[ServingConfig]:
    """Attach the env-configured overrides to ``ctx`` (idempotent
    no-op when ``$REPRO_SERVING`` is unset or serving is already
    attached)."""
    if getattr(ctx, "serving", None) is not None:
        return ctx.serving
    config = config_from_env()
    if config is None:
        return None
    return ctx.attach_serving(config)
