"""Request batching: turn a queue of requests into executor-sized batches.

The batcher implements the classic serving tradeoff: wait for more
requests (amortize the per-run cost of the compute subgraph) or close
the batch now (protect latency). A batch closes for one of three
reasons, all audited:

* ``full`` — ``max_batch`` requests are waiting; no reason to wait.
* ``timeout`` — the batching window expired with a partial batch.
* ``drain`` — the arrival stream ended; whatever is queued goes out.

The batcher owns no process; :meth:`form` is a generator the front-end
drives, so batch formation interleaves with dispatch under the engine's
deterministic scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.serving.admission import AdmissionQueue, Request

CLOSE_REASONS = ("full", "timeout", "drain")


@dataclass(frozen=True)
class Batch:
    """One closed batch, ready for dispatch."""

    batch_id: int
    requests: Tuple[Request, ...]
    reason: str
    opened_ms: float
    closed_ms: float

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def wait_ms(self) -> float:
        """How long the window stayed open collecting requests."""
        return self.closed_ms - self.opened_ms


class RequestBatcher:
    """Close batches on size, timeout, or drain."""

    def __init__(self, engine, queue: AdmissionQueue, max_batch: int,
                 timeout_ms: float) -> None:
        if max_batch < 1:
            raise ValueError(f"max batch must be >= 1, got {max_batch}")
        if timeout_ms < 0:
            raise ValueError(
                f"batching timeout cannot be negative, got {timeout_ms}")
        self.engine = engine
        self.queue = queue
        self.max_batch = max_batch
        self.timeout_ms = timeout_ms
        self._next_batch_id = 0

    def form(self):
        """Process generator: block until one batch closes; returns it.

        Returns ``None`` when the queue is closed and empty — the
        front-end's signal to stop dispatching.
        """
        engine = self.engine
        queue = self.queue
        # Wait for the first request (or a close with nothing left).
        while len(queue) == 0:
            if queue.closed:
                return None
            yield queue.wait_event()
        opened = engine.now
        deadline = opened + self.timeout_ms
        # Collect until full, timed out, or drained.
        while len(queue) < self.max_batch and not queue.closed:
            remaining = deadline - engine.now
            if remaining <= 0:
                break
            yield engine.any_of([engine.timeout(remaining),
                                 queue.wait_event()])
        requests = queue.take(self.max_batch)
        if len(requests) >= self.max_batch:
            reason = "full"
        elif queue.closed:
            reason = "drain"
        else:
            reason = "timeout"
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        closed = engine.now
        for request in requests:
            request.batch_id = batch_id
            request.dispatched_ms = closed
        return Batch(batch_id=batch_id, requests=tuple(requests),
                     reason=reason, opened_ms=opened, closed_ms=closed)
