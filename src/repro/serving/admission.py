"""Admission control: the bounded queue between arrivals and batches.

A request that arrives when the queue is full is *shed* according to
the configured policy:

* ``drop-newest`` — the arriving request is rejected (the queue's
  residents keep their positions; latency of admitted work is
  protected).
* ``drop-oldest`` — the oldest queued request is evicted to admit the
  new one (freshness is protected; the evicted request has already
  waited longest and is the most likely to blow its budget anyway).

The queue is plain data plus engine events — no processes of its own —
so the batcher can wait on "a request is available" without polling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

SHED_POLICIES = ("drop-newest", "drop-oldest")


@dataclass
class Request:
    """One inference request on its way through the front-end."""

    rid: int
    arrival_ms: float
    admitted_ms: Optional[float] = None
    dispatched_ms: Optional[float] = None
    completed_ms: Optional[float] = None
    shed_reason: Optional[str] = None
    batch_id: Optional[int] = None

    @property
    def latency_ms(self) -> Optional[float]:
        """End-to-end latency (arrival to completion), queueing included."""
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.arrival_ms

    @property
    def queue_wait_ms(self) -> Optional[float]:
        if self.dispatched_ms is None:
            return None
        return self.dispatched_ms - self.arrival_ms


@dataclass
class AdmissionOutcome:
    """What :meth:`AdmissionQueue.offer` did with one arrival."""

    admitted: bool
    #: The resident evicted to make room (drop-oldest only).
    evicted: Optional[Request] = None


class AdmissionQueue:
    """Bounded FIFO with a load-shedding policy."""

    def __init__(self, engine, capacity: int,
                 shed_policy: str = "drop-newest") -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {shed_policy!r} "
                f"(choices: {', '.join(SHED_POLICIES)})")
        self.engine = engine
        self.capacity = capacity
        self.shed_policy = shed_policy
        self._queue: Deque[Request] = deque()
        self._waiters: List[object] = []
        #: True once the arrival stream has ended; the batcher drains
        #: the remainder and then stops waiting.
        self.closed = False
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    def offer(self, request: Request) -> AdmissionOutcome:
        """Admit ``request`` or shed per policy; returns the outcome."""
        if len(self._queue) >= self.capacity:
            if self.shed_policy == "drop-newest":
                request.shed_reason = "queue-full"
                return AdmissionOutcome(admitted=False)
            evicted = self._queue.popleft()
            evicted.shed_reason = "evicted"
            self._admit(request)
            return AdmissionOutcome(admitted=True, evicted=evicted)
        self._admit(request)
        return AdmissionOutcome(admitted=True)

    def _admit(self, request: Request) -> None:
        request.admitted_ms = self.engine.now
        self._queue.append(request)
        self.max_depth = max(self.max_depth, len(self._queue))
        self._wake()

    def take(self, limit: int) -> List[Request]:
        """Dequeue up to ``limit`` requests (FIFO order)."""
        if limit < 1:
            raise ValueError(f"take limit must be >= 1, got {limit}")
        taken: List[Request] = []
        while self._queue and len(taken) < limit:
            taken.append(self._queue.popleft())
        return taken

    def drain(self) -> List[Request]:
        """Dequeue everything (shutdown path)."""
        remaining = list(self._queue)
        self._queue.clear()
        return remaining

    def close(self) -> None:
        """Mark the arrival stream finished; wakes any waiter so the
        batcher observes the close instead of sleeping forever."""
        self.closed = True
        self._wake()

    def wait_event(self):
        """A one-shot event fired at the next admit (or close).

        Fresh per call — engine events fire once — so the batcher grabs
        a new one each time it blocks.
        """
        event = self.engine.event()
        self._waiters.append(event)
        return event

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()
