"""Open-loop inference-serving front-end (paper §3.3 workloads).

The pieces, front to back: :mod:`~repro.serving.arrivals` generates
deterministic open-loop arrival traces from named RNG streams;
:mod:`~repro.serving.admission` bounds the queue and sheds load;
:mod:`~repro.serving.batcher` closes size/timeout batches;
:mod:`~repro.serving.frontend` dispatches each batch through the
scheduling policy as one executor-subgraph run and holds the stream to
its :mod:`~repro.serving.slo` target.
"""

from repro.serving.admission import (
    AdmissionOutcome,
    AdmissionQueue,
    Request,
    SHED_POLICIES,
)
from repro.serving.arrivals import (
    ArrivalTrace,
    KINDS as TRACE_KINDS,
    bursty_trace,
    diurnal_trace,
    make_trace,
    poisson_trace,
)
from repro.serving.batcher import Batch, CLOSE_REASONS, RequestBatcher
from repro.serving.config import (
    SERVING_ENV,
    ServingConfig,
    ServingConfigError,
    config_from_env,
    maybe_attach_serving_from_env,
)
from repro.serving.frontend import (
    ServedModelSpec,
    ServingFrontEnd,
    ServingResult,
    ServingStats,
    run_serving,
)
from repro.serving.slo import SLOTarget

__all__ = [
    "AdmissionOutcome",
    "AdmissionQueue",
    "ArrivalTrace",
    "Batch",
    "CLOSE_REASONS",
    "RequestBatcher",
    "Request",
    "SERVING_ENV",
    "SHED_POLICIES",
    "SLOTarget",
    "ServedModelSpec",
    "ServingConfig",
    "ServingConfigError",
    "ServingFrontEnd",
    "ServingResult",
    "ServingStats",
    "TRACE_KINDS",
    "bursty_trace",
    "config_from_env",
    "diurnal_trace",
    "make_trace",
    "maybe_attach_serving_from_env",
    "poisson_trace",
    "run_serving",
]
