"""Open-loop arrival traces: the request streams that drive serving.

Every generator materializes the full trace up front from one *named*
RNG stream (``serving:{name}:{kind}`` via :class:`~repro.sim.rng
.RngRegistry`), so a trace is a pure function of ``(root seed, trace
name, generator parameters)``:

* runs are deterministic per seed, independent of how the engine
  interleaves the processes that later consume the trace;
* the trace never depends on downstream serving configuration — queue
  capacity, shed policy, and batch size shape *outcomes*, not arrivals
  (the batch-size-invariance property the tests pin);
* draws are sequential in time, so two traces with the same parameters
  but different horizons agree on their common prefix.

Three shapes, matching the workloads serving papers sweep:

* **poisson** — memoryless arrivals at a constant rate (the base case).
* **diurnal** — a sinusoid-modulated rate (day/night load), realized by
  Lewis thinning against the peak rate.
* **bursty** — a base Poisson stream plus flash-crowd windows during
  which the rate multiplies, drawn from a second derived stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.rng import RngRegistry

#: Trace kinds, the vocabulary ``ServingConfig`` validates against.
KINDS = ("poisson", "diurnal", "bursty")


@dataclass(frozen=True)
class ArrivalTrace:
    """One materialized request stream: sorted arrival times in ms."""

    name: str
    kind: str
    rate_rps: float
    horizon_ms: float
    times_ms: Tuple[float, ...]
    #: Generator parameters beyond the rate (amplitude, burst factor...)
    params: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.times_ms)

    @property
    def mean_rate_rps(self) -> float:
        """Realized arrival rate over the horizon."""
        if self.horizon_ms <= 0:
            return 0.0
        return 1000.0 * len(self.times_ms) / self.horizon_ms


def _check(name: str, rate_rps: float, horizon_ms: float) -> None:
    if not name:
        raise ValueError("trace name must be non-empty")
    if rate_rps <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_rps}")
    if horizon_ms <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_ms}")


def _stream(rng: RngRegistry, name: str, kind: str):
    return rng.stream(f"serving:{name}:{kind}")


def poisson_trace(rng: RngRegistry, name: str, rate_rps: float,
                  horizon_ms: float) -> ArrivalTrace:
    """Homogeneous Poisson arrivals: exponential inter-arrival gaps."""
    _check(name, rate_rps, horizon_ms)
    stream = _stream(rng, name, "poisson")
    mean_gap_ms = 1000.0 / rate_rps
    times: List[float] = []
    t = stream.expovariate(1.0 / mean_gap_ms)
    while t < horizon_ms:
        times.append(t)
        t += stream.expovariate(1.0 / mean_gap_ms)
    return ArrivalTrace(name=name, kind="poisson", rate_rps=rate_rps,
                        horizon_ms=horizon_ms, times_ms=tuple(times))


def diurnal_trace(rng: RngRegistry, name: str, rate_rps: float,
                  horizon_ms: float, amplitude: float = 0.5,
                  period_ms: float = 10_000.0) -> ArrivalTrace:
    """Sinusoid-modulated arrivals (day/night load), by Lewis thinning.

    The instantaneous rate is ``rate * (1 + amplitude *
    sin(2*pi*t/period))``; candidates drawn at the peak rate are kept
    with probability ``rate(t) / peak``. Thinning keeps the draws
    sequential in time, preserving the prefix property.
    """
    _check(name, rate_rps, horizon_ms)
    if not 0.0 <= amplitude < 1.0:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    if period_ms <= 0:
        raise ValueError(f"period must be positive, got {period_ms}")
    stream = _stream(rng, name, "diurnal")
    peak_rps = rate_rps * (1.0 + amplitude)
    mean_gap_ms = 1000.0 / peak_rps
    times: List[float] = []
    t = stream.expovariate(1.0 / mean_gap_ms)
    while t < horizon_ms:
        rate_t = rate_rps * (1.0 + amplitude
                             * math.sin(2.0 * math.pi * t / period_ms))
        if stream.random() * peak_rps <= rate_t:
            times.append(t)
        t += stream.expovariate(1.0 / mean_gap_ms)
    return ArrivalTrace(
        name=name, kind="diurnal", rate_rps=rate_rps,
        horizon_ms=horizon_ms, times_ms=tuple(times),
        params={"amplitude": amplitude, "period_ms": period_ms})


def bursty_trace(rng: RngRegistry, name: str, rate_rps: float,
                 horizon_ms: float, burst_factor: float = 4.0,
                 burst_ms: float = 500.0,
                 burst_every_ms: float = 4_000.0) -> ArrivalTrace:
    """Base Poisson stream plus flash-crowd bursts.

    Burst windows open as their own Poisson process (mean gap
    ``burst_every_ms``, drawn from a second derived stream so the base
    stream's draws never shift when burst parameters change); inside a
    window, extra arrivals at ``(burst_factor - 1) * rate`` ride on top
    of the base stream. The merged trace is sorted — a stable merge of
    two independent streams, still a pure function of the seed.
    """
    _check(name, rate_rps, horizon_ms)
    if burst_factor < 1.0:
        raise ValueError(
            f"burst factor must be >= 1, got {burst_factor}")
    if burst_ms <= 0 or burst_every_ms <= 0:
        raise ValueError("burst window and spacing must be positive")
    base = poisson_trace(rng, name, rate_rps, horizon_ms)
    burst_stream = _stream(rng, name, "bursty")
    extra_rps = (burst_factor - 1.0) * rate_rps
    times = list(base.times_ms)
    start = burst_stream.expovariate(1.0 / burst_every_ms)
    while start < horizon_ms:
        end = min(start + burst_ms, horizon_ms)
        if extra_rps > 0:
            mean_gap_ms = 1000.0 / extra_rps
            t = start + burst_stream.expovariate(1.0 / mean_gap_ms)
            while t < end:
                times.append(t)
                t += burst_stream.expovariate(1.0 / mean_gap_ms)
        start += burst_every_ms \
            + burst_stream.expovariate(1.0 / burst_every_ms)
    times.sort()
    return ArrivalTrace(
        name=name, kind="bursty", rate_rps=rate_rps,
        horizon_ms=horizon_ms, times_ms=tuple(times),
        params={"burst_factor": burst_factor, "burst_ms": burst_ms,
                "burst_every_ms": burst_every_ms})


#: kind -> generator (uniform ``(rng, name, rate, horizon)`` signature;
#: shape parameters keep their defaults when built through here).
GENERATORS = {
    "poisson": poisson_trace,
    "diurnal": diurnal_trace,
    "bursty": bursty_trace,
}


def make_trace(rng: RngRegistry, name: str, kind: str, rate_rps: float,
               horizon_ms: float) -> ArrivalTrace:
    """Build a trace by kind name (``ServingConfig`` overrides land here)."""
    if kind not in GENERATORS:
        raise ValueError(f"unknown trace kind {kind!r} "
                         f"(choices: {', '.join(KINDS)})")
    return GENERATORS[kind](rng, name, rate_rps, horizon_ms)
