"""The serving front-end: arrivals -> admission -> batches -> executor.

One :class:`ServingFrontEnd` drives one served model: an arrival
process replays the :class:`~repro.serving.arrivals.ArrivalTrace`
through the :class:`~repro.serving.admission.AdmissionQueue`, and a
dispatch process closes batches with the
:class:`~repro.serving.batcher.RequestBatcher` and materializes each
batch as one executor-subgraph run of the served model's session —
through whatever :class:`~repro.core.policy.SchedulingPolicy` governs
the machine, so under SwitchFlow a latency-bound serving batch preempts
a training job exactly like any high-priority arrival (paper §3.3).

Batching is *padded static*: the session is built at ``max_batch`` and
every dispatch pays the full-batch subgraph regardless of how many
requests rode along — the static-shape regime of real serving engines,
and what makes the batch-or-wait tradeoff real. Goodput counts actual
requests, not padding.

:func:`run_serving` is the harness twin of
:func:`~repro.workloads.colocation.run_colocation`: same fork-safe env
attachments, watchdog, horizon deadline with flight-record dump, and
sanitizer/concurrency finalization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.concurrency import (
    finalize_concurrency,
    maybe_attach_concurrency_from_env,
)
from repro.analysis.integration import enforce
from repro.core.context import RunContext
from repro.core.job import JobHandle
from repro.core.policy import SchedulingPolicy
from repro.faults import maybe_attach_from_env
from repro.faults.recovery import InjectedJobCrash
from repro.hw.memory import OutOfMemoryError
from repro.metrics.latency import LatencySummary
from repro.metrics.throughput import JobStats
from repro.obs.timeseries import maybe_attach_timeseries_from_env
from repro.serving.admission import AdmissionQueue, Request
from repro.serving.arrivals import ArrivalTrace, make_trace
from repro.serving.batcher import Batch, RequestBatcher
from repro.serving.config import maybe_attach_serving_from_env
from repro.serving.slo import SLOTarget
from repro.workloads.colocation import (
    DEFAULT_HORIZON_MS,
    JobSpec,
    dump_flight_record,
)
from repro.workloads.drivers import JobDriver


def emit_decision(runlog, kind, **fields):
    """Deferred :func:`repro.obs.audit.emit_decision` (keeps the audit
    module importable as ``python -m repro.obs.audit`` without tripping
    runpy's already-imported warning through this module)."""
    from repro.obs import audit

    return audit.emit_decision(runlog, kind, **fields)


@dataclass
class ServedModelSpec:
    """Declarative description of one served model for the harness."""

    job: JobHandle
    trace: ArrivalTrace
    max_batch: int = 8
    batch_timeout_ms: float = 5.0
    queue_capacity: int = 64
    shed_policy: str = "drop-newest"
    slo: Optional[SLOTarget] = None
    start_delay_ms: float = 0.0

    def resolved(self, config, rng) -> "ServedModelSpec":
        """A copy with the :class:`ServingConfig` overrides applied.

        A rate or kind override rebuilds the trace from the same named
        stream (the trace stays a pure function of seed + parameters).
        """
        if config is None:
            return self
        trace = self.trace
        if config.rate_rps is not None or config.trace_kind is not None:
            trace = make_trace(
                rng, trace.name,
                config.trace_kind or trace.kind,
                config.rate_rps or trace.rate_rps,
                trace.horizon_ms)
        slo = self.slo
        if config.slo_p99_ms is not None:
            slo = SLOTarget(
                p99_ms=config.slo_p99_ms,
                goodput_rps=slo.goodput_rps if slo is not None else 0.0)
        return ServedModelSpec(
            job=self.job, trace=trace,
            max_batch=config.max_batch or self.max_batch,
            batch_timeout_ms=(self.batch_timeout_ms
                              if config.batch_timeout_ms is None
                              else config.batch_timeout_ms),
            queue_capacity=config.queue_capacity or self.queue_capacity,
            shed_policy=config.shed_policy or self.shed_policy,
            slo=slo, start_delay_ms=self.start_delay_ms)


@dataclass
class ServingStats:
    """Everything measured about one served model's request stream."""

    job: str
    horizon_ms: float
    slo: Optional[SLOTarget] = None
    requests: List[Request] = field(default_factory=list)
    batches: List[Batch] = field(default_factory=list)
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    crashed: bool = False

    @property
    def arrived(self) -> int:
        return len(self.requests)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.requests if r.completed_ms is not None)

    @property
    def shed(self) -> int:
        return sum(1 for r in self.requests if r.shed_reason is not None)

    @property
    def shed_pct(self) -> float:
        if not self.requests:
            return 0.0
        return 100.0 * self.shed / len(self.requests)

    def latencies_ms(self) -> List[float]:
        return [r.latency_ms for r in self.requests
                if r.completed_ms is not None]

    def latency_summary(self) -> Optional[LatencySummary]:
        samples = self.latencies_ms()
        if not samples:
            return None
        return LatencySummary.from_samples(samples)

    @property
    def slo_met(self) -> int:
        """Completed requests inside the p99 budget (all, if no SLO)."""
        if self.slo is None:
            return self.completed
        return sum(1 for r in self.requests
                   if r.completed_ms is not None
                   and self.slo.met_by(r.latency_ms))

    @property
    def goodput_rps(self) -> float:
        """SLO-meeting completions per second of offered-load window."""
        if self.horizon_ms <= 0:
            return 0.0
        return 1000.0 * self.slo_met / self.horizon_ms


class ServingFrontEnd:
    """Runs one served model's request stream under a policy."""

    def __init__(self, policy: SchedulingPolicy,
                 spec: ServedModelSpec) -> None:
        self.policy = policy
        self.ctx: RunContext = policy.ctx
        self.spec = spec
        self.job = spec.job
        self.queue = AdmissionQueue(self.ctx.engine,
                                    capacity=spec.queue_capacity,
                                    shed_policy=spec.shed_policy)
        self.batcher = RequestBatcher(self.ctx.engine, self.queue,
                                      max_batch=spec.max_batch,
                                      timeout_ms=spec.batch_timeout_ms)
        self.stats = ServingStats(job=self.job.name,
                                  horizon_ms=spec.trace.horizon_ms,
                                  slo=spec.slo)
        self.process = None
        self._metrics = self.ctx.metrics
        self._runlog = self.ctx.runlog
        self._arrival_process = None
        self._aborted = False

    # ------------------------------------------------------------------
    def start(self):
        """Spawn the front-end; returns the dispatch process.

        The dispatch process only completes after the arrival stream
        ends *and* the queue drains, so awaiting it awaits the whole
        front-end.
        """
        self.process = self.ctx.engine.process(
            self._main(), name=f"serving/{self.job.name}")
        return self.process

    def _main(self):
        if self.spec.start_delay_ms > 0:
            yield self.ctx.engine.timeout(self.spec.start_delay_ms)
        try:
            self.policy.register_job(self.job)
        except OutOfMemoryError as exc:
            self._runlog.emit("job_crashed", job=self.job.name,
                              reason=str(exc), phase="register")
            self.policy.on_job_crashed(self.job, str(exc))
            self.stats.crashed = True
            return
        self.job.stats.started_at = self.ctx.engine.now
        self._runlog.emit("job_started", job=self.job.name,
                          model=self.job.model.name,
                          device=self.job.assigned_device,
                          priority=self.job.priority,
                          kind="serving")
        self._arrival_process = self.ctx.engine.process(
            self._arrivals(), name=f"arrivals/{self.job.name}")
        try:
            yield from self._dispatch_loop()
        except (OutOfMemoryError, InjectedJobCrash) as exc:
            self._runlog.emit("job_crashed", job=self.job.name,
                              reason=str(exc), phase="run")
            self.policy.on_job_crashed(self.job, str(exc))
            self.stats.crashed = True
            self._abort_outstanding(str(exc))
        finally:
            self.job.stats.finished_at = self.ctx.engine.now
            self._runlog.emit(
                "job_finished", job=self.job.name,
                iterations=len(self.job.stats.iteration_times_ms),
                crashed=self.job.stats.crashed)
            self.policy.unregister_job(self.job)

    # ------------------------------------------------------------------
    # Arrival side
    # ------------------------------------------------------------------
    def _arrivals(self):
        engine = self.ctx.engine
        epoch = engine.now
        job = self.job.name
        arrived = self._metrics.counter(
            "serving.requests_arrived_total",
            "open-loop requests that arrived", job=job)
        admitted = self._metrics.counter(
            "serving.requests_admitted_total",
            "requests admitted past the queue", job=job)
        for rid, t_ms in enumerate(self.spec.trace.times_ms):
            due = epoch + t_ms
            if engine.now < due:
                yield engine.timeout(due - engine.now)
            if self._aborted:
                break
            request = Request(rid=rid, arrival_ms=engine.now)
            self.stats.requests.append(request)
            arrived.inc()
            self._runlog.emit("request_arrived", job=job, req=rid)
            outcome = self.queue.offer(request)
            if outcome.evicted is not None:
                self._shed(outcome.evicted, "evicted")
            if not outcome.admitted:
                self._shed(request, "queue-full")
            else:
                admitted.inc()
                emit_decision(
                    self._runlog, "request_admit", job=job,
                    req=rid, queue_depth=self.queue.depth,
                    policy=self.spec.shed_policy)
            self._gauge_depth()
        self.queue.close()

    def _shed(self, request: Request, reason: str) -> None:
        job = self.job.name
        request.shed_reason = reason
        self.stats.shed_by_reason[reason] = \
            self.stats.shed_by_reason.get(reason, 0) + 1
        self._metrics.counter(
            "serving.requests_shed_total", "requests shed by admission",
            job=job, reason=reason).inc()
        self._runlog.emit("request_shed", job=job, req=request.rid,
                          reason=reason)
        emit_decision(
            self._runlog, "request_shed", job=job, req=request.rid,
            chosen=reason, queue_depth=self.queue.depth,
            policy=self.spec.shed_policy,
            queue_capacity=self.spec.queue_capacity)

    def _gauge_depth(self) -> None:
        self._metrics.gauge(
            "serving.queue_depth", "admission queue depth",
            job=self.job.name).set(float(self.queue.depth))

    # ------------------------------------------------------------------
    # Dispatch side
    # ------------------------------------------------------------------
    def _dispatch_loop(self):
        engine = self.ctx.engine
        job = self.job
        iteration = 0
        while True:
            batch = yield from self.batcher.form()
            if batch is None:
                return
            self._maybe_crash()
            self.stats.batches.append(batch)
            self._gauge_depth()
            emit_decision(
                self._runlog, "batch_close", job=job.name,
                chosen=batch.reason, batch=batch.batch_id,
                size=len(batch), waited_ms=round(batch.wait_ms, 3),
                queue_depth=self.queue.depth,
                max_batch=self.spec.max_batch,
                timeout_ms=self.spec.batch_timeout_ms)
            self._metrics.counter(
                "serving.batches_total", "batches dispatched",
                job=job.name, reason=batch.reason).inc()
            self._metrics.histogram(
                "serving.batch_size", "requests per dispatched batch",
                job=job.name).observe(float(len(batch)))
            dispatch_start = engine.now
            yield from self._dispatch_batch(iteration)
            self._complete(batch)
            job.stats.record_iteration(engine.now - dispatch_start)
            job.stats.iteration_spans.append((dispatch_start,
                                              engine.now))
            iteration += 1

    def _maybe_crash(self) -> None:
        """Honor an injected crash at the batch boundary (a safe point:
        no gate held, no run in flight)."""
        injector = self.ctx.faults
        if injector is None:
            return
        reason = injector.crash_requested(self.job.name)
        if reason is not None:
            raise InjectedJobCrash(self.job.name, reason)

    def _acquire_compute(self):
        started = self.ctx.engine.now
        grant = yield from self.policy.acquire_compute(self.job)
        self._metrics.histogram(
            "sched.acquire_wait_ms",
            "time blocked acquiring the compute stage",
            job=self.job.name).observe(self.ctx.engine.now - started)
        return grant

    def _dispatch_batch(self, iteration: int):
        """One batch = one session iteration (CPU stage + GPU stage).

        Honors the policy's session semantics: fused policies (time
        slicing) hold the pipeline slice across both stages; pipelined
        policies gate only the CPU stage and then run the
        preemption-surviving compute loop.
        """
        job, policy = self.job, self.policy
        session = job.session
        data_pool = self.ctx.data_pool_for(job.name)
        if policy.fused_sessions:
            yield from policy.acquire_pipeline(job)
            try:
                yield from session.run_cpu_stage(data_pool, iteration)
                grant = yield from self._acquire_compute()
                try:
                    run = session.start_gpu_stage(
                        grant.pool, grant.device_name, iteration,
                        preallocated=grant.preallocated)
                except OutOfMemoryError:
                    policy.release_compute(job, grant, "oom")
                    raise
                outcome = yield run.done
                session.finish_gpu_stage(run, iteration)
                policy.release_compute(job, grant, outcome)
            finally:
                policy.release_pipeline(job)
            return
        yield from policy.acquire_pipeline(job)
        try:
            yield from session.run_cpu_stage(data_pool, iteration)
        finally:
            policy.release_pipeline(job)
        completed = set()
        while True:
            grant = yield from self._acquire_compute()
            if job.assigned_device != grant.device_name:
                policy.release_compute(job, grant, "stale")
                continue
            try:
                run = session.start_gpu_stage(
                    grant.pool, grant.device_name, iteration,
                    completed=completed,
                    preallocated=grant.preallocated)
            except OutOfMemoryError:
                policy.release_compute(job, grant, "oom")
                raise
            outcome = yield run.done
            completed |= run.completed
            session.finish_gpu_stage(run, iteration)
            policy.release_compute(job, grant, outcome)
            if outcome == "completed":
                return

    def _complete(self, batch: Batch) -> None:
        engine = self.ctx.engine
        job = self.job.name
        latency = self._metrics.histogram(
            "serving.request_latency_ms",
            "end-to-end request latency (arrival to completion)",
            job=job)
        queue_wait = self._metrics.histogram(
            "serving.queue_wait_ms",
            "time from arrival to batch close", job=job)
        completed = self._metrics.counter(
            "serving.requests_completed_total", "requests served",
            job=job)
        goodput = self._metrics.counter(
            "serving.goodput_total",
            "completed requests inside the SLO budget", job=job)
        slo = self.spec.slo
        for request in batch.requests:
            request.completed_ms = engine.now
            completed.inc()
            latency.observe(request.latency_ms)
            queue_wait.observe(request.queue_wait_ms)
            if slo is None or slo.met_by(request.latency_ms):
                goodput.inc()
            self._runlog.emit(
                "request_completed", job=job, req=request.rid,
                batch=batch.batch_id,
                latency_ms=round(request.latency_ms, 3))

    def _abort_outstanding(self, reason: str) -> None:
        """Terminal-ize every live request after a crash, so the
        request-span invariant (arrive => complete xor shed) holds even
        on the failure path. Arrivals still pending in the trace stop
        at their next wakeup (they never "arrive", so they owe no
        terminal event)."""
        del reason
        self._aborted = True
        outstanding = self.queue.drain()
        self.queue.close()
        seen = {id(request) for request in outstanding}
        for request in self.stats.requests:
            if (request.completed_ms is None
                    and request.shed_reason is None
                    and id(request) not in seen):
                outstanding.append(request)
        for request in outstanding:
            self._shed(request, "aborted")


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
@dataclass
class ServingResult:
    """Everything an experiment needs after the serving run finishes."""

    ctx: RunContext
    serving: Dict[str, ServingStats] = field(default_factory=dict)
    stats: Dict[str, JobStats] = field(default_factory=dict)

    def served(self, name: str) -> ServingStats:
        return self.serving[name]

    def latency_summary(self, name: str) -> Optional[LatencySummary]:
        return self.serving[name].latency_summary()

    def crashed_jobs(self) -> List[str]:
        crashed = [name for name, stats in self.stats.items()
                   if stats.crashed]
        crashed.extend(name for name, stats in self.serving.items()
                       if stats.crashed)
        return crashed


def run_serving(ctx: RunContext,
                policy_factory,
                served: List[ServedModelSpec],
                background: Optional[List[JobSpec]] = None,
                horizon_ms: float = DEFAULT_HORIZON_MS) -> ServingResult:
    """Run serving front-ends (plus background jobs) to completion.

    Background jobs iterate until every front-end drains, mirroring
    :func:`~repro.workloads.colocation.run_colocation`'s foreground/
    background protocol. ``$REPRO_SERVING`` overrides are applied to
    every spec here — inside whichever process the experiment executes
    in, so they survive the ``fanout_map`` fork like the other env
    knobs.
    """
    if not served:
        raise ValueError("no served models")
    background = list(background or [])
    policy = policy_factory(ctx)
    maybe_attach_from_env(ctx)
    if ctx.faults is not None:
        ctx.faults.bind_policy(policy)
    maybe_attach_timeseries_from_env(ctx)
    maybe_attach_concurrency_from_env(ctx)
    maybe_attach_serving_from_env(ctx)
    specs = [spec.resolved(ctx.serving, ctx.rng) for spec in served]

    frontends = [ServingFrontEnd(policy, spec) for spec in specs]
    stop_signal = ctx.engine.event()
    drivers = [
        JobDriver(policy, spec.job, iterations=spec.iterations,
                  start_delay_ms=spec.start_delay_ms,
                  request_interval_ms=spec.request_interval_ms,
                  stop_event=stop_signal if spec.background else None)
        for spec in background]
    front_processes = [frontend.start() for frontend in frontends]
    driver_processes = [driver.start() for driver in drivers]

    def _watchdog():
        yield ctx.engine.all_of(front_processes)
        if not stop_signal.triggered:
            stop_signal.succeed()

    ctx.engine.process(_watchdog(), name="serving-watchdog")
    done = ctx.engine.all_of(front_processes + driver_processes)
    deadline = ctx.engine.timeout(horizon_ms)
    ctx.engine.run(until=ctx.engine.any_of([done, deadline]))
    if not done.triggered:
        dump_flight_record(ctx, "serving-deadlock-abort", policy=policy)
        finalize_concurrency(ctx, label="serving-deadlock-abort")
        raise RuntimeError(
            f"serving scenario exceeded {horizon_ms} simulated ms")

    result = ServingResult(ctx=ctx)
    jobs = []
    for frontend in frontends:
        result.serving[frontend.job.name] = frontend.stats
        jobs.append(frontend.job)
    for spec in background:
        result.stats[spec.job.name] = spec.job.stats
        jobs.append(spec.job)
    for job in jobs:
        if job not in ctx.jobs:
            ctx.jobs.append(job)

    label = ",".join(job.name for job in jobs)
    try:
        enforce(ctx, policy=policy,
                sessions=[job.session for job in jobs], label=label)
    except Exception:
        dump_flight_record(ctx, "sanitization-error", policy=policy)
        raise
    finally:
        finalize_concurrency(ctx, label=label)
    return result
