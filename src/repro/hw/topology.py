"""Cluster topology: multi-node machines joined by typed links.

ROADMAP item 2 ("from one 4-GPU box to a sharded fleet") needs a
hardware model where proximity matters: two GPUs behind one PCIe switch
migrate state in hundreds of microseconds, while the same transfer
across a datacenter network pays NIC latency and per-message framing on
every tensor. This module provides:

* :class:`Node` — one host (CPU + GPUs) with canonical device addresses
  (``node0/cpu``, ``node0/gpu1``), NVLink between its GPUs and PCIe to
  the host.
* :class:`Cluster` — nodes joined CPU-to-CPU by a network link. It
  implements the same protocol :class:`~repro.hw.machine.Machine` does
  (``devices``, ``device()``, ``gpus``, ``cpu``, ``link()``), so every
  layer above — sessions, policies, the resource manager — runs on
  either without caring which.
* :class:`Route` — an ordered multi-hop path between two devices with
  per-hop serialization: a cross-node migration traverses src-PCIe →
  network → dst-PCIe, queueing at each hop. A single-hop route degrades
  to the underlying :class:`~repro.hw.pcie.Link` verbatim, which is what
  keeps single-node transcripts bit-identical to the pre-topology code.

``Machine`` itself grows ``route()`` / ``same_node()`` so it is the
degenerate one-node cluster; nothing above the hw layer branches on the
concrete type.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice
from repro.hw.pcie import Link, TransferStats, transfer_time_ms
from repro.hw.specs import (
    NETWORK_100G,
    NVLINK2,
    PCIE3_X16,
    TESLA_V100,
    XEON_DUAL_18C,
    CpuSpec,
    GpuSpec,
    LinkSpec,
)
from repro.sim.events import Event
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Route:
    """An ordered path of links from one device to another.

    Hops serialize: the payload fully crosses hop *i* before hop *i+1*
    begins (store-and-forward through the staging host's DRAM), and each
    hop queues behind that link's other traffic. A one-hop route
    delegates to the underlying link directly — same process name, same
    tracer spans — so single-machine schedules are unchanged by routing.
    """

    __slots__ = ("engine", "links")

    def __init__(self, engine: "Engine", links: Sequence[Link]) -> None:
        if not links:
            raise ValueError("a route needs at least one link")
        for left, right in zip(links, links[1:]):
            if left.dst != right.src:
                raise ValueError(
                    f"route is not contiguous: hop to {left.dst!r} "
                    f"followed by hop from {right.src!r}")
        self.engine = engine
        self.links = tuple(links)

    @property
    def src(self) -> str:
        return self.links[0].src

    @property
    def dst(self) -> str:
        return self.links[-1].dst

    @property
    def hops(self) -> int:
        return len(self.links)

    @property
    def path(self) -> Tuple[str, ...]:
        """Every device the payload touches, endpoints included."""
        return (self.links[0].src,) + tuple(l.dst for l in self.links)

    def describe(self) -> str:
        return "->".join(self.path)

    def cost_ms(self, nbytes: int, n_tensors: int = 1) -> float:
        """Analytic uncontended traversal time: sum of per-hop costs."""
        return sum(transfer_time_ms(link.spec, nbytes, n_tensors)
                   for link in self.links)

    def transfer(self, nbytes: int, n_tensors: int = 1,
                 label: str = "memcpy") -> Event:
        """Start a transfer along the route; fires with TransferStats."""
        if len(self.links) == 1:
            return self.links[0].transfer(nbytes, n_tensors=n_tensors,
                                          label=label)
        done = self.engine.event()
        self.engine.process(
            self._run(done, int(nbytes), int(n_tensors), label),
            name=f"route:{self.src}=>{self.dst}:{label}")
        return done

    def _run(self, done: Event, nbytes: int, n_tensors: int, label: str):
        started_at: Optional[float] = None
        duration = 0.0
        for link in self.links:
            stats = yield link.transfer(nbytes, n_tensors=n_tensors,
                                        label=label)
            if started_at is None:
                started_at = stats.started_at
            duration += stats.duration_ms
        done.succeed(TransferStats(
            nbytes=nbytes, n_tensors=n_tensors, duration_ms=duration,
            started_at=started_at if started_at is not None
            else self.engine.now,
            finished_at=self.engine.now))


class Node:
    """One host of a cluster: a CPU plus GPUs, canonically addressed."""

    def __init__(self, cluster: "Cluster", index: int, cpu_spec: CpuSpec,
                 pcie: LinkSpec = PCIE3_X16,
                 gpu_link: Optional[LinkSpec] = None) -> None:
        self.cluster = cluster
        self.index = index
        self.name = f"node{index}"
        self.pcie_spec = pcie
        # GPU-to-GPU links within the node (NVLink when fitted, else the
        # same PCIe fabric as the host link).
        self.gpu_link_spec = gpu_link if gpu_link is not None else pcie
        self.cpu = CpuDevice(cluster.engine, cpu_spec,
                             tracer=cluster.tracer,
                             name=f"{self.name}/cpu")
        self.gpus: List[GpuDevice] = []
        cluster._register(self.cpu, self)

    def add_gpu(self, spec: GpuSpec,
                name: Optional[str] = None) -> GpuDevice:
        """Attach a GPU: PCIe to the host, NVLink to node-local peers."""
        if name is None:
            name = f"{self.name}/gpu{len(self.gpus)}"
        gpu = GpuDevice(self.cluster.engine, spec,
                        tracer=self.cluster.tracer, name=name)
        self.cluster._add_link_pair(self.cpu.name, gpu.name,
                                    self.pcie_spec)
        for peer in self.gpus:
            self.cluster._add_link_pair(peer.name, gpu.name,
                                        self.gpu_link_spec)
        self.gpus.append(gpu)
        self.cluster._register(gpu, self)
        return gpu

    @property
    def devices(self):
        return [self.cpu] + list(self.gpus)


class Cluster:
    """Nodes joined CPU-to-CPU by a network link.

    Presents the Machine protocol, so every existing workload driver,
    policy and experiment runs on a Cluster without modification; the
    layers that *are* topology-aware (migration, gang placement) reach
    the extra surface — :meth:`route`, :meth:`same_node`,
    :meth:`node_of` — which Machine also implements degenerately.
    """

    def __init__(self, engine: "Engine", tracer: Optional[Tracer] = None,
                 network: LinkSpec = NETWORK_100G) -> None:
        self.engine = engine
        self.tracer = tracer if tracer is not None else Tracer(engine)
        self.network_spec = network
        self.nodes: List[Node] = []
        self._links: Dict[tuple, Link] = {}
        self._devices: Dict[str, object] = {}
        self._node_by_device: Dict[str, Node] = {}
        self._routes: Dict[tuple, Route] = {}
        # Fault injector mirror, as on Machine (see machine.py).
        self.faults = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, cpu_spec: CpuSpec = XEON_DUAL_18C,
                 pcie: LinkSpec = PCIE3_X16,
                 gpu_link: Optional[LinkSpec] = None) -> Node:
        """Add a host, networked to every existing node's CPU."""
        node = Node(self, len(self.nodes), cpu_spec, pcie=pcie,
                    gpu_link=gpu_link)
        for other in self.nodes:
            self._add_link_pair(other.cpu.name, node.cpu.name,
                                self.network_spec)
        self.nodes.append(node)
        return node

    def _add_link_pair(self, a: str, b: str, spec: LinkSpec) -> None:
        for src, dst in ((a, b), (b, a)):
            self._links[(src, dst)] = Link(
                self.engine, spec, src, dst, tracer=self.tracer)

    def _register(self, device, node: Node) -> None:
        self._devices[device.name] = device
        self._node_by_device[device.name] = node

    # ------------------------------------------------------------------
    # Machine protocol
    # ------------------------------------------------------------------
    @property
    def cpu(self) -> CpuDevice:
        """The primary host CPU (node0), where shared pools live."""
        return self.nodes[0].cpu

    @property
    def gpus(self) -> List[GpuDevice]:
        return [gpu for node in self.nodes for gpu in node.gpus]

    @property
    def devices(self):
        return ([node.cpu for node in self.nodes]
                + [gpu for node in self.nodes for gpu in node.gpus])

    def device(self, name: str):
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"no device named {name!r}; have "
                           f"{[d.name for d in self.devices]}") from None

    def gpu(self, index: int = 0) -> GpuDevice:
        return self.gpus[index]

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src!r} -> {dst!r}") from None

    # ------------------------------------------------------------------
    # Topology surface
    # ------------------------------------------------------------------
    def node_of(self, device_name: str) -> Node:
        try:
            return self._node_by_device[device_name]
        except KeyError:
            raise KeyError(f"no device named {device_name!r}; have "
                           f"{[d.name for d in self.devices]}") from None

    def node_name_of(self, device_name: str) -> str:
        return self.node_of(device_name).name

    def same_node(self, a: str, b: str) -> bool:
        return self.node_of(a) is self.node_of(b)

    def host_cpu(self, device_name: str) -> CpuDevice:
        """The CPU on the same node as ``device_name`` (itself, if a CPU)."""
        return self.node_of(device_name).cpu

    def route(self, src: str, dst: str) -> Route:
        """The canonical path from ``src`` to ``dst`` (cached).

        Same node: the direct link. Cross node: stage through each
        endpoint's host CPU — src-PCIe → network → dst-PCIe — dropping
        the PCIe legs when an endpoint *is* its node's CPU.
        """
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is not None:
            return cached
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)
        if src_node is dst_node:
            links = [self.link(src, dst)]
        else:
            links = []
            if src != src_node.cpu.name:
                links.append(self.link(src, src_node.cpu.name))
            links.append(self.link(src_node.cpu.name, dst_node.cpu.name))
            if dst != dst_node.cpu.name:
                links.append(self.link(dst_node.cpu.name, dst))
        route = Route(self.engine, links)
        self._routes[key] = route
        return route

    def route_cost_ms(self, src: str, dst: str, nbytes: int,
                      n_tensors: int = 1) -> float:
        return self.route(src, dst).cost_ms(nbytes, n_tensors)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def v100_cluster(engine: "Engine", n_nodes: int = 2,
                 gpus_per_node: int = 2,
                 tracer: Optional[Tracer] = None,
                 network: LinkSpec = NETWORK_100G,
                 gpu_link: Optional[LinkSpec] = NVLINK2) -> Cluster:
    """``n_nodes`` dual-Xeon hosts with ``gpus_per_node`` V100s each.

    The scale-out analogue of :func:`~repro.hw.machine.v100_server`:
    NVLink between a node's GPUs, PCIe to its host, 100GbE between
    nodes.
    """
    if n_nodes < 1 or gpus_per_node < 1:
        raise ValueError("a cluster needs at least one node and one "
                         "GPU per node")
    cluster = Cluster(engine, tracer=tracer, network=network)
    for _ in range(n_nodes):
        node = cluster.add_node(XEON_DUAL_18C, gpu_link=gpu_link)
        for _ in range(gpus_per_node):
            node.add_gpu(TESLA_V100)
    return cluster
