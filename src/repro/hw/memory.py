"""Device memory accounting.

The allocator tracks bytes per *owner* (a job/context name) so that
persistent model state (weights + optimizer slots) and transient
activations can be charged and released independently. Exceeding the
capacity raises :class:`OutOfMemoryError` — the simulated analogue of the
CUDA OOM crashes the paper observes under multi-threaded TF and MPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim import instrument


class OutOfMemoryError(Exception):
    """Simulated CUDA out-of-memory failure."""

    def __init__(self, device: str, requested: int, free: int,
                 owner: str) -> None:
        super().__init__(
            f"OOM on {device}: {owner!r} requested {requested} bytes, "
            f"only {free} free")
        self.device = device
        self.requested = requested
        self.free = free
        self.owner = owner


@dataclass
class AllocationRecord:
    """A single named allocation (e.g. 'weights', 'activations')."""

    owner: str
    tag: str
    nbytes: int


class MemoryPool:
    """Byte-granular allocator for one device."""

    def __init__(self, device_name: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.device_name = device_name
        self.capacity_bytes = int(capacity_bytes)
        self._allocations: List[AllocationRecord] = []
        self._used = 0
        self.high_water_mark = 0
        self.high_water_by_owner: Dict[str, int] = {}
        self.oom_events = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def used_by(self, owner: str) -> int:
        return sum(a.nbytes for a in self._allocations if a.owner == owner)

    def owners(self) -> Dict[str, int]:
        usage: Dict[str, int] = {}
        for alloc in self._allocations:
            usage[alloc.owner] = usage.get(alloc.owner, 0) + alloc.nbytes
        return usage

    # ------------------------------------------------------------------
    def allocate(self, owner: str, tag: str, nbytes: int) -> AllocationRecord:
        """Reserve ``nbytes`` for ``owner`` or raise OutOfMemoryError."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size cannot be negative")
        if nbytes > self.free_bytes:
            self.oom_events += 1
            raise OutOfMemoryError(
                self.device_name, nbytes, self.free_bytes, owner)
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.access(f"mem:{self.device_name}", "write",
                           where=f"mem.allocate/{owner}",
                           guard=f"lock:mem:{self.device_name}")
        record = AllocationRecord(owner=owner, tag=tag, nbytes=nbytes)
        self._allocations.append(record)
        self._used += nbytes
        self.high_water_mark = max(self.high_water_mark, self._used)
        self.high_water_by_owner[owner] = max(
            self.high_water_by_owner.get(owner, 0), self.used_by(owner))
        return record

    def can_allocate(self, nbytes: int) -> bool:
        return int(nbytes) <= self.free_bytes

    def free(self, record: AllocationRecord) -> None:
        """Release a previous allocation (idempotent)."""
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.access(f"mem:{self.device_name}", "write",
                           where=f"mem.free/{record.owner}",
                           guard=f"lock:mem:{self.device_name}")
        try:
            self._allocations.remove(record)
        except ValueError:
            return
        self._used -= record.nbytes

    def free_owner(self, owner: str, tag: str = None) -> int:
        """Release everything (or everything tagged ``tag``) of ``owner``."""
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.access(f"mem:{self.device_name}", "write",
                           where=f"mem.free_owner/{owner}",
                           guard=f"lock:mem:{self.device_name}")
        kept: List[AllocationRecord] = []
        released = 0
        for alloc in self._allocations:
            if alloc.owner == owner and (tag is None or alloc.tag == tag):
                released += alloc.nbytes
            else:
                kept.append(alloc)
        self._allocations = kept
        self._used -= released
        return released

    def __repr__(self) -> str:
        return (f"<MemoryPool {self.device_name!r} "
                f"{self._used / 2**20:.0f}/{self.capacity_bytes / 2**20:.0f} MiB>")
