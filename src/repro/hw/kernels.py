"""Kernel launch descriptors.

A :class:`KernelLaunch` is the unit of work a GPU executes: a duration
(solo execution time on this device, computed upstream by the op cost
model), an occupancy demand (fraction of the device's register file /
SM resources the tuned kernel wants — the quantity NVIDIA's occupancy
calculator reports), and bookkeeping identity (job/context, op name).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_launch_ids = itertools.count(1)


@dataclass
class KernelLaunch:
    """One kernel enqueued on a GPU stream."""

    name: str                      # op name, e.g. "resnet50/conv2_1/conv2d"
    context: str                   # job identity (CUDA-context analogue)
    work_ms: float                 # solo execution time on this device
    occupancy: float               # fraction of device resources demanded
    memory_bytes: int = 0          # transient workspace while running
    stream: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    launch_id: int = field(default_factory=lambda: next(_launch_ids))

    # Filled in by the device while executing.
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.work_ms < 0:
            raise ValueError(f"negative kernel work: {self.work_ms}")
        if not 0.0 < self.occupancy <= 1.0:
            raise ValueError(
                f"occupancy must be in (0, 1], got {self.occupancy}")

    def __repr__(self) -> str:
        return (f"<KernelLaunch {self.name!r} ctx={self.context!r} "
                f"work={self.work_ms:.3f}ms occ={self.occupancy:.2f}>")
